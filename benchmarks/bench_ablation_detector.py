"""Ablation benchmarks for the anomaly-detector design choices (DESIGN.md Sec. 6)."""

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.core.fault_models import TransientBitFlip
from repro.core.injector import inject_weight_faults
from repro.core.mitigation.anomaly import RangeAnomalyDetector
from repro.experiments.common import build_drone_bundle, evaluate_drone_msf
from repro.experiments.fig7_drone import executor_policy
from repro.io.results import ResultTable


def _msf_with_margin(bundle, config, margin, compare_integer_only, ber, seed):
    rng = np.random.default_rng(seed)
    executor = bundle.make_executor()
    try:
        inject_weight_faults(executor, TransientBitFlip(ber), rng=rng)
        detector = RangeAnomalyDetector(
            bundle.range_profile,
            margin=margin,
            compare_integer_bits_only=compare_integer_only,
        )
        detector.apply_to_weights(executor)
        return evaluate_drone_msf(
            executor_policy(executor),
            bundle.env(config.environment),
            trials=config.eval_trials,
            max_steps=config.max_eval_steps,
        )
    finally:
        executor.restore_clean_weights()


@pytest.mark.benchmark(group="ablation")
def test_ablation_detection_margin(benchmark, drone_config):
    """Sweep the detection margin around the paper's 10% choice."""
    bundle = build_drone_bundle(drone_config, seed=0)

    def run():
        table = ResultTable(title="Ablation: anomaly-detection margin (weight faults, BER=1e-4)")
        for margin in (0.0, 0.1, 0.5):
            msf = np.mean(
                [_msf_with_margin(bundle, drone_config, margin, True, 1e-4, seed) for seed in (0, 1)]
            )
            table.add(margin=margin, mean_safe_flight=float(msf))
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    report(table)


@pytest.mark.benchmark(group="ablation")
def test_ablation_compare_mode(benchmark, drone_config):
    """Sign+integer-bit comparison vs full-value comparison in the detector."""
    bundle = build_drone_bundle(drone_config, seed=0)

    def run():
        table = ResultTable(title="Ablation: detector compare mode (weight faults, BER=1e-4)")
        for integer_only in (True, False):
            msf = np.mean(
                [
                    _msf_with_margin(bundle, drone_config, 0.1, integer_only, 1e-4, seed)
                    for seed in (0, 1)
                ]
            )
            table.add(compare_integer_bits_only=integer_only, mean_safe_flight=float(msf))
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    report(table)
