"""Machine-readable snapshots of guardrail benchmark results.

The guardrail benchmarks (warm-cache sweep, batched engine, distributed
sweep) assert *relative* promises — "not slower", "at least 2x" — but the
absolute numbers behind those assertions were previously printed and lost.
``write_snapshot`` persists them: each guardrail writes one
``BENCH_<name>.json`` file so perf trajectories can be tracked across
commits and machines (compare files, archive them from CI, plot them).

Snapshots land in the repository root by default — that is where the perf
trajectory is read from (committed ``BENCH_*.json`` files next to this
repo's sources, archived as CI artifacts).  Point ``REPRO_BENCH_SNAPSHOT_DIR``
somewhere else (e.g. a scratch directory) to redirect them.  Every snapshot
carries the same envelope::

    {
      "kind": "repro-bench-snapshot",
      "name": "<benchmark name>",
      "created_at": <unix time>,
      "host": {"node": ..., "platform": ..., "python": ..., "cpus": ...,
               "kernel_backend": ..., "numba": ...},
      "metrics": {<benchmark-specific numbers, flat and JSON-native>}
    }

Writing is best-effort by design: a read-only filesystem must never fail
the guardrail assertions the benchmark actually exists for.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Any, Dict, Optional

from repro.io import atomic_write_text

__all__ = ["SNAPSHOT_DIR_ENV_VAR", "default_snapshot_dir", "write_snapshot"]

#: Environment variable overriding where ``BENCH_*.json`` files land.
SNAPSHOT_DIR_ENV_VAR = "REPRO_BENCH_SNAPSHOT_DIR"


def default_snapshot_dir() -> Path:
    override = os.environ.get(SNAPSHOT_DIR_ENV_VAR)
    if override:
        return Path(override)
    # The repo root: snapshots sit next to the sources so the committed perf
    # trajectory and the CI artifact glob both read the same place.
    return Path(__file__).resolve().parent.parent


def _numba_version() -> str:
    """The installed numba version, or ``"absent"``.

    Recorded so a perf-trajectory regression can be traced to a JIT
    toolchain change (or to the backend silently running in numpy mode on
    a host without numba) without re-creating the environment.
    """
    try:
        from importlib.metadata import version

        return version("numba")
    except Exception:
        return "absent"


def write_snapshot(name: str, metrics: Dict[str, Any]) -> Optional[Path]:
    """Write ``BENCH_<name>.json``; returns its path, or ``None`` on failure."""
    from repro import kernels

    snapshot = {
        "kind": "repro-bench-snapshot",
        "name": name,
        "created_at": time.time(),
        "host": {
            "node": platform.node(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
            "kernel_backend": kernels.active_backend_name(),
            "numba": _numba_version(),
        },
        "metrics": metrics,
    }
    directory = default_snapshot_dir()
    path = directory / f"BENCH_{name}.json"
    try:
        directory.mkdir(parents=True, exist_ok=True)
        # Atomic + fsync'd: a benchmark interrupted mid-write must never
        # leave a truncated snapshot in the committed perf trajectory.
        atomic_write_text(path, json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    except OSError:
        return None
    print(f"\nbench snapshot written to {path}")
    return path
