"""Fig. 5 benchmark — inference-time fault modes on Grid World."""

import pytest

from benchmarks.conftest import report
from repro.api import ExecutionConfig
from repro.experiments import fig5_inference


@pytest.mark.benchmark(group="fig5")
def test_fig5a_tabular_inference_faults(benchmark, tabular_config):
    table = benchmark.pedantic(
        fig5_inference.run_inference_fault_sweep,
        args=(tabular_config, [0.002, 0.01]),
        kwargs={"execution": ExecutionConfig(repetitions=4), "episodes_per_trial": 4},
        rounds=1,
        iterations=1,
    )
    report(table)
    # Transient-1 (single-step) faults should be far more benign than
    # Transient-M (whole-episode) faults — the paper's key Fig. 5 takeaway.
    t1 = min(r["success_rate"] for r in table.filter(fault_mode="transient-1").rows)
    tm = min(r["success_rate"] for r in table.filter(fault_mode="transient-m").rows)
    assert t1 >= tm


@pytest.mark.benchmark(group="fig5")
def test_fig5b_nn_inference_faults(benchmark, nn_config):
    table = benchmark.pedantic(
        fig5_inference.run_inference_fault_sweep,
        args=(nn_config, [0.002, 0.01]),
        kwargs={"execution": ExecutionConfig(repetitions=2), "episodes_per_trial": 3},
        rounds=1,
        iterations=1,
    )
    report(table)
