"""Batched-vs-serial guardrail for the Fig. 5 inference campaign.

The batched campaign engine exists to make inference campaigns faster; this
module keeps that promise honest.  It times the same Fig. 5 campaign (clean
policy trained once, timing covers campaign execution only) under
``SerialRunner`` and ``BatchedRunner(batch_size=8)`` and **fails if the
batched path is slower than serial** — while also asserting the two engines
produce bit-identical per-trial outcomes.

Unlike the figure benchmarks this module needs no pytest-benchmark plugin,
so CI can run it as a plain pytest invocation (see the "Batched engine
guardrail" step in ``.github/workflows/ci.yml``)::

    PYTHONPATH=src python -m pytest benchmarks/bench_batched_fig5.py -q
"""

import time

import numpy as np
import pytest

from bench_snapshot_lib import write_snapshot
from repro.core import BatchedRunner, Campaign, SerialRunner
from repro.experiments.common import train_grid_nn, train_tabular
from repro.experiments.config import GridNNConfig, GridTabularConfig
from repro.experiments.fig5_inference import _NNInferenceTrial, _TabularInferenceTrial

#: Batch size the acceptance guardrail is pinned at.
BATCH_SIZE = 8

#: Campaign repetitions: enough work to dominate timer noise, small enough
#: for CI (a few seconds per engine).
REPETITIONS = 48


def _best_of(fn, rounds=3):
    """Best-of-N wall-clock time (min is the standard low-noise estimator)."""
    best, result = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _run_guardrail(trial, label):
    campaign = Campaign(f"fig5-guardrail-{label}", repetitions=REPETITIONS, seed=3)
    serial_time, serial = _best_of(lambda: campaign.run(trial, runner=SerialRunner()))
    batched_time, batched = _best_of(
        lambda: campaign.run(trial, runner=BatchedRunner(batch_size=BATCH_SIZE))
    )
    assert [o.metric for o in batched.outcomes] == [o.metric for o in serial.outcomes], (
        f"{label}: batched outcomes diverged from serial — the engines must be "
        "bit-identical"
    )
    speedup = serial_time / batched_time
    print(
        f"\nfig5 {label} campaign ({REPETITIONS} trials, single worker): "
        f"serial {serial_time:.2f}s, batched(B={BATCH_SIZE}) {batched_time:.2f}s "
        f"-> {speedup:.2f}x"
    )
    write_snapshot(
        f"batched_fig5_{label}",
        {
            "repetitions": REPETITIONS,
            "batch_size": BATCH_SIZE,
            "serial_s": serial_time,
            "batched_s": batched_time,
            "speedup": speedup,
        },
    )
    assert speedup >= 1.0, (
        f"batched fig5 {label} campaign is SLOWER than serial at B={BATCH_SIZE} "
        f"({speedup:.2f}x); the vectorized path has regressed"
    )
    return speedup


@pytest.mark.parametrize("mode", ["transient-m", "transient-1"])
def test_batched_nn_fig5_not_slower_than_serial(mode):
    config = GridNNConfig.fast()
    agent, env, _ = train_grid_nn(config, np.random.default_rng(0))
    trial = _NNInferenceTrial(
        agent, env, mode, 0.01, config.max_steps, config.weight_qformat, 5
    )
    _run_guardrail(trial, f"nn-{mode}")


def test_batched_tabular_fig5_not_slower_than_serial():
    config = GridTabularConfig.fast()
    agent, env, _ = train_tabular(config, np.random.default_rng(0))
    trial = _TabularInferenceTrial(agent, env, "transient-m", 0.01, config.max_steps, 5)
    _run_guardrail(trial, "tabular-transient-m")
