"""Fig. 8 benchmark — adaptive exploration-rate adjustment during training."""

import pytest

from benchmarks.conftest import report
from repro.api import ExecutionConfig
from repro.experiments import fig8_mitigation_training


@pytest.mark.benchmark(group="fig8")
def test_fig8a_tabular_mitigated_transient(benchmark, tabular_config):
    table = benchmark.pedantic(
        fig8_mitigation_training.run_mitigated_transient_heatmap,
        args=(tabular_config, [0.005, 0.01], [500, tabular_config.episodes - 1]),
        kwargs={"mitigation": True, "execution": ExecutionConfig(repetitions=2)},
        rounds=1,
        iterations=1,
    )
    report(table)


@pytest.mark.benchmark(group="fig8")
def test_fig8a_tabular_mitigated_permanent(benchmark, tabular_config):
    table = benchmark.pedantic(
        fig8_mitigation_training.run_mitigated_permanent_sweep,
        args=(tabular_config, [0.005]),
        kwargs={"mitigation": True, "execution": ExecutionConfig(repetitions=2)},
        rounds=1,
        iterations=1,
    )
    report(table)
