"""Fig. 3 benchmark — cumulative-return curves under example faults."""

import pytest

from benchmarks.conftest import report
from repro.experiments import fig3_return_curves


@pytest.mark.benchmark(group="fig3")
def test_fig3a_tabular_return_curves(benchmark, tabular_config):
    scenarios = fig3_return_curves.default_scenarios(tabular_config.episodes, "tabular")[:4]
    series = benchmark.pedantic(
        fig3_return_curves.run_return_curves,
        args=(tabular_config, scenarios),
        rounds=1,
        iterations=1,
    )
    # Print only the tail of each curve to keep the report compact.
    print()
    for name, values in series.series.items():
        print(f"{name:<32} final smoothed return = {values[-1]:.3f}")
    assert len(series.series) == len(scenarios)


@pytest.mark.benchmark(group="fig3")
def test_fig3b_nn_return_curves(benchmark, nn_config):
    scenarios = fig3_return_curves.default_scenarios(nn_config.episodes, "nn")[:3]
    series = benchmark.pedantic(
        fig3_return_curves.run_return_curves,
        args=(nn_config, scenarios),
        rounds=1,
        iterations=1,
    )
    print()
    for name, values in series.series.items():
        print(f"{name:<32} final smoothed return = {values[-1]:.3f}")
    assert len(series.series) == len(scenarios)
