"""Guardrails for the :mod:`repro.kernels` backend layer.

Three promises are kept honest here:

* **Micro** (numba hosts only): the fused numba injection+forward kernels
  must be at least :data:`MICRO_REQUIRED_SPEEDUP` faster than the numpy
  reference on the Fig. 5 NN at B=8 — and bit-identical to it.
* **End to end**: the batched Fig. 5 / Fig. 7 campaigns under the active
  backend must beat a serial numpy-reference campaign by
  :data:`E2E_REQUIRED_SPEEDUP_NUMBA` when numba is installed (10x — the
  point of shipping a JIT backend), and must never be *slower* than serial
  anywhere (numpy-only hosts keep the 1x floor).

Every test writes a ``BENCH_kernels_*.json`` snapshot (including the active
backend and numba version in the ``host`` block) so the perf trajectory of
both backends is tracked across commits.  Runs as plain pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_kernels.py -q
"""

import dataclasses
import time

import numpy as np
import pytest

from bench_snapshot_lib import write_snapshot
from repro import kernels
from repro.core import BatchedEvaluator, BatchedRunner, Campaign, SerialRunner
from repro.core.fault_models import TransientBitFlip
from repro.experiments.common import build_drone_bundle, train_grid_nn
from repro.experiments.config import DroneConfig, GridNNConfig
from repro.experiments.fig5_inference import _NNInferenceTrial
from repro.experiments.fig7_drone import _DroneMSFTrial

#: Batch size every guardrail here is pinned at.
BATCH_SIZE = 8

#: Campaign repetitions for the end-to-end comparisons.
REPETITIONS = 48

#: Required micro advantage of the fused numba kernels over numpy at B=8.
MICRO_REQUIRED_SPEEDUP = 2.0

#: Required end-to-end advantage of batched+numba over serial numpy.
E2E_REQUIRED_SPEEDUP_NUMBA = 10.0


def _best_of(fn, rounds=3):
    """Best-of-N wall-clock time (min is the standard low-noise estimator)."""
    best, result = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _metrics(result):
    return [o.metric for o in result.outcomes]


# --------------------------------------------------------------------------- #
# Micro: fused injection + forward on the Fig. 5 NN
# --------------------------------------------------------------------------- #
@pytest.mark.skipif(not kernels.numba_available(), reason="numba is not installed")
def test_micro_fused_injection_forward_numba_at_least_2x():
    config = GridNNConfig.fast()
    from repro.policies import build_grid_q_network

    net = build_grid_q_network(
        100, 4, hidden_sizes=config.hidden_sizes, rng=np.random.default_rng(0)
    )
    model = TransientBitFlip(0.01)
    x = np.stack([np.eye(100)[r][None] for r in range(BATCH_SIZE)])
    inner_rounds = 50

    def campaign_kernel():
        evaluator = BatchedEvaluator(net, config.weight_qformat, BATCH_SIZE)
        out = None
        for round_index in range(inner_rounds):
            evaluator.restore_clean_weights()
            evaluator.inject_weight_faults(
                model,
                [
                    np.random.default_rng(1000 * round_index + r)
                    for r in range(BATCH_SIZE)
                ],
            )
            out = evaluator.forward(x)
        return out

    with kernels.use_backend("numpy"):
        campaign_kernel()  # warm numpy caches
        numpy_time, numpy_out = _best_of(campaign_kernel)
    with kernels.use_backend("numba"):
        campaign_kernel()  # JIT compile outside the timed region
        numba_time, numba_out = _best_of(campaign_kernel)

    assert np.array_equal(numpy_out, numba_out), (
        "numba fused injection+forward diverged from the numpy reference — "
        "backends must be bit-identical"
    )
    speedup = numpy_time / numba_time
    print(
        f"\nkernels micro (fig5 NN, B={BATCH_SIZE}, {inner_rounds} "
        f"inject+forward rounds): numpy {numpy_time:.3f}s, "
        f"numba {numba_time:.3f}s -> {speedup:.2f}x"
    )
    write_snapshot(
        "kernels_micro",
        {
            "batch_size": BATCH_SIZE,
            "inner_rounds": inner_rounds,
            "numpy_s": numpy_time,
            "numba_s": numba_time,
            "speedup": speedup,
        },
    )
    assert speedup >= MICRO_REQUIRED_SPEEDUP, (
        f"fused numba injection+forward is only {speedup:.2f}x the numpy "
        f"reference at B={BATCH_SIZE} (required: {MICRO_REQUIRED_SPEEDUP}x)"
    )


# --------------------------------------------------------------------------- #
# End to end: batched campaigns vs. serial numpy reference
# --------------------------------------------------------------------------- #
def _e2e_guardrail(name, trial, snapshot_extra):
    campaign = Campaign(f"kernels-e2e-{name}", repetitions=REPETITIONS, seed=3)
    batched_runner = BatchedRunner(batch_size=BATCH_SIZE)

    with kernels.use_backend("numpy"):
        campaign.run(trial, runner=SerialRunner())  # warm caches
        serial_time, serial_result = _best_of(
            lambda: campaign.run(trial, runner=SerialRunner())
        )
    backend = kernels.resolve_backend_name("auto")
    with kernels.use_backend(backend):
        campaign.run(trial, runner=batched_runner)  # warm caches / JIT
        batched_time, batched_result = _best_of(
            lambda: campaign.run(trial, runner=batched_runner)
        )

    assert _metrics(batched_result) == _metrics(serial_result), (
        f"{name}: batched {backend} campaign diverged from the serial numpy "
        "reference — engines and backends must be bit-identical"
    )
    speedup = serial_time / batched_time
    required = (
        E2E_REQUIRED_SPEEDUP_NUMBA if kernels.numba_available() else 1.0
    )
    print(
        f"\nkernels e2e {name} ({REPETITIONS} trials): serial numpy "
        f"{serial_time:.3f}s, batched(B={BATCH_SIZE}) {backend} "
        f"{batched_time:.3f}s -> {speedup:.2f}x (required: {required:g}x)"
    )
    write_snapshot(
        f"kernels_{name}_e2e",
        dict(
            snapshot_extra,
            repetitions=REPETITIONS,
            batch_size=BATCH_SIZE,
            backend=backend,
            serial_numpy_s=serial_time,
            batched_s=batched_time,
            speedup_vs_serial=speedup,
            required_speedup=required,
        ),
    )
    assert speedup >= required, (
        f"batched {backend} {name} campaign is only {speedup:.2f}x the serial "
        f"numpy reference at B={BATCH_SIZE} (required: {required:g}x)"
    )


def test_e2e_fig5_campaign_speedup():
    config = GridNNConfig.fast()
    agent, env, _ = train_grid_nn(config, np.random.default_rng(0))
    trial = _NNInferenceTrial(
        agent, env, "transient-m", 0.01, config.max_steps, config.weight_qformat, 5
    )
    _e2e_guardrail("fig5", trial, {"mode": "transient-m", "ber": 0.01})


def test_e2e_fig7_campaign_speedup():
    config = dataclasses.replace(
        DroneConfig.fast(), image_size=20, eval_trials=1, max_eval_steps=80
    )
    bundle = build_drone_bundle(config, seed=0)
    trial = _DroneMSFTrial(bundle, "indoor-long", weight_fault=TransientBitFlip(1e-3))
    _e2e_guardrail("fig7", trial, {"image_size": 20, "ber": 1e-3})
