"""Shared configuration for the benchmark harness.

Each benchmark regenerates the rows/series of one paper figure and prints the
resulting table, so a ``pytest benchmarks/ --benchmark-only`` run leaves a
textual record of the reproduced trends.  Sweep densities and repetition
counts are kept small so the whole harness runs in minutes on a laptop; set
``REPRO_SCALE=paper`` and ``REPRO_CAMPAIGN_REPS=1000`` to rerun at the
paper's scale, ``REPRO_CAMPAIGN_WORKERS=auto`` (or any worker count) to
fan the campaign trials out over a process pool, and
``REPRO_CAMPAIGN_BATCH=8`` (or any batch size) to evaluate inference
campaigns through the batched vectorized engine — campaign outcomes are
bit-identical to serial runs for the same seed, so neither parallelism nor
batching ever changes the reported numbers.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import DroneConfig, GridNNConfig, GridTabularConfig
from repro.io.results import ResultTable, SeriesResult
from repro.io.tables import render_table

#: Grid World sweeps used across the benchmarks (kept deliberately small).
GRID_BERS = [0.0, 0.005, 0.01]
GRID_EPISODES = [100, 999]
DRONE_BERS = [0.0, 1e-5, 1e-4, 1e-3]


@pytest.fixture(scope="session")
def tabular_config() -> GridTabularConfig:
    return GridTabularConfig(eval_trials=20, repetitions=2)


@pytest.fixture(scope="session")
def nn_config() -> GridNNConfig:
    return GridNNConfig(eval_trials=20, repetitions=1)


@pytest.fixture(scope="session")
def drone_config() -> DroneConfig:
    """Drone setup with a lighter pre-training pass for benchmark runtime."""
    return DroneConfig(
        pretrain_samples=300,
        pretrain_extra_env_samples=400,
        pretrain_epochs=25,
        eval_trials=2,
        max_eval_steps=250,
        finetune_episodes=4,
        finetune_max_steps=40,
        repetitions=1,
    )


def report(result) -> None:
    """Print a result table / series under the benchmark output."""
    if isinstance(result, SeriesResult):
        result = result.as_table()
    assert isinstance(result, ResultTable)
    print()
    print(render_table(result))
