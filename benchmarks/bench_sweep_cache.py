"""Warm-sweep cache guardrail.

The sweep orchestrator's core promise is *never recompute a result you
already have*: a second run of the same sweep against a warm artifact store
must serve every point from disk and execute **zero** campaign trials.
This module keeps that promise honest — it runs a small real Fig. 5 sweep
twice against a fresh store and **fails if the warm run re-executes any
trial** (measured by the process-wide executed-trial counter, so nothing
can slip through via a different engine or a silent cache miss), while
also asserting the warm results are bit-identical to the cold ones and
that the warm run is not slower than the cold one.

Like ``bench_batched_fig5.py`` this needs no pytest-benchmark plugin, so CI
runs it as a plain pytest invocation (see the "sweep-smoke" job in
``.github/workflows/ci.yml``)::

    PYTHONPATH=src python -m pytest benchmarks/bench_sweep_cache.py -q
"""

import time

from bench_snapshot_lib import write_snapshot
from repro import api
from repro.api import ExecutionConfig
from repro.core.runner import executed_trial_count
from repro.store import ArtifactStore
from repro.sweep import SweepSpec

#: The guardrail sweep: two real fig5 points at the unit-test preset.
SWEEP = SweepSpec.grid("fig5.inference", {"fast": True}, episodes_per_trial=[1, 2])

EXECUTION = ExecutionConfig(seed=13, repetitions=2)


def test_warm_sweep_executes_zero_trials(tmp_path):
    # A real ArtifactStore instance (not just its path) so the warm phase
    # can also be audited through the store's own hit/miss counters.
    store = ArtifactStore(tmp_path / "store")

    start = time.perf_counter()
    cold = api.sweep(SWEEP, execution=EXECUTION, store=store)
    cold_s = time.perf_counter() - start
    assert cold.cache_hits == 0
    # fig5 runs one campaign per (fault mode x BER) cell: 16 campaigns of
    # `repetitions` trials per point at the small scale.
    assert cold.executed_trials > 0

    before = executed_trial_count()
    hits_before, misses_before = store.hits, store.misses
    start = time.perf_counter()
    warm = api.sweep(SWEEP, execution=EXECUTION, store=store)
    warm_s = time.perf_counter() - start
    executed = executed_trial_count() - before
    warm_hits = store.hits - hits_before
    warm_misses = store.misses - misses_before

    assert executed == 0, (
        f"warm-cache sweep re-executed {executed} trial(s); the artifact "
        "store failed to serve every point"
    )
    assert warm.cache_hits == len(warm.points) == 2
    # 100% hit rate, counted at the store itself: one hit per point and not
    # a single miss during the warm phase.
    assert warm_misses == 0, f"warm sweep missed the store {warm_misses} time(s)"
    assert warm_hits == len(warm.points), (
        f"warm sweep hit the store {warm_hits} time(s) for "
        f"{len(warm.points)} points"
    )
    assert warm.table().rows == cold.table().rows, (
        "cache-served sweep results differ from the freshly computed ones"
    )
    assert warm_s <= cold_s, (
        f"warm sweep ({warm_s:.3f}s) slower than cold ({cold_s:.3f}s); "
        "cache hits should skip training and campaigns entirely"
    )
    print(
        f"\nsweep cache guardrail: cold {cold_s:.3f}s "
        f"({cold.executed_trials} trials) -> warm {warm_s:.3f}s (0 trials, "
        f"speedup x{cold_s / max(warm_s, 1e-9):.1f})"
    )
    write_snapshot(
        "sweep_cache",
        {
            "n_points": len(cold.points),
            "cold_s": cold_s,
            "cold_trials": cold.executed_trials,
            "warm_s": warm_s,
            "warm_trials": executed,
            "warm_store_hits": warm_hits,
            "warm_store_misses": warm_misses,
            "speedup": cold_s / max(warm_s, 1e-9),
        },
    )
