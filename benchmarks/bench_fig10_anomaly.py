"""Fig. 10 benchmark — range-based anomaly detection at inference."""

import pytest

from benchmarks.conftest import report
from repro.api import ExecutionConfig
from repro.experiments import fig10_anomaly
from repro.experiments.common import build_drone_bundle


@pytest.mark.benchmark(group="fig10")
def test_fig10a_gridworld_mitigation(benchmark, nn_config):
    table = benchmark.pedantic(
        fig10_anomaly.run_gridworld_anomaly_mitigation,
        args=(nn_config, [0.0, 0.005, 0.01]),
        kwargs={"execution": ExecutionConfig(repetitions=3), "episodes_per_trial": 4},
        rounds=1,
        iterations=1,
    )
    report(table)


@pytest.mark.benchmark(group="fig10")
def test_fig10b_drone_mitigation(benchmark, drone_config):
    build_drone_bundle(drone_config, seed=0)
    table = benchmark.pedantic(
        fig10_anomaly.run_drone_anomaly_mitigation,
        args=(drone_config, [0.0, 1e-5, 1e-4, 1e-3]),
        kwargs={"execution": ExecutionConfig(repetitions=2)},
        rounds=1,
        iterations=1,
    )
    report(table)
    # Mitigation should not hurt the fault-free flight and should help under faults.
    mitigated = {r["bit_error_rate"]: r["mean_safe_flight"] for r in table.filter(mitigation=True).rows}
    unmitigated = {r["bit_error_rate"]: r["mean_safe_flight"] for r in table.filter(mitigation=False).rows}
    faulty_bers = [b for b in mitigated if b > 0]
    assert any(mitigated[b] >= unmitigated[b] for b in faulty_bers)
