"""Fig. 4 benchmark — convergence after transient faults, extra training under stuck-at."""

import pytest

from benchmarks.conftest import report
from repro.api import ExecutionConfig
from repro.experiments import fig4_convergence


@pytest.mark.benchmark(group="fig4")
def test_fig4a_tabular_transient_convergence(benchmark, tabular_config):
    table = benchmark.pedantic(
        fig4_convergence.run_transient_convergence,
        args=(tabular_config, [0.0, 0.005, 0.01]),
        kwargs={"extra_episodes": 400, "execution": ExecutionConfig(repetitions=2)},
        rounds=1,
        iterations=1,
    )
    report(table)


@pytest.mark.benchmark(group="fig4")
def test_fig4b_tabular_permanent_extra_training(benchmark, tabular_config):
    table = benchmark.pedantic(
        fig4_convergence.run_permanent_extra_training,
        args=(tabular_config, [0.005]),
        kwargs={"extra_episode_grid": (500,), "execution": ExecutionConfig(repetitions=2)},
        rounds=1,
        iterations=1,
    )
    report(table)
