"""Headline-summary benchmark — the Sec. 5.2 claims (2x, +39%, <3% overhead)."""

import pytest

from benchmarks.conftest import report
from repro.api import ExecutionConfig
from repro.core.mitigation.anomaly import estimate_runtime_overhead
from repro.experiments import fig10_anomaly, summary
from repro.experiments.common import build_drone_bundle
from repro.quant import Q16_NARROW


@pytest.mark.benchmark(group="summary")
def test_headline_drone_qof_improvement(benchmark, drone_config):
    build_drone_bundle(drone_config, seed=0)
    table = benchmark.pedantic(
        fig10_anomaly.run_drone_anomaly_mitigation,
        args=(drone_config, [1e-4, 1e-3]),
        kwargs={"execution": ExecutionConfig(repetitions=2)},
        rounds=1,
        iterations=1,
    )
    gains = summary.summarize_mitigation_gains(table, "mean_safe_flight")
    report(gains)
    best = max(row["relative_improvement"] for row in gains.rows)
    # The paper reports ~+39%; the smaller reproduction policy typically
    # recovers substantially more, so only the direction is asserted.
    assert best > 0.0


@pytest.mark.benchmark(group="summary")
def test_headline_detector_overhead(benchmark):
    overhead = benchmark.pedantic(
        estimate_runtime_overhead,
        args=(Q16_NARROW.total_bits, Q16_NARROW.sign_bits + Q16_NARROW.integer_bits),
        rounds=1,
        iterations=1,
    )
    print(f"\nestimated detector runtime overhead: {overhead * 100:.2f}% (paper: <3%)")
    assert overhead < 0.03
