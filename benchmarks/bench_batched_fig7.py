"""Native-batch-vs-EnvPool guardrail for the Fig. 7 drone campaigns.

The drone simulator used to be batched through :class:`EnvPool` — B scalar
environments stepped one by one, each ray-casting its camera columns in a
Python loop.  :class:`~repro.envs.drone.DroneNavEnvBatch` replaces that with
replica-axis numpy ray casting, and this module keeps the replacement
honest: it times the same Fig. 7 MSF campaign with the native batched
environment, with the scalar ``EnvPool`` backend, and under ``SerialRunner``,
asserts all three produce bit-identical per-trial MSF values, and **fails if
the native batch is less than 4x faster than the pool** at the pinned batch
size.

Runs as plain pytest (no pytest-benchmark plugin), like the other
guardrails (see the "fig7 smoke" job in ``.github/workflows/ci.yml``)::

    PYTHONPATH=src python -m pytest benchmarks/bench_batched_fig7.py -q
"""

import dataclasses
import time

import pytest

from bench_snapshot_lib import write_snapshot
from repro.core import BatchedRunner, Campaign, SerialRunner
from repro.core.fault_models import TransientBitFlip
from repro.experiments.common import build_drone_bundle
from repro.experiments.config import DroneConfig
from repro.experiments.fig7_drone import _DroneMSFTrial

#: Batch size the acceptance guardrail is pinned at.
BATCH_SIZE = 8

#: Campaign repetitions: six full batches per engine, enough episode work to
#: dominate timer noise while keeping the total run CI-friendly.
REPETITIONS = 48

#: Required end-to-end advantage of the native batched environment over the
#: scalar EnvPool at ``BATCH_SIZE`` — campaign wall-clock, not env-only.
REQUIRED_SPEEDUP = 4.0

ENV_NAME = "indoor-long"


@pytest.fixture(scope="module")
def drone_bundle():
    # A small image keeps the (shared) stacked network forward from masking
    # the environment cost this guardrail exists to compare; 20 is the
    # smallest input the drone CNN accepts.
    config = dataclasses.replace(
        DroneConfig.fast(), image_size=20, eval_trials=1, max_eval_steps=80
    )
    return build_drone_bundle(config, seed=0)


def _best_of(fn, rounds=3):
    """Best-of-N wall-clock time (min is the standard low-noise estimator)."""
    best, result = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _metrics(result):
    return [o.metric for o in result.outcomes]


def test_native_batch_at_least_4x_faster_than_envpool(drone_bundle):
    # The zero-BER point of the fig7b sweep: clean weights, so episodes run
    # their full course and the timing compares steady-state stepping cost.
    native = _DroneMSFTrial(
        drone_bundle, ENV_NAME, weight_fault=TransientBitFlip(0.0)
    )
    pool = _DroneMSFTrial(
        drone_bundle,
        ENV_NAME,
        weight_fault=TransientBitFlip(0.0),
        env_backend="pool",
    )
    campaign = Campaign("fig7-guardrail", repetitions=REPETITIONS, seed=3)

    batched = BatchedRunner(batch_size=BATCH_SIZE)
    campaign.run(native, runner=batched)  # warm caches before timing
    native_time, native_result = _best_of(lambda: campaign.run(native, runner=batched))
    pool_time, pool_result = _best_of(lambda: campaign.run(pool, runner=batched))
    serial_time, serial_result = _best_of(
        lambda: campaign.run(native, runner=SerialRunner())
    )

    assert _metrics(native_result) == _metrics(pool_result) == _metrics(serial_result), (
        "native batched, EnvPool and serial campaigns diverged — the three "
        "paths must be bit-identical"
    )

    speedup_vs_pool = pool_time / native_time
    speedup_vs_serial = serial_time / native_time
    print(
        f"\nfig7 MSF campaign ({REPETITIONS} trials, single worker): "
        f"serial {serial_time:.3f}s, pool(B={BATCH_SIZE}) {pool_time:.3f}s, "
        f"native(B={BATCH_SIZE}) {native_time:.3f}s "
        f"-> {speedup_vs_pool:.2f}x vs pool, {speedup_vs_serial:.2f}x vs serial"
    )
    write_snapshot(
        "batched_fig7",
        {
            "repetitions": REPETITIONS,
            "batch_size": BATCH_SIZE,
            "image_size": 20,
            "eval_trials": 1,
            "serial_s": serial_time,
            "pool_s": pool_time,
            "native_s": native_time,
            "speedup_vs_pool": speedup_vs_pool,
            "speedup_vs_serial": speedup_vs_serial,
        },
    )
    assert speedup_vs_pool >= REQUIRED_SPEEDUP, (
        f"native drone batch is only {speedup_vs_pool:.2f}x faster than the "
        f"scalar EnvPool at B={BATCH_SIZE} (required: {REQUIRED_SPEEDUP}x); "
        "the vectorized hot path has regressed"
    )


def test_faulty_campaign_identical_across_backends(drone_bundle):
    # Untimed identity check at a damaging BER: faulted replicas diverge and
    # finish at different steps, exercising the partial-batch stepping the
    # timed clean run barely touches.
    native = _DroneMSFTrial(
        drone_bundle, ENV_NAME, weight_fault=TransientBitFlip(1e-3)
    )
    pool = _DroneMSFTrial(
        drone_bundle,
        ENV_NAME,
        weight_fault=TransientBitFlip(1e-3),
        env_backend="pool",
    )
    campaign = Campaign("fig7-guardrail-faulty", repetitions=REPETITIONS, seed=7)
    native_result = campaign.run(native, runner=BatchedRunner(batch_size=BATCH_SIZE))
    pool_result = campaign.run(pool, runner=BatchedRunner(batch_size=BATCH_SIZE))
    serial_result = campaign.run(native, runner=SerialRunner())
    assert _metrics(native_result) == _metrics(pool_result) == _metrics(serial_result)
