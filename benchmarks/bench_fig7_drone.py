"""Fig. 7 benchmark — drone navigation fault characterization (all five panels)."""

import pytest

from benchmarks.conftest import DRONE_BERS, report
from repro.api import ExecutionConfig
from repro.experiments import fig7_drone
from repro.experiments.common import build_drone_bundle


@pytest.fixture(scope="module", autouse=True)
def warm_bundle(drone_config):
    """Pre-train the drone policy once so individual benches time only the sweeps."""
    return build_drone_bundle(drone_config, seed=0)


@pytest.mark.benchmark(group="fig7")
def test_fig7a_online_training_faults(benchmark, drone_config):
    table = benchmark.pedantic(
        fig7_drone.run_drone_training_faults,
        args=(drone_config, [0.0, 1e-3, 1e-2]),
        kwargs={"execution": ExecutionConfig(repetitions=1)},
        rounds=1,
        iterations=1,
    )
    report(table)


@pytest.mark.benchmark(group="fig7")
def test_fig7b_environment_comparison(benchmark, drone_config):
    table = benchmark.pedantic(
        fig7_drone.run_environment_comparison,
        args=(drone_config, DRONE_BERS),
        kwargs={"execution": ExecutionConfig(repetitions=2)},
        rounds=1,
        iterations=1,
    )
    report(table)
    # Both environments should degrade as the BER grows.
    for env_name in ("indoor-long", "indoor-vanleer"):
        rows = table.filter(environment=env_name).rows
        clean = rows[0]["mean_safe_flight"]
        worst = rows[-1]["mean_safe_flight"]
        assert worst <= clean


@pytest.mark.benchmark(group="fig7")
def test_fig7c_fault_locations(benchmark, drone_config):
    table = benchmark.pedantic(
        fig7_drone.run_fault_location_sweep,
        args=(drone_config, [1e-4, 1e-3]),
        kwargs={"execution": ExecutionConfig(repetitions=2)},
        rounds=1,
        iterations=1,
    )
    report(table)
    # The input buffer is the most fault-tolerant location (Fig. 7c).
    input_msf = min(r["mean_safe_flight"] for r in table.filter(location="input").rows)
    weight_msf = min(r["mean_safe_flight"] for r in table.filter(location="weight").rows)
    assert input_msf >= weight_msf


@pytest.mark.benchmark(group="fig7")
def test_fig7d_layer_sensitivity(benchmark, drone_config):
    table = benchmark.pedantic(
        fig7_drone.run_layer_sweep,
        args=(drone_config, [1e-3, 1e-2]),
        kwargs={"execution": ExecutionConfig(repetitions=2)},
        rounds=1,
        iterations=1,
    )
    report(table)


@pytest.mark.benchmark(group="fig7")
def test_fig7e_data_types(benchmark, drone_config):
    table = benchmark.pedantic(
        fig7_drone.run_datatype_sweep,
        args=(drone_config, [1e-4, 1e-3]),
        kwargs={"execution": ExecutionConfig(repetitions=2)},
        rounds=1,
        iterations=1,
    )
    report(table)
