"""Telemetry overhead guardrail.

The event bus makes two performance promises:

1. **Detached is free.**  With no subscribers (the default for every
   library user who never asks for tracing), the hot-path guard is a
   single attribute read — no event objects are constructed, nothing is
   serialized.  This module bounds the guard at well under a microsecond
   per check and fails if it ever grows into something measurable.
2. **Attached is cheap.**  Recording a full JSONL trace of a real Fig. 5
   campaign run must cost at most 10% wall time over the untraced run.
   Experiments here run hundreds of trials per second; telemetry that
   slows the science by more than that is a regression.

Plain pytest, no plugin needed (mirrors the other guardrails)::

    PYTHONPATH=src python -m pytest benchmarks/bench_telemetry_overhead.py -q
"""

import time

from bench_snapshot_lib import write_snapshot
from repro import api
from repro.api import ExecutionConfig
from repro.telemetry import EventBus, default_bus, trace_to

#: Attached-sink wall-time budget: traced <= (1 + OVERHEAD_BUDGET) x untraced.
OVERHEAD_BUDGET = 0.10

#: Absolute slack (seconds) so sub-second workloads don't flake on scheduler
#: jitter: the relative budget only starts to bite past this floor.
ABSOLUTE_SLACK_S = 0.050

#: Detached-guard budget: one ``bus.active`` check must stay under this.
GUARD_BUDGET_S = 1e-6

EXECUTION = ExecutionConfig(seed=13, repetitions=4)


def _run_fig5() -> float:
    start = time.perf_counter()
    api.run("fig5.inference", {"fast": True}, execution=EXECUTION)
    return time.perf_counter() - start


def _best_of(n: int, fn) -> float:
    """Best-of-n wall time: robust against one-off scheduler hiccups."""
    return min(fn() for _ in range(n))


def test_null_bus_guard_is_not_measurable():
    """The detached hot-path guard costs nanoseconds, not microseconds."""
    bus = EventBus()
    assert not bus.active
    iterations = 200_000
    # Warm up attribute caches before timing.
    for _ in range(1000):
        if bus.active:
            raise AssertionError("empty bus reported active")
    start = time.perf_counter()
    hits = 0
    for _ in range(iterations):
        if bus.active:  # the exact guard every instrumented hot path uses
            hits += 1
    per_check = (time.perf_counter() - start) / iterations
    assert hits == 0
    assert per_check < GUARD_BUDGET_S, (
        f"detached bus guard costs {per_check * 1e9:.0f}ns per check "
        f"(budget: {GUARD_BUDGET_S * 1e9:.0f}ns); the null path must stay free"
    )
    write_snapshot(
        "telemetry_guard",
        {"iterations": iterations, "per_check_ns": per_check * 1e9},
    )


def test_attached_sink_overhead_under_budget(tmp_path):
    """A full JSONL trace of fig5 costs at most 10% wall over untraced."""
    assert not default_bus().active, "leaked subscriber from another test"

    # Interleave one warm-up of each variant (JIT-free Python, but imports,
    # allocator pools and the page cache all warm up on the first pass).
    _run_fig5()
    trace = tmp_path / "fig5.jsonl"
    with trace_to(trace):
        _run_fig5()

    untraced_s = _best_of(3, _run_fig5)

    def traced() -> float:
        with trace_to(trace):
            return _run_fig5()

    traced_s = _best_of(3, traced)
    events = sum(1 for _ in trace.open())
    assert events > 0, "traced fig5 produced no events"

    budget_s = untraced_s * (1.0 + OVERHEAD_BUDGET) + ABSOLUTE_SLACK_S
    assert traced_s <= budget_s, (
        f"traced fig5 took {traced_s:.3f}s vs {untraced_s:.3f}s untraced "
        f"({(traced_s / untraced_s - 1) * 100:+.1f}%); budget is "
        f"{OVERHEAD_BUDGET * 100:.0f}% + {ABSOLUTE_SLACK_S * 1000:.0f}ms"
    )
    print(
        f"\ntelemetry overhead: untraced {untraced_s:.3f}s -> traced "
        f"{traced_s:.3f}s ({(traced_s / untraced_s - 1) * 100:+.1f}%, "
        f"{events} events)"
    )
    write_snapshot(
        "telemetry_overhead",
        {
            "untraced_s": untraced_s,
            "traced_s": traced_s,
            "overhead_pct": (traced_s / untraced_s - 1) * 100,
            "events": events,
        },
    )
