"""Fig. 9 benchmark — exploration-rate adjustment vs BER, recovery-speed trade-off."""

import pytest

from benchmarks.conftest import report
from repro.api import ExecutionConfig
from repro.experiments import fig9_exploration


@pytest.mark.benchmark(group="fig9")
def test_fig9ab_exploration_adjustment(benchmark, tabular_config):
    table = benchmark.pedantic(
        fig9_exploration.run_exploration_adjustment_sweep,
        args=(tabular_config, [0.005, 0.01]),
        kwargs={"fault_types": ("transient", "stuck-at-1"), "execution": ExecutionConfig(repetitions=2)},
        rounds=1,
        iterations=1,
    )
    report(table)


@pytest.mark.benchmark(group="fig9")
def test_fig9c_recovery_speed(benchmark, tabular_config):
    table = benchmark.pedantic(
        fig9_exploration.run_recovery_speed_correlation,
        args=(tabular_config,),
        kwargs={"exploration_boosts": (0.25, 0.75), "execution": ExecutionConfig(repetitions=2)},
        rounds=1,
        iterations=1,
    )
    report(table)
