"""Fig. 2 benchmark — training-time fault heatmaps and value histograms."""

import pytest

from benchmarks.conftest import GRID_BERS, GRID_EPISODES, report
from repro.api import ExecutionConfig
from repro.experiments import fig2_training


@pytest.mark.benchmark(group="fig2")
def test_fig2a_tabular_transient_heatmap(benchmark, tabular_config):
    table = benchmark.pedantic(
        fig2_training.run_transient_training_heatmap,
        args=(tabular_config, GRID_BERS, GRID_EPISODES),
        kwargs={"execution": ExecutionConfig(repetitions=2)},
        rounds=1,
        iterations=1,
    )
    report(table)
    clean = [r["success_rate"] for r in table.rows if r["bit_error_rate"] == 0.0]
    assert min(clean) >= 0.8


@pytest.mark.benchmark(group="fig2")
def test_fig2a_tabular_permanent_sweep(benchmark, tabular_config):
    table = benchmark.pedantic(
        fig2_training.run_permanent_training_sweep,
        args=(tabular_config, [0.005, 0.01]),
        kwargs={"execution": ExecutionConfig(repetitions=2)},
        rounds=1,
        iterations=1,
    )
    report(table)


@pytest.mark.benchmark(group="fig2")
def test_fig2c_nn_transient_heatmap(benchmark, nn_config):
    table = benchmark.pedantic(
        fig2_training.run_transient_training_heatmap,
        args=(nn_config, [0.0, 0.01], [50, nn_config.episodes - 1]),
        kwargs={"execution": ExecutionConfig(repetitions=1)},
        rounds=1,
        iterations=1,
    )
    report(table)


@pytest.mark.benchmark(group="fig2")
def test_fig2bd_value_histograms(benchmark, tabular_config, nn_config):
    table = benchmark.pedantic(
        fig2_training.run_value_histograms,
        args=(tabular_config, nn_config),
        rounds=1,
        iterations=1,
    )
    report(table)
    assert len(table) == 2
