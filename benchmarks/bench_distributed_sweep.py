"""Distributed-sweep scaling guardrail.

``DistributedSweepRunner`` exists to make multi-point sweeps faster by
sharding points across worker processes; this module keeps that promise
honest.  It runs the same compute-bound 8-point sweep cold (cache off)
with one worker and with four, **fails if four workers are not at least
2x faster than one** — while also asserting the two runs produce
bit-identical per-point results — and records the measured times as a
``BENCH_distributed_sweep.json`` snapshot (see ``bench_snapshot_lib``).

The workload is a registered synthetic spec whose points each burn a fixed
amount of *elementwise* numpy work: deterministic given the seed (so the
bit-identity assertion is meaningful) and guaranteed single-threaded (so
BLAS thread pools cannot silently parallelize the one-worker baseline and
fake away the speedup).  Like the other guardrails this needs no
pytest-benchmark plugin::

    PYTHONPATH=src python -m pytest benchmarks/bench_distributed_sweep.py -q
"""

import os
import time

import numpy as np
import pytest

from bench_snapshot_lib import write_snapshot
from repro.api.execution import ExecutionConfig
from repro.experiments.registry import ParamSpec, register_experiment
from repro.io.results import ResultTable
from repro.sweep import DistributedSweepRunner, SweepSpec

SPIN_SPEC = "synthetic.spin"

#: Elementwise iterations per point (~0.3s each): long enough that the
#: 8-point sweep dwarfs worker startup, short enough for CI.
SPIN_UNITS = 800

N_POINTS = 8

#: The acceptance floor: 4 workers must beat 1 worker by at least this.
MIN_SPEEDUP = 2.0


@register_experiment(
    SPIN_SPEC,
    description="Compute-bound synthetic point (benchmark-only): burns "
    "a fixed amount of single-threaded numpy work",
    params=(
        ParamSpec("point", int, 0, help="point id (cache-key salt)"),
        ParamSpec("units", int, SPIN_UNITS, help="elementwise iterations to burn"),
    ),
)
def run_spin(execution: ExecutionConfig, *, point: int, units: int) -> ResultTable:
    rng = np.random.default_rng(execution.seed)
    x = rng.random(65536)
    for _ in range(units):
        x = np.sin(x * 1.0001 + 0.01)
    table = ResultTable(title=f"spin point {point}")
    table.add(point=point, units=units, checksum=float(np.mean(x)))
    return table


def _sweep():
    return SweepSpec.grid(SPIN_SPEC, point=list(range(N_POINTS)))


def _timed_run(workers):
    runner = DistributedSweepRunner(sweep_workers=workers, cache="off")
    start = time.perf_counter()
    artifact = runner.run(_sweep(), ExecutionConfig(seed=17, repetitions=1))
    return time.perf_counter() - start, artifact


@pytest.mark.skipif((os.cpu_count() or 1) < 4, reason="needs >= 4 CPUs")
def test_four_workers_at_least_2x_one_worker():
    one_s, one = _timed_run(1)
    four_s, four = _timed_run(4)

    assert [pt.artifact.result.to_json_dict() for pt in four.points] == [
        pt.artifact.result.to_json_dict() for pt in one.points
    ], "distributed runs diverged across worker counts — they must be bit-identical"

    speedup = one_s / four_s
    print(
        f"\ndistributed sweep guardrail ({N_POINTS} compute-bound points): "
        f"1 worker {one_s:.2f}s, 4 workers {four_s:.2f}s -> {speedup:.2f}x"
    )
    write_snapshot(
        "distributed_sweep",
        {
            "n_points": N_POINTS,
            "spin_units": SPIN_UNITS,
            "one_worker_s": one_s,
            "four_workers_s": four_s,
            "speedup": speedup,
            "min_speedup": MIN_SPEEDUP,
        },
    )
    assert speedup >= MIN_SPEEDUP, (
        f"4 workers only {speedup:.2f}x over 1 worker on a cold {N_POINTS}-point "
        f"sweep (floor: {MIN_SPEEDUP}x); distributed scaling has regressed"
    )
