"""``batch_size x workers`` composition profile for the campaign engines.

The engine knobs compose: ``BatchedRunner(batch_size=B, workers=W)`` shards
batches across W worker processes, each evaluating B replicas through the
vectorized kernel path.  This module profiles the small knob grid on the
Fig. 5 and Fig. 7 campaigns, records every operating point (and the best
one) in ``BENCH_composition_*.json``, asserts all points stay bit-identical,
and fails if composing the knobs ever loses to plain serial execution —
the floor that makes ``--workers``/``--batch-size`` safe advice.

Worker processes inherit the active kernel backend through the module-global
selection (fork) or re-resolve the same environment default (spawn), so the
profile exercises whichever backend the host runs.

Runs as plain pytest, like the other guardrails::

    PYTHONPATH=src python -m pytest benchmarks/bench_composition.py -q
"""

import dataclasses
import time

import numpy as np
import pytest

from bench_snapshot_lib import write_snapshot
from repro import kernels
from repro.core import Campaign
from repro.core.fault_models import TransientBitFlip
from repro.core.runner import make_runner
from repro.experiments.common import build_drone_bundle, train_grid_nn
from repro.experiments.config import DroneConfig, GridNNConfig
from repro.experiments.fig5_inference import _NNInferenceTrial
from repro.experiments.fig7_drone import _DroneMSFTrial

#: The profiled operating points.  (1, 1) is the serial baseline; the rest
#: exercise each knob alone and both together.  Small on purpose — this runs
#: in CI, and the interesting signal is the *shape*, not exhaustive coverage.
GRID = [(1, 1), (1, 8), (2, 1), (2, 8)]  # (workers, batch_size)

#: Campaign repetitions: divisible by every profiled batch size.
REPETITIONS = 32


def _best_of(fn, rounds=2):
    """Best-of-N wall-clock time (min is the standard low-noise estimator)."""
    best, result = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _metrics(result):
    return [o.metric for o in result.outcomes]


def _profile(name, trial):
    campaign = Campaign(f"composition-{name}", repetitions=REPETITIONS, seed=3)
    campaign.run(trial, runner=make_runner(1, 1))  # warm caches before timing

    times = {}
    reference_metrics = None
    for workers, batch_size in GRID:
        runner = make_runner(workers, batch_size)
        elapsed, result = _best_of(lambda: campaign.run(trial, runner=runner))
        times[(workers, batch_size)] = elapsed
        if reference_metrics is None:
            reference_metrics = _metrics(result)
        else:
            assert _metrics(result) == reference_metrics, (
                f"{name}: workers={workers} batch_size={batch_size} diverged "
                "from the serial baseline — every composition must be "
                "bit-identical"
            )

    serial_time = times[(1, 1)]
    best_point = min(times, key=times.get)
    best_time = times[best_point]
    lines = ", ".join(
        f"W={w} B={b}: {t:.3f}s ({serial_time / t:.2f}x)"
        for (w, b), t in sorted(times.items())
    )
    print(f"\ncomposition {name} ({REPETITIONS} trials): {lines}")
    write_snapshot(
        f"composition_{name}",
        {
            "repetitions": REPETITIONS,
            "backend": kernels.active_backend_name(),
            "points": {
                f"workers={w},batch={b}": t for (w, b), t in sorted(times.items())
            },
            "serial_s": serial_time,
            "best_point": f"workers={best_point[0]},batch={best_point[1]}",
            "best_s": best_time,
            "best_speedup": serial_time / best_time,
        },
    )
    # The floor: the best *composed* operating point (serial excluded, so the
    # assert cannot pass vacuously) must not lose to plain serial execution.
    composed = {point: t for point, t in times.items() if point != (1, 1)}
    best_composed = min(composed, key=composed.get)
    assert composed[best_composed] <= serial_time, (
        f"{name}: every composed operating point lost to serial "
        f"(best W={best_composed[0]} B={best_composed[1]} at "
        f"{composed[best_composed]:.3f}s vs serial {serial_time:.3f}s)"
    )


def test_composition_profile_fig5():
    config = GridNNConfig.fast()
    agent, env, _ = train_grid_nn(config, np.random.default_rng(0))
    trial = _NNInferenceTrial(
        agent, env, "transient-m", 0.01, config.max_steps, config.weight_qformat, 5
    )
    _profile("fig5", trial)


def test_composition_profile_fig7():
    config = dataclasses.replace(
        DroneConfig.fast(), image_size=20, eval_trials=1, max_eval_steps=80
    )
    bundle = build_drone_bundle(config, seed=0)
    trial = _DroneMSFTrial(bundle, "indoor-long", weight_fault=TransientBitFlip(1e-3))
    _profile("fig7", trial)
