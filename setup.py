"""Setup shim for environments without the `wheel` package.

All project metadata lives in ``pyproject.toml``; this file only enables
legacy editable installs (``pip install -e . --no-use-pep517``) on systems
where PEP 660 builds are unavailable offline.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
    # numba is strictly optional: it unlocks the JIT kernel backend
    # (repro.kernels), but every code path falls back to the bit-identical
    # numpy reference when it is absent.
    extras_require={"numba": ["numba>=0.56"]},
    entry_points={
        "console_scripts": [
            "repro-campaign=repro.__main__:main",
        ]
    },
)
