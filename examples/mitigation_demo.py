"""Demonstration of the two fault-mitigation techniques (Sec. 5).

1. Training-time: a transient fault is injected mid-training; the adaptive
   exploration controller detects the reward drop and boosts exploration.
2. Inference-time: transient faults corrupt the NN weights; the range-based
   anomaly detector scrubs the out-of-range values before they reach the
   policy.

Run with:  python examples/mitigation_demo.py
"""

import numpy as np

from repro.core.fault_models import TransientBitFlip
from repro.core.injector import TransientTrainingFaultHook, inject_weight_faults
from repro.core.mitigation import AdaptiveExplorationController, RangeAnomalyDetector
from repro.experiments.common import greedy_policy, train_grid_nn, train_tabular
from repro.experiments.config import GridNNConfig, GridTabularConfig
from repro.nn.buffers import QuantizedExecutor
from repro.rl import evaluate_success_rate


def training_mitigation_demo() -> None:
    print("== Training-time mitigation: adaptive exploration-rate adjustment ==")
    config = GridTabularConfig(eval_trials=30)
    inject_episode = int(config.episodes * 0.95)

    for mitigated in (False, True):
        rng = np.random.default_rng(7)
        hooks = [TransientTrainingFaultHook(0.01, inject_episode=inject_episode, rng=rng)]
        controller = None
        if mitigated:
            controller = AdaptiveExplorationController(alpha=0.8)
            hooks.append(controller)
        agent, eval_env, _ = train_tabular(config, rng, hooks=hooks)
        rate = evaluate_success_rate(greedy_policy(agent), eval_env, trials=30)
        label = "with mitigation   " if mitigated else "without mitigation"
        extra = ""
        if controller is not None:
            extra = (
                f" (transient detections: {controller.transient_detections}, "
                f"adjustments: {len(controller.adjustments)})"
            )
        print(f"  {label}: success rate {rate:.2f}{extra}")


def inference_mitigation_demo() -> None:
    print("\n== Inference-time mitigation: range-based anomaly detection ==")
    config = GridNNConfig(eval_trials=30)
    rng = np.random.default_rng(3)
    agent, eval_env, _ = train_grid_nn(config, rng)

    calibration = np.stack([eval_env.one_hot(s) for s in range(eval_env.n_states)])
    profile = QuantizedExecutor(agent.network, config.weight_qformat).profile_ranges(calibration)

    for mitigated in (False, True):
        executor = QuantizedExecutor(agent.network, config.weight_qformat)
        inject_weight_faults(executor, TransientBitFlip(0.005), rng=np.random.default_rng(11))
        detector = None
        if mitigated:
            detector = RangeAnomalyDetector(profile, margin=0.1)
            detector.apply_to_weights(executor)
        policy = lambda s: int(np.argmax(executor.forward(agent.state_encoder(s)[None])[0]))
        rate = evaluate_success_rate(policy, eval_env, trials=20, max_steps=config.max_steps)
        label = "with detector   " if mitigated else "without detector"
        extra = f" (anomalies removed: {detector.counters.detected_anomalies})" if detector else ""
        print(f"  {label}: success rate {rate:.2f}{extra}")
        executor.restore_clean_weights()


if __name__ == "__main__":
    training_mitigation_demo()
    inference_mitigation_demo()
