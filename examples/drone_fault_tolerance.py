"""Drone navigation fault-tolerance study (a miniature of Fig. 7 and Fig. 10b).

Pre-trains the C3F2 policy on the corridor simulator, then measures Mean Safe
Flight under weight faults for different fixed-point formats and with/without
the range-based anomaly detector.

Run with:  python examples/drone_fault_tolerance.py
"""

from repro.api import ExecutionConfig
from repro.experiments.config import DroneConfig
from repro.experiments.fig7_drone import run_datatype_sweep, run_environment_comparison
from repro.experiments.fig10_anomaly import run_drone_anomaly_mitigation
from repro.experiments.summary import summarize_mitigation_gains
from repro.io.tables import render_table


def main() -> None:
    config = DroneConfig(
        pretrain_samples=300,
        pretrain_extra_env_samples=400,
        pretrain_epochs=25,
        eval_trials=2,
        max_eval_steps=250,
        repetitions=1,
    )
    bers = [0.0, 1e-5, 1e-4, 1e-3]

    once = ExecutionConfig(repetitions=1)
    print("== Environment comparison under transient weight faults (Fig. 7b) ==")
    print(render_table(run_environment_comparison(config, bers, execution=once)))

    print("\n== Fixed-point data-type resilience (Fig. 7e) ==")
    print(render_table(run_datatype_sweep(config, [1e-5, 1e-4], execution=once)))

    print("\n== Range-based anomaly detection (Fig. 10b) ==")
    table = run_drone_anomaly_mitigation(
        config, bers, execution=ExecutionConfig(repetitions=2)
    )
    print(render_table(table))
    print()
    print(render_table(summarize_mitigation_gains(table, "mean_safe_flight")))


if __name__ == "__main__":
    main()
