"""Grid World fault-characterization study (a miniature of Fig. 2 and Fig. 5).

Trains tabular policies under transient faults injected at different points
of training, then studies inference-time fault modes on a clean policy.

Run with:  python examples/gridworld_fault_study.py
"""

from repro.api import ExecutionConfig
from repro.experiments.config import GridTabularConfig
from repro.experiments.fig2_training import (
    heatmap_matrix,
    run_transient_training_heatmap,
    run_value_histograms,
)
from repro.experiments.fig5_inference import run_inference_fault_sweep
from repro.io.tables import render_heatmap, render_table


def main() -> None:
    config = GridTabularConfig(eval_trials=20, repetitions=2)
    bers = [0.0, 0.005, 0.01]
    episodes = [100, 500, 999]

    print("== Training-time transient faults (Fig. 2a, reduced sweep) ==")
    table = run_transient_training_heatmap(
        config, bers, episodes, execution=ExecutionConfig(repetitions=2)
    )
    matrix = heatmap_matrix(table, bers, episodes) * 100.0
    print(
        render_heatmap(
            matrix,
            row_labels=[f"BER {b:.1%}" for b in bers],
            col_labels=[f"ep {e}" for e in episodes],
            title="success rate (%) after training with a fault at (BER, episode)",
        )
    )

    print("\n== Inference-time fault modes (Fig. 5a, reduced sweep) ==")
    table = run_inference_fault_sweep(
        config,
        [0.002, 0.01],
        episodes_per_trial=4,
        execution=ExecutionConfig(repetitions=3),
    )
    print(render_table(table))

    print("\n== Value / bit histograms (Fig. 2b & 2d) ==")
    print(render_table(run_value_histograms(config)))


if __name__ == "__main__":
    main()
