"""Quickstart: train a Grid World policy, inject a fault, measure the damage.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.core import FaultInjector, StuckAtFault, TransientBitFlip
from repro.envs import make_gridworld
from repro.rl import DecayingEpsilonGreedy, TabularQAgent, evaluate_success_rate, train_agent


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. Train a tabular Q-learning policy on the middle-density Grid World.
    env = make_gridworld("middle", rng=rng)
    agent = TabularQAgent(
        env.n_states,
        env.n_actions,
        schedule=DecayingEpsilonGreedy(1.0, 0.05, 0.99),
        initial_q=0.5,
        rng=rng,
    )
    train_agent(agent, env, episodes=600, max_steps_per_episode=100)

    eval_env = make_gridworld("middle")
    policy = lambda state: agent.select_action(state, explore=False)
    clean = evaluate_success_rate(policy, eval_env, trials=100)
    print(f"clean policy success rate:              {clean:.2f}")

    # 2. Inject transient bit-flips into the quantized Q-table buffer.
    injector = FaultInjector(rng)
    faulted = agent.clone()
    patterns = injector.inject(faulted, TransientBitFlip(bit_error_rate=0.01))
    faulted_policy = lambda state: faulted.select_action(state, explore=False)
    corrupted = evaluate_success_rate(faulted_policy, eval_env, trials=100)
    flips = sum(p.num_faults for p in patterns)
    print(f"after {flips} transient bit-flips (BER=1%): {corrupted:.2f}")

    # 3. Permanent stuck-at-1 faults are usually worse than stuck-at-0.
    for stuck_value in (0, 1):
        damaged = agent.clone()
        injector.inject(damaged, StuckAtFault(0.01, stuck_value=stuck_value))
        rate = evaluate_success_rate(
            lambda s: damaged.select_action(s, explore=False), eval_env, trials=100
        )
        print(f"stuck-at-{stuck_value} faults (BER=1%):              {rate:.2f}")


if __name__ == "__main__":
    main()
