"""Navigation quality metrics.

The paper quantifies policy performance with the agent's *success rate* and
*cumulative reward* for Grid World (Sec. 4.1) and *Mean Safe Flight* (MSF)
distance for the drone task (Sec. 4.2).  Convergence is defined as reaching a
success-rate threshold (>95% in Fig. 4).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

__all__ = [
    "success_rate",
    "cumulative_reward",
    "mean_safe_flight",
    "quality_of_flight_improvement",
    "episodes_to_converge",
]


def success_rate(outcomes: Iterable[bool]) -> float:
    """Fraction of successful trials (goal reached / total trials)."""
    outcomes = np.asarray(list(outcomes), dtype=bool)
    if outcomes.size == 0:
        raise ValueError("success_rate needs at least one trial outcome")
    return float(outcomes.mean())


def cumulative_reward(rewards: Sequence[float]) -> float:
    """Sum of rewards in an episode."""
    rewards = np.asarray(rewards, dtype=np.float64)
    return float(rewards.sum())


def mean_safe_flight(flight_distances: Iterable[float]) -> float:
    """Average distance travelled before collision (MSF, metres)."""
    distances = np.asarray(list(flight_distances), dtype=np.float64)
    if distances.size == 0:
        raise ValueError("mean_safe_flight needs at least one flight")
    if np.any(distances < 0):
        raise ValueError("flight distances must be non-negative")
    return float(distances.mean())


def quality_of_flight_improvement(baseline: float, improved: float) -> float:
    """Relative quality-of-flight improvement, e.g. 0.39 for the paper's +39%."""
    if baseline <= 0:
        raise ValueError(f"baseline must be positive, got {baseline}")
    return (improved - baseline) / baseline


def episodes_to_converge(
    successes: Sequence[bool],
    threshold: float = 0.95,
    window: int = 50,
    start: int = 0,
) -> Optional[int]:
    """First episode (>= ``start``) at which the windowed success rate exceeds ``threshold``.

    Returns None if the run never converges.  Matches Fig. 4's "episodes taken
    to converge (>95% success rate)" measurement.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    flags = np.asarray(successes, dtype=np.float64)
    for end in range(max(start, window), len(flags) + 1):
        if flags[end - window : end].mean() >= threshold:
            return end
    return None
