"""Statistical helpers for fault-injection campaigns.

The paper repeats each Grid World fault-injection campaign 1000 times, which
gives a 95% confidence level within a 1% error margin (Sec. 4.1).  The
helpers here compute those confidence intervals and the number of trials
needed for a target margin, so campaigns can report how trustworthy their
estimates are at any repetition count.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "wilson_confidence_interval",
    "wilson_half_width",
    "mean_confidence_interval",
    "required_trials",
    "next_adaptive_repetitions",
]

#: Two-sided z value for 95% confidence.
_Z95 = 1.959963984540054


def _wilson_centre_half(successes: float, trials: int, z: float) -> Tuple[float, float]:
    """Centre and half-width of the Wilson score interval.

    ``successes`` may be fractional: campaign rows report *mean* success
    rates (each trial can average several graded episodes), so the adaptive
    sampler works with effective success counts like ``rate * trials``.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes must be in [0, {trials}], got {successes}")
    proportion = successes / trials
    denom = 1.0 + z * z / trials
    centre = (proportion + z * z / (2 * trials)) / denom
    half_width = (
        z * math.sqrt(proportion * (1 - proportion) / trials + z * z / (4 * trials * trials))
    ) / denom
    return centre, half_width


def wilson_confidence_interval(
    successes: int, trials: int, z: float = _Z95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    At the degenerate observations the exact bounds are pinned: zero
    successes give a lower bound of exactly ``0.0`` and all-successes an
    upper bound of exactly ``1.0`` (the centre/half-width arithmetic
    otherwise leaves float dust like ``2e-19`` at those edges).
    """
    centre, half_width = _wilson_centre_half(successes, trials, z)
    low = 0.0 if successes == 0 else max(0.0, centre - half_width)
    high = 1.0 if successes == trials else min(1.0, centre + half_width)
    return low, high


def wilson_half_width(successes: float, trials: int, z: float = _Z95) -> float:
    """Half-width of the Wilson score interval for a binomial proportion.

    This is the sequential-sampling stopping statistic: a campaign measured
    until ``wilson_half_width(successes, trials) <= target`` guarantees its
    reported proportion is within ``target`` of the interval centre at the
    ``z`` confidence level.  Strictly decreasing in ``trials`` for a fixed
    proportion, and well defined at the edges ``p = 0`` and ``p = 1`` (where
    the normal-approximation width would collapse to zero).
    """
    return _wilson_centre_half(successes, trials, z)[1]


def mean_confidence_interval(
    values: Sequence[float], z: float = _Z95
) -> Tuple[float, float]:
    """Normal-approximation confidence interval for a sample mean."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("mean_confidence_interval needs at least one value")
    mean = float(values.mean())
    if values.size == 1:
        return mean, mean
    sem = float(values.std(ddof=1) / math.sqrt(values.size))
    return mean - z * sem, mean + z * sem


def required_trials(margin: float, proportion: float = 0.5, z: float = _Z95) -> int:
    """Trials needed so a proportion estimate has the given error margin.

    ``required_trials(0.01)`` is about 9604 in the worst case (p = 0.5); for
    proportions near the success rates the paper reports (>0.9) the 1000
    repetitions quoted in Sec. 4.1 indeed achieve a ~1% margin.
    """
    if not 0.0 < margin < 1.0:
        raise ValueError(f"margin must be in (0, 1), got {margin}")
    if not 0.0 <= proportion <= 1.0:
        raise ValueError(f"proportion must be in [0, 1], got {proportion}")
    return int(math.ceil(z * z * proportion * (1.0 - proportion) / (margin * margin)))


def next_adaptive_repetitions(
    successes: float,
    trials: int,
    target_half_width: float,
    *,
    growth: float = 2.0,
    max_trials: Optional[int] = None,
    z: float = _Z95,
) -> Optional[int]:
    """Next campaign size in a measure-until-precise loop, or ``None`` to stop.

    This is the planning half of the adaptive sweep sampler: given the
    effective success count observed after ``trials`` repetitions, it returns
    the repetition count the next measurement round should use, or ``None``
    when no further round should run — either because the Wilson half-width
    already meets ``target_half_width`` (precision reached) or because
    ``max_trials`` has been exhausted (budget reached; callers distinguish
    the two by re-checking :func:`wilson_half_width`).

    The next size is planned from the current proportion estimate via
    :func:`required_trials`, but never grows by less than ``growth`` per
    round (so a misleading early estimate near ``p = 0`` or ``p = 1`` cannot
    stall the loop) and never exceeds ``max_trials``.
    """
    if not 0.0 < target_half_width < 1.0:
        raise ValueError(f"target_half_width must be in (0, 1), got {target_half_width}")
    if growth <= 1.0:
        raise ValueError(f"growth must be > 1, got {growth}")
    if wilson_half_width(successes, trials, z) <= target_half_width:
        return None
    if max_trials is not None and trials >= max_trials:
        return None
    planned = required_trials(target_half_width, successes / trials, z)
    next_trials = max(planned, int(math.ceil(trials * growth)))
    if max_trials is not None:
        next_trials = min(next_trials, max_trials)
    return next_trials
