"""Statistical helpers for fault-injection campaigns.

The paper repeats each Grid World fault-injection campaign 1000 times, which
gives a 95% confidence level within a 1% error margin (Sec. 4.1).  The
helpers here compute those confidence intervals and the number of trials
needed for a target margin, so campaigns can report how trustworthy their
estimates are at any repetition count.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

__all__ = ["wilson_confidence_interval", "mean_confidence_interval", "required_trials"]

#: Two-sided z value for 95% confidence.
_Z95 = 1.959963984540054


def wilson_confidence_interval(
    successes: int, trials: int, z: float = _Z95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes must be in [0, {trials}], got {successes}")
    proportion = successes / trials
    denom = 1.0 + z * z / trials
    centre = (proportion + z * z / (2 * trials)) / denom
    half_width = (
        z * math.sqrt(proportion * (1 - proportion) / trials + z * z / (4 * trials * trials))
    ) / denom
    return max(0.0, centre - half_width), min(1.0, centre + half_width)


def mean_confidence_interval(
    values: Sequence[float], z: float = _Z95
) -> Tuple[float, float]:
    """Normal-approximation confidence interval for a sample mean."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("mean_confidence_interval needs at least one value")
    mean = float(values.mean())
    if values.size == 1:
        return mean, mean
    sem = float(values.std(ddof=1) / math.sqrt(values.size))
    return mean - z * sem, mean + z * sem


def required_trials(margin: float, proportion: float = 0.5, z: float = _Z95) -> int:
    """Trials needed so a proportion estimate has the given error margin.

    ``required_trials(0.01)`` is about 9604 in the worst case (p = 0.5); for
    proportions near the success rates the paper reports (>0.9) the 1000
    repetitions quoted in Sec. 4.1 indeed achieve a ~1% margin.
    """
    if not 0.0 < margin < 1.0:
        raise ValueError(f"margin must be in (0, 1), got {margin}")
    if not 0.0 <= proportion <= 1.0:
        raise ValueError(f"proportion must be in [0, 1], got {proportion}")
    return int(math.ceil(z * z * proportion * (1.0 - proportion) / (margin * margin)))
