"""Task-level metrics and statistics used across the experiments."""

from repro.metrics.navigation import (
    success_rate,
    mean_safe_flight,
    quality_of_flight_improvement,
    episodes_to_converge,
    cumulative_reward,
)
from repro.metrics.statistics import (
    wilson_confidence_interval,
    wilson_half_width,
    mean_confidence_interval,
    required_trials,
    next_adaptive_repetitions,
)

__all__ = [
    "success_rate",
    "mean_safe_flight",
    "quality_of_flight_improvement",
    "episodes_to_converge",
    "cumulative_reward",
    "wilson_confidence_interval",
    "wilson_half_width",
    "mean_confidence_interval",
    "required_trials",
    "next_adaptive_repetitions",
]
