"""The sweep orchestrator: cache-aware, precision-adaptive point execution.

:class:`SweepRunner` executes every point of a
:class:`~repro.sweep.spec.SweepSpec` through :func:`repro.api.run` — and
therefore through the existing serial / parallel / batched campaign engines
— with three orchestration layers on top:

* **Caching.**  Each point is keyed into the content-addressed
  :class:`~repro.store.ArtifactStore`; under the default ``reuse`` policy a
  point the repo has already computed (by any engine, in any previous sweep
  or ``api.run`` call) is served from disk and executes *zero* trials.
* **Checkpointing.**  Completed points stream to a JSONL
  :class:`~repro.sweep.checkpoint.SweepCheckpoint`; an interrupted sweep
  resumes from the points already on disk.
* **Adaptive precision.**  With an :class:`AdaptiveConfig`, each point is
  measured in growing rounds until the Wilson CI half-width of its headline
  success-rate metric drops below ``target_ci`` — easy points stop after
  the first round, hard points (success rates near 50%) get the trials they
  need.  Because campaign trial seeds derive from ``SeedSequence`` children
  by trial index, a round with ``n`` repetitions reproduces the previous
  round's trials exactly and the final artifact is bit-identical to a fixed
  ``repetitions=n`` run at the same seed.

**Seed derivation.**  Every point's campaign seed is derived from the sweep
seed plus the point's *parameter identity* (a digest of its canonical
params JSON, folded into a ``SeedSequence``), not from its position.  Two
consequences: reordering or extending a sweep never changes the numbers of
the points it shares with another sweep, and a sweep over N points is
bit-identical to N independent ``api.run`` calls at the derived seeds —
the differential guarantee ``tests/test_sweep.py`` enforces.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.api.execution import ExecutionConfig
from repro.core.runner import executed_trial_count
from repro.io.sanitize import canonical_json
from repro.metrics.statistics import next_adaptive_repetitions, wilson_half_width
from repro.sweep.artifact import SweepArtifact, SweepPoint
from repro.sweep.checkpoint import SweepCheckpoint, sweep_digest
from repro.sweep.spec import SweepSpec
from repro.telemetry.bus import default_bus
from repro.telemetry.events import (
    SweepFinished,
    SweepPointCacheHit,
    SweepPointFinished,
    SweepPointStarted,
    SweepProgress,
    SweepStarted,
)

__all__ = ["AdaptiveConfig", "SweepRunner", "derive_point_seed"]

#: Progress callback: (points completed so far, total points).
SweepProgressFn = Callable[[int, int], None]


def derive_point_seed(base_seed: int, experiment: str, params: Mapping[str, Any]) -> int:
    """Deterministic campaign seed for one sweep point.

    The point's canonical parameter JSON is digested and folded, together
    with the sweep's base seed, into a ``np.random.SeedSequence`` whose
    generated state becomes the seed.  A pure function of *what* the point
    is — never of where it sits in the sweep or whether the cache served it
    — so any enumeration order, cache state or sweep composition yields the
    same per-point seed, and ``api.run(..., seed=derive_point_seed(...))``
    reproduces a sweep point exactly.
    """
    identity = hashlib.sha256(
        canonical_json({"experiment": experiment, "params": params}).encode()
    ).digest()
    words = [int.from_bytes(identity[i : i + 4], "big") for i in range(0, 16, 4)]
    state = np.random.SeedSequence([int(base_seed)] + words).generate_state(
        2, dtype=np.uint32
    )
    return int(state[0]) | (int(state[1]) << 32)


@dataclass(frozen=True)
class AdaptiveConfig:
    """Precision-driven repetition growth (``repetitions="auto"``).

    Parameters
    ----------
    target_ci:
        Target Wilson half-width of every headline success-rate row.
    initial_repetitions:
        Campaign size of the first measurement round.
    growth:
        Minimum per-round growth factor (rounds may jump further when the
        current estimate already implies a larger requirement).
    max_repetitions:
        Hard budget per point; when reached the point stops even if the
        target has not been met (its reported half-width says so).
    """

    target_ci: float
    initial_repetitions: int = 4
    growth: float = 2.0
    max_repetitions: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.target_ci < 1.0:
            raise ValueError(f"target_ci must be in (0, 1), got {self.target_ci}")
        if self.initial_repetitions < 1:
            raise ValueError(
                f"initial_repetitions must be >= 1, got {self.initial_repetitions}"
            )
        if self.growth <= 1.0:
            raise ValueError(f"growth must be > 1, got {self.growth}")
        if self.max_repetitions is not None and self.max_repetitions < self.initial_repetitions:
            raise ValueError(
                "max_repetitions must be >= initial_repetitions, got "
                f"{self.max_repetitions} < {self.initial_repetitions}"
            )


def _headline_rows(artifact, repetitions: int) -> List[Tuple[float, int]]:
    """The (effective successes, trials) of every headline success-rate row.

    Headline rows are the campaign rows: cells whose ``repetitions`` column
    equals the executed campaign size and that report a ``success_rate``.
    Baseline rows (``repetitions=1`` single rollouts) and metric-only rows
    are not campaign estimates and are excluded.
    """
    rows = []
    for row in artifact.as_table().rows:
        rate = row.get("success_rate")
        reps = row.get("repetitions")
        if rate is None or reps != repetitions:
            continue
        rate = min(1.0, max(0.0, float(rate)))
        rows.append((rate * repetitions, repetitions))
    return rows


class SweepRunner:
    """Executes sweep points with cache-aware skipping and adaptive precision.

    Parameters
    ----------
    cache:
        Artifact-store policy for every point (``"reuse"`` / ``"refresh"`` /
        ``"off"``).  Sweeps default to ``"reuse"`` — the orchestrator's whole
        point is to never recompute a result it already has.
    store:
        The :class:`~repro.store.ArtifactStore` (or root path); ``None``
        selects the default store (``REPRO_STORE_DIR`` or ``.repro-store``).
        Ignored when ``cache="off"``.
    progress:
        Called with ``(points completed, total points)`` after every point.
    """

    def __init__(
        self,
        *,
        cache: str = "reuse",
        store: Any = None,
        progress: Optional[SweepProgressFn] = None,
    ) -> None:
        from repro.store import resolve_store, validate_cache_policy

        self.cache = validate_cache_policy(cache)
        self.store = resolve_store(store) if self.cache != "off" else None
        self.progress = progress

    def run(
        self,
        sweep: SweepSpec,
        execution: Optional[ExecutionConfig] = None,
        *,
        adaptive: Optional[AdaptiveConfig] = None,
        checkpoint: Union[SweepCheckpoint, str, os.PathLike, None] = None,
        resume: bool = False,
    ) -> SweepArtifact:
        """Run every point of ``sweep``; returns the aggregated artifact.

        ``execution`` supplies the sweep seed and the engine knobs shared by
        every point; each point runs under ``execution.replace(seed=<derived
        point seed>)``.  With ``adaptive``, ``execution.repetitions`` must be
        unset (the rounds choose it per point).
        """
        execution = (execution or ExecutionConfig()).resolved()
        if adaptive is not None and execution.repetitions is not None:
            raise ValueError(
                "adaptive precision chooses repetitions per point; do not also "
                f"pin execution.repetitions={execution.repetitions}"
            )
        points = sweep.points()
        digest = sweep_digest(sweep, points, execution.seed)

        if isinstance(checkpoint, (str, os.PathLike)):
            checkpoint = SweepCheckpoint(checkpoint)
        if resume and checkpoint is None:
            raise ValueError("resume=True requires a sweep checkpoint")
        restored: Dict[int, SweepPoint] = {}
        if checkpoint is not None:
            if resume:
                restored = checkpoint.load(digest, sweep, execution.seed, len(points))
            else:
                checkpoint.reset(digest, sweep, execution.seed)

        start = time.perf_counter()
        bus = default_bus()
        traced = bus.active
        if traced:
            bus.emit(
                SweepStarted(
                    experiment=sweep.experiment,
                    n_points=len(points),
                    restored=len(restored),
                )
            )
        completed: List[SweepPoint] = []
        done = len(restored)
        if traced and done:
            bus.emit(
                SweepProgress(experiment=sweep.experiment, done=done, total=len(points))
            )
        if self.progress is not None and done:
            self.progress(done, len(points))
        for index, params in enumerate(points):
            if index in restored:
                completed.append(restored[index])
                continue
            point = self._run_point(sweep, index, params, execution, adaptive)
            completed.append(point)
            if checkpoint is not None:
                checkpoint.append(point)
            done += 1
            if traced:
                bus.emit(
                    SweepProgress(
                        experiment=sweep.experiment, done=done, total=len(points)
                    )
                )
            if self.progress is not None:
                self.progress(done, len(points))

        if traced:
            bus.emit(
                SweepFinished(
                    experiment=sweep.experiment,
                    n_points=len(points),
                    cache_hits=sum(1 for point in completed if point.cache_hit),
                    executed_trials=sum(point.executed_trials for point in completed),
                    wall_time_s=time.perf_counter() - start,
                )
            )
        return SweepArtifact(
            sweep=sweep,
            execution=execution,
            points=sorted(completed, key=lambda point: point.index),
            target_ci=None if adaptive is None else adaptive.target_ci,
            wall_time_s=time.perf_counter() - start,
        )

    # -- single-point execution ------------------------------------------- #
    def run_point(
        self,
        sweep: SweepSpec,
        index: int,
        params: Dict[str, Any],
        execution: ExecutionConfig,
        adaptive: Optional[AdaptiveConfig] = None,
    ) -> "SweepPoint":
        """Execute a single sweep point under the sweep-level ``execution``.

        This is the unit of work the distributed runner hands to its worker
        processes: the point's campaign seed is derived from its parameter
        identity in here, so any process executing the same point computes
        bit-identical numbers.  ``execution`` must already be resolved (as
        :meth:`run` resolves it).
        """
        return self._run_point(sweep, index, params, execution, adaptive)

    def _point_execution(
        self, execution: ExecutionConfig, index: int, seed: int
    ) -> ExecutionConfig:
        changes: Dict[str, Any] = {"seed": seed}
        if execution.checkpoint_dir is not None:
            # Per-point campaign checkpoint subdirectories: two points of the
            # same experiment reuse campaign names, and their seeds differ,
            # so sharing one directory would trip the header guard.
            changes["checkpoint_dir"] = execution.checkpoint_dir / f"point-{index:04d}"
        return execution.replace(**changes)

    def _run_point(
        self,
        sweep: SweepSpec,
        index: int,
        params: Dict[str, Any],
        execution: ExecutionConfig,
        adaptive: Optional[AdaptiveConfig],
    ) -> SweepPoint:
        from repro import api
        from repro.store import artifact_key

        seed = derive_point_seed(execution.seed, sweep.experiment, params)
        point_execution = self._point_execution(execution, index, seed)
        spec = sweep.spec
        executed_before = executed_trial_count()
        bus = default_bus()
        traced = bus.active
        if traced:
            bus.emit(
                SweepPointStarted(
                    experiment=sweep.experiment, point=index, params=dict(params)
                )
            )
            point_start = time.perf_counter()

        if adaptive is None:
            artifact, digest, was_cached = self._run_cached(spec, params, point_execution)
            point = SweepPoint(
                index=index,
                params=params,
                seed=seed,
                artifact=artifact,
                digest=digest,
                cache_hit=was_cached,
                executed_trials=executed_trial_count() - executed_before,
            )
        else:
            artifact, digest, was_cached, rounds, half_width = self._run_adaptive(
                spec, params, point_execution, adaptive
            )
            point = SweepPoint(
                index=index,
                params=params,
                seed=seed,
                artifact=artifact,
                digest=digest,
                cache_hit=was_cached,
                executed_trials=executed_trial_count() - executed_before,
                adaptive_rounds=rounds,
                ci_half_width=half_width,
            )
        if traced:
            if point.cache_hit:
                bus.emit(
                    SweepPointCacheHit(
                        experiment=sweep.experiment, point=index, digest=point.digest
                    )
                )
            bus.emit(
                SweepPointFinished(
                    experiment=sweep.experiment,
                    point=index,
                    executed_trials=point.executed_trials,
                    cache_hit=point.cache_hit,
                    adaptive_rounds=point.adaptive_rounds,
                    ci_half_width=point.ci_half_width,
                    wall_time_s=time.perf_counter() - point_start,
                )
            )
        return point

    def _run_cached(self, spec, params: Dict[str, Any], execution: ExecutionConfig):
        """One cached experiment run: ``(artifact, digest, served_from_store)``.

        A ``reuse`` hit is decided by actually *loading* the stored artifact
        (exactly what ``api.run`` would serve), so a corrupt or truncated
        object file counts as the miss it is — the point is recomputed and
        honestly reported as ``cache_hit=False``.
        """
        from repro import api
        from repro.store import artifact_key

        digest = None
        if self.store is not None:
            digest = artifact_key(spec.name, params, execution)
            if self.cache == "reuse":
                hit = self.store.get(digest)
                if hit is not None:
                    return hit, digest, True
        artifact = api.run(
            spec, params, execution=execution, cache=self.cache, store=self.store
        )
        return artifact, digest, False

    def _run_adaptive(
        self,
        spec,
        params: Dict[str, Any],
        point_execution: ExecutionConfig,
        adaptive: AdaptiveConfig,
    ):
        """Measure one point in growing rounds until the CI target is met.

        Each round is an ordinary fixed-repetition ``api.run`` (cached under
        its own key), so the final artifact *is* a fixed-repetition run —
        adaptive sampling changes how many trials are spent, never what any
        given repetition count computes.
        """
        repetitions = adaptive.initial_repetitions
        rounds = 0
        while True:
            rounds += 1
            round_execution = point_execution.replace(repetitions=repetitions)
            artifact, digest, final_round_cached = self._run_cached(
                spec, params, round_execution
            )
            headline = _headline_rows(artifact, repetitions)
            if not headline:
                raise ValueError(
                    f"experiment {spec.name!r} reports no success_rate/repetitions "
                    "headline rows; adaptive repetitions need a failure-rate metric "
                    "to target"
                )
            worst_successes, worst_trials = max(
                headline, key=lambda pair: wilson_half_width(pair[0], pair[1])
            )
            half_width = wilson_half_width(worst_successes, worst_trials)
            next_repetitions = next_adaptive_repetitions(
                worst_successes,
                worst_trials,
                adaptive.target_ci,
                growth=adaptive.growth,
                max_trials=adaptive.max_repetitions,
            )
            if next_repetitions is None or next_repetitions <= repetitions:
                return artifact, digest, final_round_cached, rounds, half_width
            repetitions = next_repetitions
