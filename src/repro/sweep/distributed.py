"""Distributed sweep execution: N worker processes over one work queue.

:class:`DistributedSweepRunner` shards the points of a
:class:`~repro.sweep.spec.SweepSpec` across ``sweep_workers`` worker
processes.  There is no static partition: workers *pull* points from a
shared filesystem work queue, so a slow point never straggles the sweep —
whichever worker frees up first takes the next point (work stealing by
construction).

**Coordination is plain files**, which makes every piece inspectable,
crash-tolerant and — via a shared filesystem — extensible across machines:

* ``leases/point-<i>.json`` — exclusive claim on one point.  Acquisition is
  an atomic ``O_CREAT | O_EXCL`` create, so exactly one worker wins.  While
  a worker computes a point, a daemon thread refreshes the lease's
  ``heartbeat_at`` stamp; a lease whose heartbeat is older than
  ``lease_timeout_s`` belongs to a dead (or wedged) worker and may be
  *stolen*: any worker breaks it and re-runs the point.  Because per-point
  campaign seeds derive from the point's parameter identity
  (:func:`~repro.sweep.runner.derive_point_seed`), a stolen point — even one
  a presumed-dead worker eventually finishes — produces bit-identical
  results, so duplicate execution is waste, never corruption.
* ``done/point-<i>.json`` — completion marker, written after the point's
  result record is durably on disk.  Workers exit when every point is done.
* ``results/<worker>.jsonl`` — each worker's completed
  :class:`~repro.sweep.artifact.SweepPoint` records, one JSON line per
  point, carrying the point's full artifact *and* its executed-trial count.
  The count is measured inside the worker process (the only place it is
  visible) and flows back with the result instead of relying on the
  coordinator's process-local counter.

The coordinator enumerates points, seeds the queue (pre-marking points
restored from a sweep checkpoint), spawns the workers, streams progress
from the ``done/`` directory, and merges the result files into an ordinary
:class:`~repro.sweep.artifact.SweepArtifact`.  Any point still unaccounted
for after every worker has exited — e.g. all workers crashed on it — is
executed inline in the coordinator, so a deterministic trial error
surfaces as a normal exception in the caller's process and a sweep can
always complete as long as the coordinator lives.

Artifact caching works unchanged: every worker opens the same store root,
whose journal-per-entry index is safe for concurrent writers
(:mod:`repro.store.artifact_store`), and a warm store serves every point
with **zero** executed trials in any process.

Workers are forked (Linux default), so dynamically registered experiment
specs — e.g. test-only specs — are visible without re-import; under a
``spawn`` start method only importable registry specs can be swept.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import tempfile
import threading
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.api.execution import ExecutionConfig
from repro.core.envvars import env_positive_int
from repro.core.runner import _resolve_start_method, record_executed_trials
from repro.store.artifact_store import atomic_write_text
from repro.sweep.artifact import SweepArtifact, SweepPoint
from repro.sweep.checkpoint import SweepCheckpoint, sweep_digest
from repro.sweep.runner import AdaptiveConfig, SweepProgressFn, SweepRunner
from repro.sweep.spec import SweepSpec
from repro.telemetry.bus import default_bus, reset_default_bus
from repro.telemetry.events import (
    HeartbeatMissed,
    LeaseAcquired,
    LeaseStolen,
    SweepFinished,
    SweepProgress,
    SweepStarted,
)

__all__ = [
    "SWEEP_WORKERS_ENV_VAR",
    "DistributedSweepRunner",
    "PointLease",
    "SweepWorkQueue",
    "default_sweep_workers",
]

#: Environment variable selecting the default sweep worker count.
SWEEP_WORKERS_ENV_VAR = "REPRO_SWEEP_WORKERS"

#: Default seconds without a heartbeat before a lease counts as dead.
DEFAULT_LEASE_TIMEOUT_S = 30.0

#: Default seconds between heartbeat refreshes of a held lease.
DEFAULT_HEARTBEAT_INTERVAL_S = 1.0

#: Seconds an idle worker sleeps before re-scanning the queue.
_POLL_INTERVAL_S = 0.05


def default_sweep_workers() -> int:
    """Default sweep worker count: ``REPRO_SWEEP_WORKERS`` or 1 (serial)."""
    return env_positive_int(SWEEP_WORKERS_ENV_VAR, 1, allow_auto=True)


def _local_clock_id() -> str:
    """Identity of this machine's monotonic clock domain.

    ``time.monotonic()`` readings are comparable between processes only
    within one OS boot; Linux exposes a per-boot UUID that names exactly
    that domain.  Where no boot id exists the id is empty and staleness
    falls back to (clamped) wall-clock deltas.
    """
    try:
        return Path("/proc/sys/kernel/random/boot_id").read_text().strip()
    except OSError:
        return ""


_CLOCK_ID = _local_clock_id()


@dataclass(frozen=True)
class PointLease:
    """One worker's claim on one sweep point (the on-disk lease record).

    The record carries *two* heartbeat stamps: ``heartbeat_at`` is wall
    clock (``time.time()``), kept for humans inspecting the lease files and
    for cross-machine queues; ``heartbeat_mono`` is ``time.monotonic()``,
    tagged with the ``clock_id`` of the boot it was read in.  Staleness is
    judged from the monotonic delta whenever the observer shares that clock
    (same machine, same boot) — an NTP step can therefore never fake a dead
    worker or keep a dead lease alive.  Observers on a different clock fall
    back to the wall delta, clamped at zero so a lease stamped "in the
    future" by a skewed peer reads as fresh rather than negative-aged.
    """

    worker: str
    pid: int
    acquired_at: float
    heartbeat_at: float
    heartbeat_mono: Optional[float] = None
    clock_id: str = ""

    def to_json(self) -> str:
        return json.dumps(asdict(self))

    @classmethod
    def from_json(cls, payload: str) -> "PointLease":
        data = json.loads(payload)
        mono = data.get("heartbeat_mono")
        return cls(
            worker=str(data["worker"]),
            pid=int(data["pid"]),
            acquired_at=float(data["acquired_at"]),
            heartbeat_at=float(data["heartbeat_at"]),
            heartbeat_mono=None if mono is None else float(mono),
            clock_id=str(data.get("clock_id", "")),
        )

    def age_s(
        self, now: Optional[float] = None, now_mono: Optional[float] = None
    ) -> float:
        """Seconds since the last heartbeat, never negative.

        Monotonic delta when this lease was stamped under the caller's
        clock domain, otherwise wall delta; both clamped at zero.
        """
        if (
            self.heartbeat_mono is not None
            and self.clock_id
            and self.clock_id == _CLOCK_ID
        ):
            reference = time.monotonic() if now_mono is None else now_mono
            return max(0.0, reference - self.heartbeat_mono)
        reference = time.time() if now is None else now
        return max(0.0, reference - self.heartbeat_at)

    def expired(
        self,
        timeout_s: float,
        now: Optional[float] = None,
        now_mono: Optional[float] = None,
    ) -> bool:
        return self.age_s(now=now, now_mono=now_mono) > timeout_s


class SweepWorkQueue:
    """Filesystem-backed point queue with leases, heartbeats and done markers.

    All state is plain files under ``work_dir`` (see the module docstring
    for the layout), so the queue needs no broker process and survives the
    death of any participant.  Every operation is safe against concurrent
    workers on one machine or a shared filesystem.
    """

    def __init__(self, work_dir: Union[str, os.PathLike], n_points: int,
                 lease_timeout_s: float = DEFAULT_LEASE_TIMEOUT_S) -> None:
        self.work_dir = Path(work_dir)
        self.n_points = n_points
        self.lease_timeout_s = lease_timeout_s

    # -- paths ----------------------------------------------------------- #
    @property
    def lease_dir(self) -> Path:
        return self.work_dir / "leases"

    @property
    def done_dir(self) -> Path:
        return self.work_dir / "done"

    @property
    def results_dir(self) -> Path:
        return self.work_dir / "results"

    def lease_path(self, index: int) -> Path:
        return self.lease_dir / f"point-{index:05d}.json"

    def done_path(self, index: int) -> Path:
        return self.done_dir / f"point-{index:05d}.json"

    def result_path(self, worker: str) -> Path:
        return self.results_dir / f"{worker}.jsonl"

    def initialize(self) -> None:
        for directory in (self.lease_dir, self.done_dir, self.results_dir):
            directory.mkdir(parents=True, exist_ok=True)

    # -- leases ---------------------------------------------------------- #
    def _try_acquire(self, index: int, worker: str) -> bool:
        """Atomically create the lease file; exactly one caller can win."""
        now = time.time()
        lease = PointLease(worker=worker, pid=os.getpid(), acquired_at=now,
                           heartbeat_at=now, heartbeat_mono=time.monotonic(),
                           clock_id=_CLOCK_ID)
        try:
            fd = os.open(self.lease_path(index), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        with os.fdopen(fd, "w") as handle:
            handle.write(lease.to_json())
        return True

    def read_lease(self, index: int) -> Optional[PointLease]:
        try:
            return PointLease.from_json(self.lease_path(index).read_text())
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            return None  # no lease, or caught its writer mid-create

    def heartbeat(self, index: int, worker: str) -> None:
        """Refresh the lease's liveness stamp (called from a daemon thread).

        The rewrite is atomic but deliberately *not* durable — a lease only
        matters while its holder lives, so an fsync would buy nothing.
        """
        current = self.read_lease(index)
        acquired_at = current.acquired_at if current is not None else time.time()
        lease = PointLease(worker=worker, pid=os.getpid(),
                           acquired_at=acquired_at, heartbeat_at=time.time(),
                           heartbeat_mono=time.monotonic(), clock_id=_CLOCK_ID)
        atomic_write_text(self.lease_path(index), lease.to_json(), durable=False)

    def release(self, index: int) -> None:
        try:
            os.unlink(self.lease_path(index))
        except OSError:
            pass

    def claim(self, worker: str) -> Optional[int]:
        """Claim the lowest available point; ``None`` when nothing is claimable.

        A point is available when it has no done marker and either no lease
        or an *expired* one (its worker stopped heartbeating for longer
        than ``lease_timeout_s``).  Stealing an expired lease is unlink +
        exclusive re-create, so concurrent stealers still end with exactly
        one owner.
        """
        bus = default_bus()
        for index in range(self.n_points):
            if self.is_done(index):
                continue
            if self._try_acquire(index, worker):
                if bus.active:
                    bus.emit(LeaseAcquired(point=index, worker=worker))
                return index
            lease = self.read_lease(index)
            if lease is None:
                # Released (or broken) between our create attempt and the
                # read — contend for it again.
                if self._try_acquire(index, worker):
                    if bus.active:
                        bus.emit(LeaseAcquired(point=index, worker=worker))
                    return index
                continue
            if lease.expired(self.lease_timeout_s):
                if bus.active:
                    bus.emit(
                        HeartbeatMissed(
                            point=index,
                            worker=lease.worker,
                            age_s=lease.age_s(),
                            observed_by=worker,
                        )
                    )
                self.release(index)  # break the dead worker's lease
                if self._try_acquire(index, worker):
                    if bus.active:
                        bus.emit(
                            LeaseStolen(
                                point=index,
                                worker=worker,
                                previous_worker=lease.worker,
                            )
                        )
                    return index
        return None

    # -- completion ------------------------------------------------------ #
    def is_done(self, index: int) -> bool:
        return self.done_path(index).is_file()

    def mark_done(self, index: int, worker: str) -> None:
        """Record completion (idempotent: the first marker wins) and unlease."""
        payload = json.dumps(
            {"index": index, "worker": worker, "completed_at": time.time()}
        )
        try:
            fd = os.open(self.done_path(index), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            pass  # a duplicate (stolen-then-finished) execution got there first
        else:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
        self.release(index)

    def done_count(self) -> int:
        try:
            return sum(
                1 for name in os.listdir(self.done_dir) if name.endswith(".json")
            )
        except OSError:
            return 0

    def all_done(self) -> bool:
        return self.done_count() >= self.n_points


class _LeaseHeartbeat:
    """Daemon thread refreshing one held lease while its point computes."""

    def __init__(self, queue: SweepWorkQueue, index: int, worker: str,
                 interval_s: float) -> None:
        self._queue = queue
        self._index = index
        self._worker = worker
        self._interval_s = interval_s
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"lease-heartbeat-{index}", daemon=True
        )

    def _run(self) -> None:
        while not self._stop.wait(self._interval_s):
            try:
                self._queue.heartbeat(self._index, self._worker)
            except OSError:
                pass  # a transient filesystem error must not kill the beat

    def __enter__(self) -> "_LeaseHeartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


@dataclass(frozen=True)
class _WorkerConfig:
    """Everything a worker process needs, in picklable/JSON-able form."""

    worker: str
    work_dir: str
    sweep: Dict[str, Any]
    execution: Dict[str, Any]
    adaptive: Optional[Dict[str, Any]]
    cache: str
    store_root: Optional[str]
    n_points: int
    lease_timeout_s: float
    heartbeat_interval_s: float
    #: Per-worker JSONL trace file; set by a tracing coordinator, whose bus
    #: the events ultimately reach via the post-join timestamp merge.
    trace: Optional[str] = None


def _worker_main(config: _WorkerConfig) -> None:
    """Worker process body: pull points from the queue until all are done.

    A point that raises is recorded as an error line, its lease released,
    and the worker exits nonzero — surviving workers (and ultimately the
    coordinator's inline fallback, where the exception re-raises naturally)
    take over the remaining points.
    """
    # A forked worker inherits the coordinator's bus and subscribers; drop
    # them (writing into the coordinator's sink from here would interleave)
    # and attach this worker's own trace file when the coordinator asked
    # for one — it merges the per-worker files after the join.
    bus = reset_default_bus()
    sink = None
    if config.trace is not None:
        from repro.telemetry.sink import TraceSink

        sink = TraceSink(config.trace)
        bus.subscribe(sink)

    sweep = SweepSpec.from_json_dict(config.sweep)
    execution = ExecutionConfig.from_json_dict(config.execution)
    adaptive = None if config.adaptive is None else AdaptiveConfig(**config.adaptive)
    points = sweep.points()
    runner = SweepRunner(cache=config.cache, store=config.store_root)
    queue = SweepWorkQueue(config.work_dir, config.n_points, config.lease_timeout_s)
    try:
        with open(queue.result_path(config.worker), "a") as results:
            while not queue.all_done():
                index = queue.claim(config.worker)
                if index is None:
                    time.sleep(_POLL_INTERVAL_S)
                    continue
                try:
                    with _LeaseHeartbeat(queue, index, config.worker,
                                         config.heartbeat_interval_s):
                        point = runner.run_point(
                            sweep, index, points[index], execution, adaptive
                        )
                except BaseException as exc:
                    results.write(json.dumps({
                        "index": index,
                        "error": f"{type(exc).__name__}: {exc}",
                        "worker": config.worker,
                    }) + "\n")
                    results.flush()
                    queue.release(index)
                    raise SystemExit(1)
                results.write(json.dumps(
                    {"index": index, "point": point.to_json_dict()}
                ) + "\n")
                results.flush()
                queue.mark_done(index, config.worker)
    finally:
        if sink is not None:
            bus.unsubscribe(sink)
            sink.close()


class DistributedSweepRunner:
    """Executes one sweep across ``sweep_workers`` work-stealing processes.

    Drop-in alternative to :class:`~repro.sweep.runner.SweepRunner` (same
    ``run()`` signature and :class:`~repro.sweep.artifact.SweepArtifact`
    result, bit-identical per-point numbers); surfaced as
    ``api.sweep(..., sweep_workers=N)`` and ``python -m repro sweep ...
    --sweep-workers N``.

    Parameters
    ----------
    sweep_workers:
        Worker process count (``"auto"`` = one per CPU).
    cache, store, progress:
        As for :class:`~repro.sweep.runner.SweepRunner`; the store root is
        shared by every worker (its index is multi-writer safe).
    lease_timeout_s:
        Seconds without a heartbeat before a worker's point lease counts as
        dead and is re-queued.
    heartbeat_interval_s:
        Seconds between lease refreshes; keep well below the timeout.
    work_dir:
        Queue/lease/result directory.  Default: a temp directory created
        per run and removed afterwards; pass an explicit path to inspect
        the coordination state or to share it across machines.
    start_method:
        ``multiprocessing`` start method (default: ``"fork"`` on Linux).
    """

    def __init__(
        self,
        *,
        sweep_workers: Union[int, str] = 1,
        cache: str = "reuse",
        store: Any = None,
        progress: Optional[SweepProgressFn] = None,
        lease_timeout_s: float = DEFAULT_LEASE_TIMEOUT_S,
        heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
        work_dir: Union[str, os.PathLike, None] = None,
        start_method: Optional[str] = None,
    ) -> None:
        from repro.core.runner import parse_worker_count
        from repro.store import resolve_store, validate_cache_policy

        self.sweep_workers = parse_worker_count(sweep_workers, "sweep_workers")
        self.cache = validate_cache_policy(cache)
        self.store = resolve_store(store) if self.cache != "off" else None
        self.progress = progress
        if lease_timeout_s <= 0:
            raise ValueError(f"lease_timeout_s must be positive, got {lease_timeout_s}")
        if not 0 < heartbeat_interval_s < lease_timeout_s:
            raise ValueError(
                "heartbeat_interval_s must be positive and below lease_timeout_s, "
                f"got {heartbeat_interval_s} (timeout {lease_timeout_s})"
            )
        self.lease_timeout_s = lease_timeout_s
        self.heartbeat_interval_s = heartbeat_interval_s
        self.work_dir = None if work_dir is None else Path(work_dir)
        self.start_method = _resolve_start_method(start_method)

    def run(
        self,
        sweep: SweepSpec,
        execution: Optional[ExecutionConfig] = None,
        *,
        adaptive: Optional[AdaptiveConfig] = None,
        checkpoint: Union[SweepCheckpoint, str, os.PathLike, None] = None,
        resume: bool = False,
    ) -> SweepArtifact:
        """Run every point of ``sweep`` across the worker pool."""
        execution = (execution or ExecutionConfig()).resolved()
        if adaptive is not None and execution.repetitions is not None:
            raise ValueError(
                "adaptive precision chooses repetitions per point; do not also "
                f"pin execution.repetitions={execution.repetitions}"
            )
        points = sweep.points()
        digest = sweep_digest(sweep, points, execution.seed)

        if isinstance(checkpoint, (str, os.PathLike)):
            checkpoint = SweepCheckpoint(checkpoint)
        if resume and checkpoint is None:
            raise ValueError("resume=True requires a sweep checkpoint")
        restored: Dict[int, SweepPoint] = {}
        if checkpoint is not None:
            if resume:
                restored = checkpoint.load(digest, sweep, execution.seed, len(points))
            else:
                checkpoint.reset(digest, sweep, execution.seed)

        start = time.perf_counter()
        bus = default_bus()
        traced = bus.active
        if traced:
            bus.emit(
                SweepStarted(
                    experiment=sweep.experiment,
                    n_points=len(points),
                    restored=len(restored),
                    sweep_workers=self.sweep_workers,
                )
            )
        owns_work_dir = self.work_dir is None
        work_dir = (
            Path(tempfile.mkdtemp(prefix="repro-sweep-")) if owns_work_dir
            else self.work_dir
        )
        try:
            completed = self._run_queue(sweep, points, execution, adaptive, restored,
                                        work_dir)
        finally:
            if owns_work_dir:
                shutil.rmtree(work_dir, ignore_errors=True)

        if checkpoint is not None:
            for index in sorted(completed):
                if index not in restored:
                    checkpoint.append(completed[index])

        if traced:
            bus.emit(
                SweepFinished(
                    experiment=sweep.experiment,
                    n_points=len(points),
                    cache_hits=sum(
                        1 for point in completed.values() if point.cache_hit
                    ),
                    executed_trials=sum(
                        point.executed_trials for point in completed.values()
                    ),
                    wall_time_s=time.perf_counter() - start,
                )
            )
        return SweepArtifact(
            sweep=sweep,
            execution=execution,
            points=[completed[index] for index in sorted(completed)],
            target_ci=None if adaptive is None else adaptive.target_ci,
            wall_time_s=time.perf_counter() - start,
        )

    # -- internals -------------------------------------------------------- #
    def _worker_config(self, worker: str, work_dir: Path, sweep: SweepSpec,
                       execution: ExecutionConfig,
                       adaptive: Optional[AdaptiveConfig],
                       n_points: int,
                       trace: Optional[str] = None) -> _WorkerConfig:
        return _WorkerConfig(
            worker=worker,
            work_dir=str(work_dir),
            sweep=sweep.to_json_dict(),
            execution=execution.to_json_dict(),
            adaptive=None if adaptive is None else asdict(adaptive),
            cache=self.cache,
            store_root=None if self.store is None else str(self.store.root),
            n_points=n_points,
            lease_timeout_s=self.lease_timeout_s,
            heartbeat_interval_s=self.heartbeat_interval_s,
            trace=trace,
        )

    def _run_queue(
        self,
        sweep: SweepSpec,
        points: List[Dict[str, Any]],
        execution: ExecutionConfig,
        adaptive: Optional[AdaptiveConfig],
        restored: Dict[int, SweepPoint],
        work_dir: Path,
    ) -> Dict[int, SweepPoint]:
        queue = SweepWorkQueue(work_dir, len(points), self.lease_timeout_s)
        queue.initialize()
        for index in restored:
            queue.mark_done(index, "restored")

        bus = default_bus()
        traced = bus.active
        traces_dir = work_dir / "traces"
        if traced:
            traces_dir.mkdir(parents=True, exist_ok=True)

        def worker_trace(name: str) -> Optional[str]:
            return str(traces_dir / f"{name}.jsonl") if traced else None

        ctx = multiprocessing.get_context(self.start_method)
        workers = [
            ctx.Process(
                target=_worker_main,
                args=(self._worker_config(f"worker-{k:03d}", work_dir, sweep,
                                          execution, adaptive, len(points),
                                          trace=worker_trace(f"worker-{k:03d}")),),
                daemon=False,
            )
            for k in range(min(self.sweep_workers, max(1, len(points) - len(restored))))
        ]
        for proc in workers:
            proc.start()

        reported = -1
        try:
            while True:
                done = queue.done_count()
                if done != reported:
                    if traced:
                        bus.emit(
                            SweepProgress(
                                experiment=sweep.experiment,
                                done=min(done, len(points)),
                                total=len(points),
                            )
                        )
                    if self.progress is not None:
                        self.progress(min(done, len(points)), len(points))
                    reported = done
                if done >= len(points):
                    break
                if not any(proc.is_alive() for proc in workers):
                    break  # every worker exited (success or crash); assess below
                time.sleep(_POLL_INTERVAL_S)
        finally:
            # Workers exit on their own once all points are done; the join
            # timeout only covers one poll-sleep, and anything still alive
            # after that is a straggler we terminate.
            deadline = time.time() + 10.0
            for proc in workers:
                proc.join(timeout=max(0.1, deadline - time.time()))
            for proc in workers:
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5.0)

        completed = dict(restored)
        worker_points = self._merge_results(queue)
        completed.update(worker_points)

        # Fold the workers' executed-trial counts (measured in *their*
        # processes) into ours, so counter-delta guardrails keep working.
        record_executed_trials(
            sum(point.executed_trials for point in worker_points.values())
        )

        if traced:
            # Merge the per-worker trace files in event-timestamp order and
            # replay them through the coordinator's bus, so its subscribers
            # (sink, metrics, progress) see the whole distributed run as one
            # stream.  Workers only trace when `traced`, so nothing here can
            # double-count.
            from repro.telemetry.sink import merge_traces

            for event in merge_traces(sorted(traces_dir.glob("*.jsonl"))):
                bus.emit(event)

        missing = [index for index in range(len(points)) if index not in completed]
        if missing:
            # Every worker died before finishing these points (e.g. a
            # deterministic trial error killed them all).  Run them inline:
            # completes the sweep when possible and otherwise re-raises the
            # underlying exception in the caller's process.
            fallback = SweepRunner(cache=self.cache, store=self.store,
                                   progress=None)
            for index in missing:
                completed[index] = fallback.run_point(
                    sweep, index, points[index], execution, adaptive
                )
                if traced:
                    bus.emit(
                        SweepProgress(
                            experiment=sweep.experiment,
                            done=len(completed),
                            total=len(points),
                        )
                    )
                if self.progress is not None:
                    self.progress(len(completed), len(points))
        return completed

    @staticmethod
    def _merge_results(queue: SweepWorkQueue) -> Dict[int, SweepPoint]:
        """Parse every worker's result file into points (last record wins).

        Truncated trailing lines (a worker killed mid-write) and error
        records are skipped — their points simply stay unaccounted and are
        re-run elsewhere.
        """
        merged: Dict[int, SweepPoint] = {}
        try:
            names = sorted(os.listdir(queue.results_dir))
        except OSError:
            return merged
        for name in names:
            if not name.endswith(".jsonl"):
                continue
            try:
                lines = (queue.results_dir / name).read_text().splitlines()
            except OSError:
                continue
            for line in lines:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    if "point" not in record:
                        continue  # an error record
                    index = int(record["index"])
                    merged[index] = SweepPoint.from_json_dict(record["point"])
                except (ValueError, KeyError, TypeError):
                    continue
        return merged
