"""JSONL checkpoint/resume for sweep runs.

Mirrors :class:`~repro.io.results.CampaignCheckpoint` one level up the
stack: where a campaign checkpoint records *trials*, a sweep checkpoint
records completed *points* — one header line identifying the sweep (a
digest of its experiment, points and base seed) followed by one
``{"index": ..., "point": {...}}`` line per completed
:class:`~repro.sweep.artifact.SweepPoint`, carrying the point's full
artifact so resume works even with the artifact store disabled.

The header digest guards against resuming a *different* sweep (changed
axes, seed or experiment); truncated trailing lines (a killed process) are
ignored on load, so the file is always resumable after a hard kill.
Duplicate index lines are harmless — the last one wins, exactly like the
campaign checkpoint.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.io.sanitize import canonical_json
from repro.sweep.artifact import SweepPoint
from repro.sweep.spec import SweepSpec

__all__ = ["SweepCheckpoint", "sweep_digest"]

_HEADER_KIND = "repro-sweep-checkpoint"


def sweep_digest(sweep: SweepSpec, points: List[Dict[str, Any]], seed: int) -> str:
    """Identity digest of a sweep run (experiment + resolved points + seed)."""
    payload = {
        "experiment": sweep.experiment,
        "points": points,
        "seed": seed,
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


class SweepCheckpoint:
    """Append-only JSONL record of a sweep's completed points."""

    def __init__(self, path) -> None:
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    def _header(self, digest: str, sweep: SweepSpec, seed: int) -> Dict[str, Any]:
        return {
            "kind": _HEADER_KIND,
            "digest": digest,
            "experiment": sweep.experiment,
            "mode": sweep.mode,
            "seed": seed,
        }

    def reset(self, digest: str, sweep: SweepSpec, seed: int) -> None:
        """Truncate the file and write a fresh header."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "w") as handle:
            handle.write(json.dumps(self._header(digest, sweep, seed)) + "\n")

    def append(self, point: SweepPoint) -> None:
        """Record one completed point (flushed immediately for crash safety)."""
        line = json.dumps({"index": point.index, "point": point.to_json_dict()})
        with open(self.path, "a") as handle:
            handle.write(line + "\n")
            handle.flush()

    def load(
        self, digest: str, sweep: SweepSpec, seed: int, n_points: int
    ) -> Dict[int, SweepPoint]:
        """Completed points by index; creates the file if missing.

        Raises ``ValueError`` when the file belongs to a different sweep —
        resuming it would silently mix points from incompatible runs.
        """
        if not self.path.exists():
            self.reset(digest, sweep, seed)
            return {}
        with open(self.path) as handle:
            lines = handle.read().splitlines()
        if not lines:
            self.reset(digest, sweep, seed)
            return {}
        header = self._parse_line(lines[0])
        expected = self._header(digest, sweep, seed)
        if header != expected:
            raise ValueError(
                f"sweep checkpoint {self.path} belongs to a different sweep: "
                f"found {header}, expected {expected}"
            )
        restored: Dict[int, SweepPoint] = {}
        for line in lines[1:]:
            record = self._parse_line(line)
            if record is None:
                continue  # truncated trailing write
            try:
                index = int(record["index"])
                point = SweepPoint.from_json_dict(record["point"])
            except (KeyError, TypeError, ValueError):
                continue
            if 0 <= index < n_points:
                restored[index] = point
        return restored

    @staticmethod
    def _parse_line(line: str) -> Optional[Dict[str, Any]]:
        line = line.strip()
        if not line:
            return None
        try:
            return json.loads(line)
        except json.JSONDecodeError:
            return None
