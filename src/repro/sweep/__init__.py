"""Sweep orchestration: many experiment points, computed at most once each.

The paper's headline figures are all sweeps — failure rate vs. fault rate,
bit position, quantization width, mitigation strategy.  ``repro.sweep``
turns such studies into data: a :class:`SweepSpec` enumerates points over a
registered experiment's typed parameters (grid / zip / random), and a
:class:`SweepRunner` executes them through the existing campaign engines
with content-addressed caching (:mod:`repro.store`), JSONL checkpoint /
resume, identity-derived per-point seeds, and optional precision-adaptive
repetition growth (:class:`AdaptiveConfig`).  The public entry points are
:func:`repro.api.sweep` and ``python -m repro sweep``.
"""

from repro.sweep.artifact import SweepArtifact, SweepPoint
from repro.sweep.checkpoint import SweepCheckpoint, sweep_digest
from repro.sweep.runner import AdaptiveConfig, SweepRunner, derive_point_seed
from repro.sweep.spec import SWEEP_MODES, SweepSpec, coerce_param_value

__all__ = [
    "SWEEP_MODES",
    "AdaptiveConfig",
    "SweepArtifact",
    "SweepCheckpoint",
    "SweepPoint",
    "SweepRunner",
    "SweepSpec",
    "coerce_param_value",
    "derive_point_seed",
    "sweep_digest",
]
