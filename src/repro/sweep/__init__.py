"""Sweep orchestration: many experiment points, computed at most once each.

The paper's headline figures are all sweeps — failure rate vs. fault rate,
bit position, quantization width, mitigation strategy.  ``repro.sweep``
turns such studies into data: a :class:`SweepSpec` enumerates points over a
registered experiment's typed parameters (grid / zip / random), and a
:class:`SweepRunner` executes them through the existing campaign engines
with content-addressed caching (:mod:`repro.store`), JSONL checkpoint /
resume, identity-derived per-point seeds, and optional precision-adaptive
repetition growth (:class:`AdaptiveConfig`).  A
:class:`DistributedSweepRunner` shards the same points across worker
processes pulling from a lease/heartbeat work queue with bit-identical
results.  The public entry points are :func:`repro.api.sweep` (with
``sweep_workers=N`` for the distributed path) and ``python -m repro
sweep`` (``--sweep-workers N``).
"""

from repro.sweep.artifact import SweepArtifact, SweepPoint
from repro.sweep.checkpoint import SweepCheckpoint, sweep_digest
from repro.sweep.distributed import (
    SWEEP_WORKERS_ENV_VAR,
    DistributedSweepRunner,
    SweepWorkQueue,
    default_sweep_workers,
)
from repro.sweep.runner import AdaptiveConfig, SweepRunner, derive_point_seed
from repro.sweep.spec import SWEEP_MODES, SweepSpec, coerce_param_value

__all__ = [
    "SWEEP_MODES",
    "SWEEP_WORKERS_ENV_VAR",
    "AdaptiveConfig",
    "DistributedSweepRunner",
    "SweepArtifact",
    "SweepCheckpoint",
    "SweepPoint",
    "SweepRunner",
    "SweepSpec",
    "SweepWorkQueue",
    "coerce_param_value",
    "default_sweep_workers",
    "derive_point_seed",
    "sweep_digest",
]
