"""Declarative sweep definitions over registered experiment parameters.

A :class:`SweepSpec` names one registered
:class:`~repro.experiments.registry.ExperimentSpec` and describes a set of
*points* — fully resolved parameter dicts — built from typed axes:

* ``grid`` — the Cartesian product of the axes, in declaration order (the
  last axis varies fastest, like nested for-loops).
* ``zip`` — the axes advance in lockstep (all must have equal length).
* ``random`` — ``samples`` points drawn uniformly (with replacement) from
  each axis's values, using a dedicated ``sample_seed`` so the draw is
  independent of the execution seed.

Every axis name and value is validated against the experiment's parameter
schema at construction, so a typo'd parameter or an out-of-choices value
fails before anything runs.  ``base_params`` pins the non-swept parameters
(e.g. ``fast=True``) for every point.

Point enumeration is deterministic, but nothing downstream depends on the
*order*: per-point campaign seeds derive from each point's parameter
identity (see :func:`repro.sweep.runner.derive_point_seed`), so reordering
or extending a sweep never changes the numbers of the points it shares with
another sweep.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.registry import ExperimentSpec, ParamSpec, get_spec

__all__ = ["SWEEP_MODES", "SweepSpec", "coerce_param_value"]

#: Valid sweep modes.
SWEEP_MODES = ("grid", "zip", "random")

#: Accepted spellings for CLI-style boolean values.
_BOOL_WORDS = {
    "true": True, "1": True, "yes": True, "on": True,
    "false": False, "0": False, "no": False, "off": False,
}


def coerce_param_value(param: ParamSpec, value: Any) -> Any:
    """Validate one axis value, additionally accepting CLI bool spellings.

    :meth:`ParamSpec.validate` insists on real ``bool`` objects; sweep axes
    frequently arrive as ``--grid fast=true,false`` strings, so boolean
    parameters also accept ``true/false/1/0/yes/no/on/off`` here.
    """
    if param.type is bool and isinstance(value, str):
        try:
            value = _BOOL_WORDS[value.strip().lower()]
        except KeyError:
            raise ValueError(
                f"parameter {param.name!r}: cannot parse bool from {value!r} "
                f"(use true/false)"
            ) from None
    return param.validate(value)


@dataclass(frozen=True)
class SweepSpec:
    """A validated set of experiment points for one registered spec.

    Build via the :meth:`grid` / :meth:`zipped` / :meth:`random`
    constructors, or directly with ``axes`` as ``(name, values)`` pairs.
    """

    experiment: str
    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...]
    mode: str = "grid"
    base_params: Tuple[Tuple[str, Any], ...] = ()
    samples: Optional[int] = None
    sample_seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in SWEEP_MODES:
            raise ValueError(f"mode must be one of {SWEEP_MODES}, got {self.mode!r}")
        spec = self.spec  # raises KeyError for unknown experiments
        seen: Dict[str, None] = {}
        validated_axes = []
        for name, values in self.axes:
            param = spec.param(name)
            if name in seen:
                raise ValueError(f"duplicate sweep axis {name!r}")
            seen[name] = None
            values = tuple(coerce_param_value(param, value) for value in values)
            if not values:
                raise ValueError(f"sweep axis {name!r} has no values")
            validated_axes.append((name, values))
        if not validated_axes:
            raise ValueError("a sweep needs at least one axis")
        object.__setattr__(self, "axes", tuple(validated_axes))

        validated_base = []
        for name, value in dict(self.base_params).items():
            if name in seen:
                raise ValueError(f"parameter {name!r} is both an axis and a base param")
            validated_base.append((name, coerce_param_value(spec.param(name), value)))
        object.__setattr__(self, "base_params", tuple(validated_base))

        if self.mode == "zip":
            lengths = {name: len(values) for name, values in self.axes}
            if len(set(lengths.values())) > 1:
                raise ValueError(f"zip axes must have equal lengths, got {lengths}")
            if self.samples is not None:
                raise ValueError("samples= only applies to random sweeps")
        elif self.mode == "random":
            if self.samples is None or self.samples < 1:
                raise ValueError(
                    f"random sweeps need samples >= 1, got {self.samples!r}"
                )
        elif self.samples is not None:
            raise ValueError("samples= only applies to random sweeps")

    # -- constructors ---------------------------------------------------- #
    @classmethod
    def grid(
        cls,
        experiment: str,
        base_params: Optional[Mapping[str, Any]] = None,
        **axes: Sequence[Any],
    ) -> "SweepSpec":
        """Cartesian-product sweep: ``SweepSpec.grid("fig5.inference", approach=["nn"])``."""
        return cls(
            experiment=experiment,
            axes=tuple((name, tuple(values)) for name, values in axes.items()),
            mode="grid",
            base_params=tuple((base_params or {}).items()),
        )

    @classmethod
    def zipped(
        cls,
        experiment: str,
        base_params: Optional[Mapping[str, Any]] = None,
        **axes: Sequence[Any],
    ) -> "SweepSpec":
        """Lockstep sweep: point ``i`` takes the ``i``-th value of every axis."""
        return cls(
            experiment=experiment,
            axes=tuple((name, tuple(values)) for name, values in axes.items()),
            mode="zip",
            base_params=tuple((base_params or {}).items()),
        )

    @classmethod
    def random(
        cls,
        experiment: str,
        samples: int,
        sample_seed: int = 0,
        base_params: Optional[Mapping[str, Any]] = None,
        **axes: Sequence[Any],
    ) -> "SweepSpec":
        """Random search: ``samples`` points drawn uniformly from each axis."""
        return cls(
            experiment=experiment,
            axes=tuple((name, tuple(values)) for name, values in axes.items()),
            mode="random",
            base_params=tuple((base_params or {}).items()),
            samples=samples,
            sample_seed=sample_seed,
        )

    # -- derived --------------------------------------------------------- #
    @property
    def spec(self) -> ExperimentSpec:
        """The registered experiment spec this sweep runs."""
        return get_spec(self.experiment)

    def points(self) -> List[Dict[str, Any]]:
        """The fully resolved parameter dict of every sweep point, in order.

        Each point merges the spec defaults, ``base_params`` and the axis
        assignment, then validates through
        :meth:`~repro.experiments.registry.ExperimentSpec.resolve_params` —
        so a point dict is exactly what ``api.run(name, params=point)``
        would resolve.  Random sweeps may repeat an assignment; repeated
        points are the *same* point (same derived seed, same cache key).
        """
        spec = self.spec
        base = dict(self.base_params)
        assignments: List[Dict[str, Any]]
        if self.mode == "grid":
            names = [name for name, _ in self.axes]
            value_lists = [values for _, values in self.axes]
            assignments = [
                dict(zip(names, combo)) for combo in itertools.product(*value_lists)
            ]
        elif self.mode == "zip":
            length = len(self.axes[0][1])
            assignments = [
                {name: values[i] for name, values in self.axes} for i in range(length)
            ]
        else:  # random
            rng = np.random.default_rng(np.random.SeedSequence(self.sample_seed))
            assignments = []
            for _ in range(self.samples):
                assignment = {}
                for name, values in self.axes:
                    assignment[name] = values[int(rng.integers(len(values)))]
                assignments.append(assignment)
        return [spec.resolve_params({**base, **assignment}) for assignment in assignments]

    def describe(self) -> str:
        """One-line human rendering, e.g. ``grid over approach x fast (4 points)``."""
        names = " x ".join(name for name, _ in self.axes)
        return f"{self.mode} over {names} ({len(self.points())} points)"

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-safe description (embedded in sweep artifacts and checkpoints)."""
        return {
            "experiment": self.experiment,
            "mode": self.mode,
            "axes": [[name, list(values)] for name, values in self.axes],
            "base_params": dict(self.base_params),
            "samples": self.samples,
            "sample_seed": self.sample_seed,
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        return cls(
            experiment=str(data["experiment"]),
            axes=tuple((str(name), tuple(values)) for name, values in data["axes"]),
            mode=str(data.get("mode", "grid")),
            base_params=tuple(dict(data.get("base_params") or {}).items()),
            samples=data.get("samples"),
            sample_seed=int(data.get("sample_seed", 0)),
        )
