"""Structured result of one sweep run.

A :class:`SweepArtifact` holds every point's
:class:`~repro.api.artifact.ExperimentArtifact` (full provenance intact)
plus the per-point sweep bookkeeping — derived seed, artifact-store digest,
whether the point was served from cache, how many trials it actually
executed, and how many adaptive rounds it took.  Two table views make the
results consumable:

* :meth:`SweepArtifact.table` — every point's result rows, flattened into
  one :class:`~repro.io.results.ResultTable` with a leading ``point`` index
  column and the point's parameters merged in.
* :meth:`SweepArtifact.summary_table` — one row per point (params, cache
  hit, executed trials, wall time), the orchestration-level view.

Like experiment artifacts, sweep artifacts round-trip through JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.api.artifact import ExperimentArtifact
from repro.api.execution import ExecutionConfig
from repro.io.results import ResultTable
from repro.io.sanitize import json_ready
from repro.sweep.spec import SweepSpec

__all__ = ["SweepPoint", "SweepArtifact"]

_SWEEP_KIND = "repro-sweep-artifact"


@dataclass(frozen=True)
class SweepPoint:
    """One executed (or cache-served) sweep point."""

    index: int
    params: Dict[str, Any]
    seed: int
    artifact: ExperimentArtifact
    digest: Optional[str] = None
    cache_hit: bool = False
    executed_trials: int = 0
    adaptive_rounds: int = 1
    #: Final Wilson CI half-width of the headline metric (adaptive runs only).
    ci_half_width: Optional[float] = None

    def to_json_dict(self) -> Dict[str, Any]:
        return json_ready(
            {
                "index": self.index,
                "params": dict(self.params),
                "seed": self.seed,
                "digest": self.digest,
                "cache_hit": self.cache_hit,
                "executed_trials": self.executed_trials,
                "adaptive_rounds": self.adaptive_rounds,
                "ci_half_width": self.ci_half_width,
                "artifact": self.artifact.to_json_dict(),
            }
        )

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "SweepPoint":
        half_width = data.get("ci_half_width")
        return cls(
            index=int(data["index"]),
            params=dict(data["params"]),
            seed=int(data["seed"]),
            artifact=ExperimentArtifact.from_json_dict(data["artifact"]),
            digest=data.get("digest"),
            cache_hit=bool(data.get("cache_hit", False)),
            executed_trials=int(data.get("executed_trials", 0)),
            adaptive_rounds=int(data.get("adaptive_rounds", 1)),
            ci_half_width=None if half_width is None else float(half_width),
        )


@dataclass
class SweepArtifact:
    """All points of one sweep plus the orchestration provenance."""

    sweep: SweepSpec
    execution: ExecutionConfig
    points: List[SweepPoint] = field(default_factory=list)
    target_ci: Optional[float] = None
    wall_time_s: float = 0.0
    #: Telemetry summary of the sweep run (``None`` for untraced runs;
    #: omitted from the JSON form when absent).
    telemetry: Optional[Dict[str, Any]] = None

    @property
    def experiment(self) -> str:
        return self.sweep.experiment

    @property
    def cache_hits(self) -> int:
        return sum(1 for point in self.points if point.cache_hit)

    @property
    def executed_trials(self) -> int:
        """Total trials freshly executed across every point and round."""
        return sum(point.executed_trials for point in self.points)

    def artifacts(self) -> List[ExperimentArtifact]:
        return [point.artifact for point in self.points]

    def table(self) -> ResultTable:
        """Every point's result rows flattened into one table.

        Each row gains a leading ``point`` column and the point's swept
        parameters; columns the experiment itself reports win on collision
        (they agree by construction — the rows were produced under exactly
        those parameters).
        """
        table = ResultTable(
            title=f"Sweep {self.experiment} ({len(self.points)} points, {self.sweep.mode})"
        )
        for point in self.points:
            for row in point.artifact.as_table().rows:
                table.add(point=point.index, **{**point.params, **row})
        return table

    def summary_table(self) -> ResultTable:
        """One orchestration row per point (cache hit, trials, wall time)."""
        table = ResultTable(title=f"Sweep {self.experiment}: points")
        for point in self.points:
            row: Dict[str, Any] = {"point": point.index, **point.params}
            row["seed"] = point.seed
            row["cache_hit"] = point.cache_hit
            row["executed_trials"] = point.executed_trials
            if self.target_ci is not None:
                row["adaptive_rounds"] = point.adaptive_rounds
                row["repetitions"] = point.artifact.execution.repetitions
                row["ci_half_width"] = point.ci_half_width
            row["wall_time_s"] = round(point.artifact.wall_time_s, 4)
            table.add(**row)
        return table

    # -- serialization ---------------------------------------------------- #
    def to_json_dict(self) -> Dict[str, Any]:
        payload = {
            "kind": _SWEEP_KIND,
            "sweep": self.sweep.to_json_dict(),
            "execution": self.execution.to_json_dict(),
            "target_ci": self.target_ci,
            "wall_time_s": self.wall_time_s,
            "points": [point.to_json_dict() for point in self.points],
        }
        if self.telemetry is not None:
            payload["telemetry"] = dict(self.telemetry)
        return json_ready(payload)

    def to_json(self, path: Optional[Path] = None) -> str:
        """Serialize to JSON; optionally also write to ``path``."""
        payload = json.dumps(self.to_json_dict(), indent=2, default=float)
        if path is not None:
            Path(path).write_text(payload)
        return payload

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "SweepArtifact":
        if data.get("kind") != _SWEEP_KIND:
            raise ValueError(
                f"not a sweep artifact: kind={data.get('kind')!r} "
                f"(expected {_SWEEP_KIND!r})"
            )
        target_ci = data.get("target_ci")
        telemetry = data.get("telemetry")
        return cls(
            sweep=SweepSpec.from_json_dict(data["sweep"]),
            execution=ExecutionConfig.from_json_dict(data["execution"]),
            points=[SweepPoint.from_json_dict(point) for point in data["points"]],
            target_ci=None if target_ci is None else float(target_ci),
            wall_time_s=float(data.get("wall_time_s", 0.0)),
            telemetry=None if telemetry is None else dict(telemetry),
        )

    @classmethod
    def from_json(cls, payload: Union[str, Path]) -> "SweepArtifact":
        """Deserialize from a JSON payload string or a file path."""
        if isinstance(payload, Path) or (
            isinstance(payload, str) and not payload.lstrip("\ufeff \t\r\n").startswith("{")
        ):
            payload = Path(payload).read_text()
        return cls.from_json_dict(json.loads(payload.lstrip("\ufeff")))
