"""Lossless JSON sanitization for result payloads.

Experiment drivers compute with numpy, so numpy scalars (``np.float64``,
``np.int64``, ``np.bool_``) and small arrays routinely end up inside result
rows, parameters and trial extras.  ``json.dumps(..., default=float)`` makes
such payloads *serializable* but not *lossless*: an ``np.int64(1000)``
becomes ``1000.0`` on disk and an ``int``-valued cell changes type across a
round-trip.  The content-addressed artifact store keys cache entries by a
canonical digest of these payloads, so "almost the same JSON" means a
spurious cache miss (or worse, a collision between a refreshed and a stale
encoding).

:func:`json_ready` converts a payload into plain Python containers and
scalars — numpy booleans to ``bool``, numpy integers to ``int``, numpy
floats to ``float``, arrays to (nested) lists, tuples to lists and mapping
keys to strings — so ``json.loads(json.dumps(json_ready(x)))`` preserves
both values and JSON types.  :func:`canonical_json` builds on it to produce
the deterministic, key-sorted, whitespace-free encoding the store digests.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

__all__ = ["json_ready", "canonical_json"]


def json_ready(obj: Any) -> Any:
    """Recursively convert ``obj`` into lossless, JSON-native Python values.

    Numpy scalars map to the matching Python scalar type (``np.int64`` →
    ``int``, not ``float``), arrays to nested lists, tuples/sets to lists
    (sets are sorted for determinism) and mapping keys to strings.  Values
    that are already JSON-native pass through unchanged.
    """
    if isinstance(obj, dict):
        return {str(key): json_ready(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [json_ready(value) for value in obj]
    if isinstance(obj, (set, frozenset)):
        return [json_ready(value) for value in sorted(obj)]
    if isinstance(obj, np.ndarray):
        return json_ready(obj.tolist())
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    return obj


def canonical_json(obj: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace) of ``obj``.

    Two payloads that differ only in dict insertion order or numpy-vs-Python
    scalar types produce the same canonical string, which is what makes the
    artifact store's content digests stable.
    """
    return json.dumps(json_ready(obj), sort_keys=True, separators=(",", ":"))
