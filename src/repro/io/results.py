"""Lightweight result containers for experiment outputs.

Experiments report their outputs as rows (one dict per configuration) or as
named series (x values plus one or more y series).  Both can be rendered to
ASCII tables, serialized to JSON, or written as CSV, so benchmark runs leave
a machine-readable record next to the printed summary.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["ResultRow", "ResultTable", "SeriesResult"]

#: A single experiment result row: column name -> value.
ResultRow = Dict[str, Any]


@dataclass
class ResultTable:
    """An ordered collection of result rows with a shared schema."""

    title: str
    rows: List[ResultRow] = field(default_factory=list)

    def add(self, **values: Any) -> ResultRow:
        """Append a row (keyword arguments become columns)."""
        self.rows.append(dict(values))
        return self.rows[-1]

    @property
    def columns(self) -> List[str]:
        """Union of column names in insertion order."""
        seen: Dict[str, None] = {}
        for row in self.rows:
            for key in row:
                seen.setdefault(key, None)
        return list(seen)

    def column(self, name: str) -> List[Any]:
        """All values of one column (missing cells become None)."""
        return [row.get(name) for row in self.rows]

    def filter(self, **criteria: Any) -> "ResultTable":
        """Rows matching all ``column=value`` criteria, as a new table."""
        matched = [
            row
            for row in self.rows
            if all(row.get(key) == value for key, value in criteria.items())
        ]
        return ResultTable(title=self.title, rows=matched)

    def to_json(self, path: Optional[Path] = None) -> str:
        """Serialize to JSON; optionally also write to ``path``."""
        payload = json.dumps({"title": self.title, "rows": self.rows}, indent=2, default=float)
        if path is not None:
            Path(path).write_text(payload)
        return payload

    def to_csv(self, path: Path) -> None:
        """Write the rows as CSV with a header."""
        columns = self.columns
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=columns)
            writer.writeheader()
            for row in self.rows:
                writer.writerow(row)

    @classmethod
    def from_json(cls, payload: str) -> "ResultTable":
        data = json.loads(payload)
        return cls(title=data["title"], rows=list(data["rows"]))

    def __len__(self) -> int:
        return len(self.rows)


@dataclass
class SeriesResult:
    """A named family of y-series over a shared x axis (one paper figure panel)."""

    title: str
    x_label: str
    x_values: List[Any] = field(default_factory=list)
    series: Dict[str, List[float]] = field(default_factory=dict)

    def add_series(self, name: str, values: Sequence[float]) -> None:
        values = list(values)
        if self.x_values and len(values) != len(self.x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} points but the x axis has "
                f"{len(self.x_values)}"
            )
        self.series[name] = values

    def as_table(self) -> ResultTable:
        """Flatten to a row-per-x table with one column per series."""
        table = ResultTable(title=self.title)
        for index, x in enumerate(self.x_values):
            row: ResultRow = {self.x_label: x}
            for name, values in self.series.items():
                row[name] = values[index]
            table.add(**row)
        return table

    def to_json(self, path: Optional[Path] = None) -> str:
        payload = json.dumps(
            {
                "title": self.title,
                "x_label": self.x_label,
                "x_values": self.x_values,
                "series": self.series,
            },
            indent=2,
            default=float,
        )
        if path is not None:
            Path(path).write_text(payload)
        return payload
