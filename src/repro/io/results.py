"""Lightweight result containers for experiment outputs.

Experiments report their outputs as rows (one dict per configuration) or as
named series (x values plus one or more y series).  Both can be rendered to
ASCII tables, serialized to JSON, or written as CSV, so benchmark runs leave
a machine-readable record next to the printed summary.

:class:`CampaignCheckpoint` persists fault-injection campaign trials as an
append-only JSONL file (one header line identifying the campaign, then one
line per completed :class:`~repro.core.campaign.TrialOutcome`), which is what
lets interrupted 1000-repetition campaigns resume where they left off.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

from repro.core.campaign import TrialOutcome
from repro.io.sanitize import json_ready

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.campaign import Campaign

__all__ = [
    "ResultRow",
    "ResultTable",
    "SeriesResult",
    "CampaignCheckpoint",
    "RESULT_KINDS",
    "result_kind",
]

#: A single experiment result row: column name -> value.
ResultRow = Dict[str, Any]


@dataclass
class ResultTable:
    """An ordered collection of result rows with a shared schema."""

    title: str
    rows: List[ResultRow] = field(default_factory=list)

    def add(self, **values: Any) -> ResultRow:
        """Append a row (keyword arguments become columns)."""
        self.rows.append(dict(values))
        return self.rows[-1]

    @property
    def columns(self) -> List[str]:
        """Union of column names in insertion order."""
        seen: Dict[str, None] = {}
        for row in self.rows:
            for key in row:
                seen.setdefault(key, None)
        return list(seen)

    def column(self, name: str) -> List[Any]:
        """All values of one column (missing cells become None)."""
        return [row.get(name) for row in self.rows]

    def filter(self, **criteria: Any) -> "ResultTable":
        """Rows matching all ``column=value`` criteria, as a new table."""
        matched = [
            row
            for row in self.rows
            if all(row.get(key) == value for key, value in criteria.items())
        ]
        return ResultTable(title=self.title, rows=matched)

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-safe dict representation (embeddable in experiment artifacts).

        Rows pass through :func:`~repro.io.sanitize.json_ready`, so numpy
        scalars/arrays that leaked into cells round-trip losslessly (an
        ``np.int64`` cell stays an ``int``, never ``float``) — the artifact
        store's content digests depend on this.
        """
        return {"title": self.title, "rows": json_ready(self.rows)}

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "ResultTable":
        return cls(title=data["title"], rows=list(data["rows"]))

    def to_json(self, path: Optional[Path] = None) -> str:
        """Serialize to JSON; optionally also write to ``path``."""
        payload = json.dumps(self.to_json_dict(), indent=2, default=float)
        if path is not None:
            Path(path).write_text(payload)
        return payload

    def to_csv(self, path: Path) -> None:
        """Write the rows as CSV with a header."""
        columns = self.columns
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=columns)
            writer.writeheader()
            for row in self.rows:
                writer.writerow(row)

    @classmethod
    def from_json(cls, payload: str) -> "ResultTable":
        return cls.from_json_dict(json.loads(payload))

    def __len__(self) -> int:
        return len(self.rows)


@dataclass
class SeriesResult:
    """A named family of y-series over a shared x axis (one paper figure panel)."""

    title: str
    x_label: str
    x_values: List[Any] = field(default_factory=list)
    series: Dict[str, List[float]] = field(default_factory=dict)

    def add_series(self, name: str, values: Sequence[float]) -> None:
        values = list(values)
        if self.x_values and len(values) != len(self.x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} points but the x axis has "
                f"{len(self.x_values)}"
            )
        self.series[name] = values

    def as_table(self) -> ResultTable:
        """Flatten to a row-per-x table with one column per series."""
        table = ResultTable(title=self.title)
        for index, x in enumerate(self.x_values):
            row: ResultRow = {self.x_label: x}
            for name, values in self.series.items():
                row[name] = values[index]
            table.add(**row)
        return table

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-safe dict representation (embeddable in experiment artifacts)."""
        return {
            "title": self.title,
            "x_label": self.x_label,
            "x_values": json_ready(self.x_values),
            "series": json_ready(self.series),
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "SeriesResult":
        result = cls(
            title=data["title"],
            x_label=data["x_label"],
            x_values=list(data["x_values"]),
        )
        for name, values in dict(data["series"]).items():
            result.add_series(name, values)
        return result

    def to_json(self, path: Optional[Path] = None) -> str:
        payload = json.dumps(self.to_json_dict(), indent=2, default=float)
        if path is not None:
            Path(path).write_text(payload)
        return payload

    @classmethod
    def from_json(cls, payload: str) -> "SeriesResult":
        return cls.from_json_dict(json.loads(payload))


#: Tag → result class, used when deserializing embedded artifact results.
RESULT_KINDS = {"table": ResultTable, "series": SeriesResult}


def result_kind(result) -> str:
    """The serialization tag for a result object (``"table"`` / ``"series"``)."""
    for kind, cls in RESULT_KINDS.items():
        if isinstance(result, cls):
            return kind
    raise TypeError(
        f"expected ResultTable or SeriesResult, got {type(result).__name__}"
    )


# --------------------------------------------------------------------------- #
# Campaign checkpoints
# --------------------------------------------------------------------------- #
class CampaignCheckpoint:
    """JSONL checkpoint of a campaign's completed trials.

    The file starts with a header line identifying the campaign (name, seed,
    repetitions) and then holds one ``{"index": ..., "outcome": {...}}`` line
    per completed trial, appended as trials finish.  Because every line
    carries its trial index, lines may arrive in any completion order (the
    parallel engine finishes trials out of order) and duplicates are
    harmless — the last line for an index wins.

    The header guards against resuming a *different campaign* (name, seed or
    repetition count mismatch); it cannot detect a changed trial function or
    experiment configuration (scale preset, config fields), so resume a
    checkpoint only under the configuration that produced it.

    A truncated final line (the process died mid-write) is ignored on load,
    so a checkpoint is always resumable after a hard kill.
    """

    _HEADER_KIND = "repro-campaign-checkpoint"

    def __init__(self, path) -> None:
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    def _header(self, campaign: "Campaign") -> Dict[str, Any]:
        return {
            "kind": self._HEADER_KIND,
            "name": campaign.name,
            "seed": campaign.seed,
            "repetitions": campaign.repetitions,
        }

    def reset(self, campaign: "Campaign") -> None:
        """Truncate the file and write a fresh header for ``campaign``."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "w") as handle:
            handle.write(json.dumps(self._header(campaign)) + "\n")

    def append(self, index: int, outcome: TrialOutcome) -> None:
        """Record one completed trial (flushed immediately for crash safety)."""
        # json_ready keeps numpy scalar metrics/extras lossless (np.bool_
        # stays a JSON bool, np.int64 stays an int); default=float remains as
        # a safety net for exotic extras.
        line = json.dumps(
            {"index": int(index), "outcome": json_ready(outcome.to_json_dict())},
            default=float,
        )
        with open(self.path, "a") as handle:
            handle.write(line + "\n")
            handle.flush()

    def load(self, campaign: "Campaign") -> Dict[int, TrialOutcome]:
        """Completed outcomes by trial index; creates the file if missing.

        Raises ``ValueError`` if the file exists but belongs to a different
        campaign (name, seed or repetition count mismatch) — resuming such a
        checkpoint would silently mix incompatible trials.
        """
        if not self.path.exists():
            self.reset(campaign)
            return {}
        with open(self.path) as handle:
            lines = handle.read().splitlines()
        if not lines:
            self.reset(campaign)
            return {}
        header = self._parse_line(lines[0])
        expected = self._header(campaign)
        if header != expected:
            raise ValueError(
                f"checkpoint {self.path} belongs to a different campaign: "
                f"found {header}, expected {expected}"
            )
        outcomes: Dict[int, TrialOutcome] = {}
        for line in lines[1:]:
            record = self._parse_line(line)
            if record is None:
                continue  # truncated trailing write
            index = int(record["index"])
            if 0 <= index < campaign.repetitions:
                outcomes[index] = TrialOutcome.from_json_dict(record["outcome"])
        return outcomes

    @staticmethod
    def _parse_line(line: str) -> Optional[Dict[str, Any]]:
        line = line.strip()
        if not line:
            return None
        try:
            return json.loads(line)
        except json.JSONDecodeError:
            return None
