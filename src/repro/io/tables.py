"""ASCII rendering of result tables and heatmaps.

Benchmarks print these so a run regenerates the same rows/series the paper's
figures report, in a form that is easy to eyeball in a terminal or diff in CI.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.io.results import ResultTable

__all__ = ["render_table", "render_heatmap"]


def _format_cell(value: Any, precision: int) -> str:
    if isinstance(value, float):
        if value != 0.0 and abs(value) < 10 ** (-precision):
            # Small rates (e.g. bit error rates of 1e-5) would round to zero
            # at fixed precision; print them in scientific notation instead.
            return f"{value:.{max(precision - 1, 1)}e}"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(table: ResultTable, precision: int = 3) -> str:
    """Render a ResultTable as a fixed-width ASCII table."""
    columns = table.columns
    if not columns:
        return f"{table.title}\n(empty)"
    formatted = [
        [_format_cell(row.get(col, ""), precision) for col in columns] for row in table.rows
    ]
    widths = [
        max(len(col), *(len(line[i]) for line in formatted)) if formatted else len(col)
        for i, col in enumerate(columns)
    ]
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "-+-".join("-" * w for w in widths)
    body = [
        " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)) for line in formatted
    ]
    return "\n".join([table.title, header, separator, *body])


def render_heatmap(
    values: np.ndarray,
    row_labels: Sequence[Any],
    col_labels: Sequence[Any],
    title: str = "",
    precision: int = 0,
    corner: str = "",
) -> str:
    """Render a 2-D array as a labelled ASCII grid (paper-style heatmap).

    Rows are printed top-to-bottom in the given order; the paper's heatmaps
    put the highest bit-error rate on the top row, so callers should order
    ``row_labels``/``values`` accordingly.
    """
    values = np.asarray(values)
    if values.ndim != 2:
        raise ValueError(f"heatmap values must be 2-D, got shape {values.shape}")
    if values.shape != (len(row_labels), len(col_labels)):
        raise ValueError(
            f"values shape {values.shape} does not match labels "
            f"({len(row_labels)}, {len(col_labels)})"
        )
    cells = [[f"{float(v):.{precision}f}" for v in row] for row in values]
    row_names = [str(label) for label in row_labels]
    col_names = [str(label) for label in col_labels]
    label_width = max(len(corner), *(len(name) for name in row_names))
    col_widths = [
        max(len(col_names[j]), *(len(cells[i][j]) for i in range(len(row_names))))
        for j in range(len(col_names))
    ]
    lines = []
    if title:
        lines.append(title)
    header = corner.ljust(label_width) + " | " + " ".join(
        col_names[j].rjust(col_widths[j]) for j in range(len(col_names))
    )
    lines.append(header)
    lines.append("-" * len(header))
    for i, name in enumerate(row_names):
        lines.append(
            name.ljust(label_width)
            + " | "
            + " ".join(cells[i][j].rjust(col_widths[j]) for j in range(len(col_names)))
        )
    return "\n".join(lines)
