"""Result containers and renderers used by examples and benchmarks."""

from repro.io.results import ResultRow, ResultTable, SeriesResult
from repro.io.tables import render_table, render_heatmap

__all__ = ["ResultRow", "ResultTable", "SeriesResult", "render_table", "render_heatmap"]
