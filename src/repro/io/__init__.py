"""Result containers, renderers and crash-safe file writes."""

from repro.io.atomic import atomic_write_text
from repro.io.results import CampaignCheckpoint, ResultRow, ResultTable, SeriesResult
from repro.io.sanitize import canonical_json, json_ready
from repro.io.tables import render_table, render_heatmap

__all__ = [
    "atomic_write_text",
    "CampaignCheckpoint",
    "ResultRow",
    "ResultTable",
    "SeriesResult",
    "canonical_json",
    "json_ready",
    "render_table",
    "render_heatmap",
]
