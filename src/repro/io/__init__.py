"""Result containers and renderers used by examples and benchmarks."""

from repro.io.results import CampaignCheckpoint, ResultRow, ResultTable, SeriesResult
from repro.io.sanitize import canonical_json, json_ready
from repro.io.tables import render_table, render_heatmap

__all__ = [
    "CampaignCheckpoint",
    "ResultRow",
    "ResultTable",
    "SeriesResult",
    "canonical_json",
    "json_ready",
    "render_table",
    "render_heatmap",
]
