"""Crash-safe text-file writes.

:func:`atomic_write_text` is the single write primitive shared by everything
that persists JSON to disk — the artifact store index, sweep worker leases,
and the benchmark ``BENCH_*.json`` snapshots.  It lives in :mod:`repro.io`
because it has no store-specific behaviour; :mod:`repro.store` re-exports it
for backwards compatibility.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

__all__ = ["atomic_write_text"]


def _fsync_dir(path: Path) -> None:
    """Flush a directory entry to disk (so a rename survives power loss)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return  # e.g. a filesystem that cannot open directories
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: Path, payload: str, *, durable: bool = True) -> None:
    """Write ``payload`` to ``path`` via a same-directory temp file + replace.

    With ``durable=True`` (the default) the temp file is flushed and
    fsync'd before the replace and the parent directory is fsync'd after,
    so a crash at any instant leaves either the old file or the complete
    new one — never a truncated or empty object.  ``durable=False`` keeps
    only the atomicity (used for high-churn transient files such as sweep
    worker leases, where durability across power loss buys nothing).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)
            if durable:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp_name, path)
        if durable:
            _fsync_dir(path.parent)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
