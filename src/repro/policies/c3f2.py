"""The C3F2 drone policy network (Fig. 6b).

Three convolutional layers followed by two fully connected layers mapping the
monocular camera image to 25 action values.  Two presets are provided:

* :func:`paper_c3f2` — the full-size network of Fig. 6b (103x103 input,
  96/64/64-ish channel widths).  Functional but slow in pure numpy; kept for
  completeness and architecture tests.
* :func:`small_c3f2` — a scaled-down variant (32x32 input) with the same
  depth, layer ordering and pooling structure, used by the experiments so
  drone fault campaigns finish on CPU.  The per-layer vulnerability ordering
  that Fig. 7d depends on (early conv layers protected by pooling/ReLU, FC2
  most exposed) is preserved by construction.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU
from repro.nn.network import Sequential

__all__ = ["build_c3f2", "small_c3f2", "paper_c3f2", "C3F2_LAYER_NAMES"]

#: Trainable layer names, in forward order, used by per-layer fault sweeps.
C3F2_LAYER_NAMES = ("conv1", "conv2", "conv3", "fc1", "fc2")


def build_c3f2(
    input_shape: Tuple[int, int, int],
    n_actions: int = 25,
    conv_channels: Tuple[int, int, int] = (8, 16, 16),
    conv_kernels: Tuple[int, int, int] = (5, 3, 3),
    conv_strides: Tuple[int, int, int] = (2, 1, 1),
    fc1_size: int = 64,
    rng: Optional[np.random.Generator] = None,
) -> Sequential:
    """Build a C3F2-style network for a given input shape.

    The structure follows Fig. 6b: conv1 -> pool -> conv2 -> pool -> conv3
    (no pool) -> fc1 -> fc2.  Max-pooling and ReLU close the first two conv
    stages, which is what gives them their fault-masking behaviour (Fig. 7d).
    """
    channels, height, width = input_shape
    if channels <= 0 or height <= 0 or width <= 0:
        raise ValueError(f"invalid input shape {input_shape}")
    rng = rng or np.random.default_rng()
    layers = [
        Conv2D(channels, conv_channels[0], conv_kernels[0], stride=conv_strides[0], name="conv1", rng=rng),
        ReLU(name="relu1"),
        MaxPool2D(2, name="pool1"),
        Conv2D(conv_channels[0], conv_channels[1], conv_kernels[1], stride=conv_strides[1], name="conv2", rng=rng),
        ReLU(name="relu2"),
        MaxPool2D(2, name="pool2"),
        Conv2D(conv_channels[1], conv_channels[2], conv_kernels[2], stride=conv_strides[2], name="conv3", rng=rng),
        ReLU(name="relu3"),
        Flatten(name="flatten"),
    ]
    conv_stack = Sequential(layers, name="c3f2_features")
    flat_features = conv_stack.output_shape(input_shape)[0]
    layers.extend(
        [
            Dense(flat_features, fc1_size, name="fc1", rng=rng),
            ReLU(name="relu_fc1"),
            Dense(fc1_size, n_actions, name="fc2", rng=rng),
        ]
    )
    return Sequential(layers, name="c3f2")


def small_c3f2(
    image_size: int = 32,
    n_actions: int = 25,
    rng: Optional[np.random.Generator] = None,
) -> Sequential:
    """Scaled-down C3F2 used by the CPU-friendly drone experiments."""
    if image_size < 20:
        raise ValueError(f"image_size must be at least 20, got {image_size}")
    return build_c3f2(
        (1, image_size, image_size),
        n_actions=n_actions,
        conv_channels=(8, 16, 16),
        conv_kernels=(5, 3, 3),
        conv_strides=(1, 1, 1),
        fc1_size=64,
        rng=rng,
    )


def paper_c3f2(
    n_actions: int = 25, rng: Optional[np.random.Generator] = None
) -> Sequential:
    """Full-size C3F2 approximating Fig. 6b (103x103x3 input, 96/64/64 channels)."""
    return build_c3f2(
        (3, 103, 103),
        n_actions=n_actions,
        conv_channels=(96, 64, 64),
        conv_kernels=(7, 5, 3),
        conv_strides=(3, 2, 1),
        fc1_size=1024,
        rng=rng,
    )
