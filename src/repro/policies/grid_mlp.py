"""NN-based Q-function for Grid World.

A small fully connected network over one-hot state encodings, used by the
"NN-based approach" of Sec. 4.1.  Layer names (``fc1``, ``fc2``, ...) are
stable so experiments can address their weight buffers by name.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.nn.layers import Dense, ReLU
from repro.nn.network import Sequential

__all__ = ["build_grid_q_network"]


def build_grid_q_network(
    n_states: int,
    n_actions: int,
    hidden_sizes: Sequence[int] = (32, 32),
    rng: Optional[np.random.Generator] = None,
) -> Sequential:
    """Build the Grid World Q-network: one-hot state -> per-action Q values."""
    if n_states <= 0 or n_actions <= 0:
        raise ValueError("n_states and n_actions must be positive")
    rng = rng or np.random.default_rng()
    layers = []
    in_features = n_states
    for index, hidden in enumerate(hidden_sizes, start=1):
        layers.append(Dense(in_features, hidden, name=f"fc{index}", rng=rng))
        layers.append(ReLU(name=f"relu{index}"))
        in_features = hidden
    layers.append(
        Dense(in_features, n_actions, name=f"fc{len(hidden_sizes) + 1}", rng=rng)
    )
    return Sequential(layers, name="grid_q_network")
