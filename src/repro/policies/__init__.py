"""Policy network architectures used in the paper's experiments."""

from repro.policies.grid_mlp import build_grid_q_network
from repro.policies.c3f2 import build_c3f2, C3F2_LAYER_NAMES, paper_c3f2, small_c3f2

__all__ = [
    "build_grid_q_network",
    "build_c3f2",
    "paper_c3f2",
    "small_c3f2",
    "C3F2_LAYER_NAMES",
]
