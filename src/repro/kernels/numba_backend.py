"""Numba JIT implementations of the kernel ops.

Importing this module requires numba (an optional extra); the dispatch
package only imports it when the ``numba`` backend is selected, and falls
back to the numpy reference with a warning when the import fails.

Bit-identity notes — every kernel must reproduce the numpy reference
(:mod:`repro.kernels.numpy_backend`) bit-for-bit:

* ``float64 -> int64`` casts: numpy's cast saturates NaN / infinities /
  out-of-range values to ``INT64_MIN`` (x86 ``cvttsd2si`` semantics), but
  LLVM's ``fptosi`` — what a bare numba cast compiles to — is *undefined*
  for those inputs.  ``_quantize_raw`` branches explicitly to the
  ``INT64_MIN`` sentinel before casting, after which the usual saturation
  clamp applies, matching numpy on every input including non-finite ones.
* ``np.rint`` is round-half-even in both numpy and numba.
* The fused matmul accumulates in a plain loop, which is only bit-identical
  to BLAS when every partial sum is exact; callers gate it behind
  :meth:`repro.quant.qformat.QFormat.supports_exact_matmul` (quantized
  operands are multiples of ``2**-fraction_bits`` whose products and sums
  stay inside float64's exact window), and use the ``np.matmul`` +
  ``bias_quantize_stacked`` tail otherwise.
* The injection kernels are serial on purpose: repeated element indices are
  read-modify-write dependent, so a parallel loop would race.
* ``relu`` uses ``if v < 0.0`` so NaN propagates exactly like
  ``np.maximum(x, 0.0)``.
"""

from __future__ import annotations

import numpy as np
from numba import njit

from repro.kernels.common import OP_FLIP, OP_SET

name = "numba"

#: ``2**63`` as float64 (exactly representable); magnitudes at or beyond it
#: (and NaN) saturate to INT64_MIN in numpy's float64 -> int64 cast.
_I64_LIMIT = 9.223372036854775808e18
_I64_MIN = -9223372036854775808


@njit(cache=True)
def _quantize_raw(value, inv_scale, min_raw, max_raw):
    t = np.rint(value * inv_scale)
    if np.isnan(t) or t >= _I64_LIMIT or t < -_I64_LIMIT:
        r = _I64_MIN
    else:
        r = np.int64(t)
    if r < min_raw:
        r = min_raw
    if r > max_raw:
        r = max_raw
    return r


# --------------------------------------------------------------------------- #
# Elementwise quantization
# --------------------------------------------------------------------------- #
@njit(cache=True)
def _quantize_flat(values, inv_scale, scale, min_raw, max_raw):
    out = np.empty(values.size, dtype=np.float64)
    for i in range(values.size):
        out[i] = _quantize_raw(values[i], inv_scale, min_raw, max_raw) * scale
    return out


@njit(cache=True)
def _encode_flat(values, inv_scale, min_raw, max_raw, word_mask):
    out = np.empty(values.size, dtype=np.int64)
    for i in range(values.size):
        out[i] = _quantize_raw(values[i], inv_scale, min_raw, max_raw) & word_mask
    return out


@njit(cache=True)
def _decode_flat(raw, word_mask, sign_bit, modulus, scale):
    out = np.empty(raw.size, dtype=np.float64)
    for i in range(raw.size):
        r = raw[i] & word_mask
        if sign_bit != 0 and (r & sign_bit) != 0:
            r = r - modulus
        out[i] = r * scale
    return out


def quantize(values, inv_scale, scale, min_raw, max_raw):
    arr = np.ascontiguousarray(values, dtype=np.float64)
    out = _quantize_flat(
        arr.reshape(-1), float(inv_scale), float(scale), np.int64(min_raw), np.int64(max_raw)
    )
    return out.reshape(arr.shape)


def encode(values, inv_scale, min_raw, max_raw, word_mask):
    arr = np.ascontiguousarray(values, dtype=np.float64)
    out = _encode_flat(
        arr.reshape(-1),
        float(inv_scale),
        np.int64(min_raw),
        np.int64(max_raw),
        np.int64(word_mask),
    )
    return out.reshape(arr.shape)


def decode(raw, word_mask, sign_bit, modulus, scale):
    arr = np.ascontiguousarray(raw, dtype=np.int64)
    out = _decode_flat(
        arr.reshape(-1),
        np.int64(word_mask),
        np.int64(sign_bit),
        np.int64(modulus),
        float(scale),
    )
    return out.reshape(arr.shape)


# --------------------------------------------------------------------------- #
# Bit injection (serial: repeated sites are read-modify-write dependent)
# --------------------------------------------------------------------------- #
@njit(cache=True)
def _scatter_flat(flat, elements, bits, op_code):
    one = np.int64(1)
    for i in range(elements.size):
        e = elements[i]
        mask = one << bits[i]
        if op_code == OP_FLIP:
            flat[e] = flat[e] ^ mask
        elif op_code == OP_SET:
            flat[e] = flat[e] | mask
        else:
            flat[e] = flat[e] & ~mask


@njit(cache=True)
def _inject_flat(flat, elements, bits, op_codes):
    one = np.int64(1)
    for i in range(elements.size):
        e = elements[i]
        mask = one << bits[i]
        code = op_codes[i]
        if code == OP_FLIP:
            flat[e] = flat[e] ^ mask
        elif code == OP_SET:
            flat[e] = flat[e] | mask
        else:
            flat[e] = flat[e] & ~mask


def scatter_bits(flat, elements, bits, op_code):
    _scatter_flat(
        flat,
        np.ascontiguousarray(elements, dtype=np.int64),
        np.ascontiguousarray(bits, dtype=np.int64),
        np.int64(op_code),
    )


def inject_sites(flat, elements, bits, op_codes):
    _inject_flat(
        flat,
        np.ascontiguousarray(elements, dtype=np.int64),
        np.ascontiguousarray(bits, dtype=np.int64),
        np.ascontiguousarray(op_codes, dtype=np.int64),
    )


# --------------------------------------------------------------------------- #
# Fused quantized-forward ops
# --------------------------------------------------------------------------- #
@njit(cache=True)
def _matmul_bias_quantize(x, w, b, inv_scale, scale, min_raw, max_raw):
    reps, rows, in_features = x.shape
    out_features = w.shape[2]
    out = np.empty((reps, rows, out_features), dtype=np.float64)
    for rep in range(reps):
        for row in range(rows):
            acc = np.zeros(out_features, dtype=np.float64)
            for k in range(in_features):
                xv = x[rep, row, k]
                for o in range(out_features):
                    acc[o] += xv * w[rep, k, o]
            for o in range(out_features):
                out[rep, row, o] = (
                    _quantize_raw(acc[o] + b[rep, o], inv_scale, min_raw, max_raw) * scale
                )
    return out


@njit(cache=True)
def _bias_quantize_shared(y, bias, inv_scale, scale, min_raw, max_raw):
    n, out_features = y.shape
    out = np.empty((n, out_features), dtype=np.float64)
    for i in range(n):
        for o in range(out_features):
            out[i, o] = (
                _quantize_raw(y[i, o] + bias[o], inv_scale, min_raw, max_raw) * scale
            )
    return out


@njit(cache=True)
def _bias_quantize_stacked(y, bias, inv_scale, scale, min_raw, max_raw):
    reps, rows, out_features = y.shape
    out = np.empty((reps, rows, out_features), dtype=np.float64)
    for rep in range(reps):
        for row in range(rows):
            for o in range(out_features):
                out[rep, row, o] = (
                    _quantize_raw(y[rep, row, o] + bias[rep, o], inv_scale, min_raw, max_raw)
                    * scale
                )
    return out


@njit(cache=True)
def _relu_quantize_flat(values, inv_scale, scale, min_raw, max_raw):
    out = np.empty(values.size, dtype=np.float64)
    for i in range(values.size):
        v = values[i]
        if v < 0.0:
            v = 0.0
        out[i] = _quantize_raw(v, inv_scale, min_raw, max_raw) * scale
    return out


def matmul_bias_quantize(x, w, b, inv_scale, scale, min_raw, max_raw):
    return _matmul_bias_quantize(
        np.ascontiguousarray(x, dtype=np.float64),
        np.ascontiguousarray(w, dtype=np.float64),
        np.ascontiguousarray(b, dtype=np.float64),
        float(inv_scale),
        float(scale),
        np.int64(min_raw),
        np.int64(max_raw),
    )


def bias_quantize(y, bias, inv_scale, scale, min_raw, max_raw):
    arr = np.ascontiguousarray(y, dtype=np.float64)
    bias = np.ascontiguousarray(bias, dtype=np.float64)
    out = _bias_quantize_shared(
        arr.reshape(-1, bias.size),
        bias,
        float(inv_scale),
        float(scale),
        np.int64(min_raw),
        np.int64(max_raw),
    )
    return out.reshape(arr.shape)


def bias_quantize_stacked(y, bias, inv_scale, scale, min_raw, max_raw):
    return _bias_quantize_stacked(
        np.ascontiguousarray(y, dtype=np.float64),
        np.ascontiguousarray(bias, dtype=np.float64),
        float(inv_scale),
        float(scale),
        np.int64(min_raw),
        np.int64(max_raw),
    )


def relu_quantize(values, inv_scale, scale, min_raw, max_raw):
    arr = np.ascontiguousarray(values, dtype=np.float64)
    out = _relu_quantize_flat(
        arr.reshape(-1), float(inv_scale), float(scale), np.int64(min_raw), np.int64(max_raw)
    )
    return out.reshape(arr.shape)
