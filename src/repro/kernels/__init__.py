"""repro.kernels — pluggable compiled backends for the hot numeric ops.

The fault-injection + quantized-forward inner loop every figure shares
(bit scatter into stacked int64 words, ``decode -> matmul/bias ->
activation -> quantize`` per layer) dispatches through this package.  Two
backends exist:

* ``numpy`` — the reference implementation, byte-for-byte the expressions
  the code paths used before this layer existed;
* ``numba`` — JIT-compiled fused kernels (optional extra), proven
  bit-identical to the reference by the differential suite
  (``tests/test_kernels.py``).

Selection
---------
The active backend is resolved from, in order: an explicit
:func:`set_backend` / :func:`use_backend` call (``api.run`` applies
``ExecutionConfig.kernel_backend`` this way), else the
``REPRO_KERNEL_BACKEND`` environment variable, else ``"auto"`` — numba when
importable, numpy otherwise.  Requesting ``"numba"`` where it cannot be
imported warns (``RuntimeWarning``) and falls back to numpy, so numpy-only
environments run every code path unchanged.

Because backends are bit-identical, the choice is an *engine* knob: it never
changes an experiment's numbers and is excluded from artifact cache keys
(like ``workers`` / ``batch_size``).

Dispatch
--------
Callers use module-attribute access (``kernels.quantize(...)``) — never
``from repro.kernels import quantize`` — so backend switches rebind what
they call.  Every dispatched call increments a per-op counter
(:func:`counters_snapshot`), which ``api.run`` turns into a ``kernel.ops``
telemetry event.  Ops take primitive scalars (``inv_scale``, ``min_raw``,
...) rather than ``QFormat`` objects to keep this package import-free of
the layers that depend on it.

:func:`warm_up` runs every op once on tiny inputs (memoized per backend)
so numba's lazy compilation happens before timed campaign loops; compiled
artifacts persist across processes via ``@njit(cache=True)``.
"""

from __future__ import annotations

import contextlib
import importlib
import importlib.util
import os
import threading
import warnings
from typing import Dict, Iterator, Optional

import numpy as np

from repro.kernels.common import OP_CLEAR, OP_FLIP, OP_SET, OP_NAMES

__all__ = [
    "KERNEL_BACKEND_ENV_VAR",
    "BACKEND_NAMES",
    "OP_NAMES",
    "OP_FLIP",
    "OP_SET",
    "OP_CLEAR",
    "validate_backend_name",
    "numba_available",
    "default_backend_name",
    "resolve_backend_name",
    "set_backend",
    "ensure_backend",
    "active_backend_name",
    "use_backend",
    "reset_backend",
    "counters_snapshot",
    "reset_counters",
    "warm_up",
] + list(OP_NAMES)

#: Environment variable selecting the default backend.
KERNEL_BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Accepted backend names (``"auto"`` resolves to a concrete backend).
BACKEND_NAMES = ("auto", "numpy", "numba")

_lock = threading.RLock()
_active: Optional[str] = None
_counters: Dict[str, int] = {}
_warmed = set()
_warned_numba_fallback = False


def validate_backend_name(name) -> str:
    """Normalize a backend name, raising ``ValueError`` for unknown ones."""
    text = str(name).strip().lower()
    if text not in BACKEND_NAMES:
        raise ValueError(
            f"unknown kernel backend {name!r}; expected one of {', '.join(BACKEND_NAMES)}"
        )
    return text


def numba_available() -> bool:
    """Whether the numba package is importable (without importing it)."""
    try:
        return importlib.util.find_spec("numba") is not None
    except (ImportError, ValueError):  # pragma: no cover - exotic environments
        return False


def default_backend_name() -> str:
    """The backend name requested by the environment (``"auto"`` if unset)."""
    raw = os.environ.get(KERNEL_BACKEND_ENV_VAR)
    if raw is None or not raw.strip():
        return "auto"
    return validate_backend_name(raw)


def resolve_backend_name(name: Optional[str] = None) -> str:
    """Resolve a requested name (or the environment default) to a concrete backend."""
    resolved = default_backend_name() if name is None else validate_backend_name(name)
    if resolved == "auto":
        return "numba" if numba_available() else "numpy"
    return resolved


def _counting(op: str, fn):
    counters = _counters

    def dispatch(*args):
        counters[op] = counters.get(op, 0) + 1
        return fn(*args)

    dispatch.__name__ = op
    dispatch.__qualname__ = f"kernels.{op}"
    return dispatch


def _warn_numba_fallback(exc: BaseException) -> None:
    global _warned_numba_fallback
    if _warned_numba_fallback:
        return
    _warned_numba_fallback = True
    warnings.warn(
        f"kernel backend 'numba' requested but numba could not be imported "
        f"({exc!r}); falling back to the numpy reference backend",
        RuntimeWarning,
        stacklevel=3,
    )


def _activate(name: str) -> str:
    """Bind the named backend's ops into this module (caller holds the lock)."""
    global _active
    if name == "numba":
        try:
            module = importlib.import_module("repro.kernels.numba_backend")
        except Exception as exc:
            _warn_numba_fallback(exc)
            name = "numpy"
            module = importlib.import_module("repro.kernels.numpy_backend")
    else:
        module = importlib.import_module("repro.kernels.numpy_backend")
    namespace = globals()
    for op in OP_NAMES:
        namespace[op] = _counting(op, getattr(module, op))
    _active = name
    return name


def set_backend(name: Optional[str] = None) -> str:
    """Activate a backend (``None`` = environment default); returns its name."""
    with _lock:
        return _activate(resolve_backend_name(name))


def ensure_backend() -> str:
    """Activate the default backend if none is active yet; returns the name."""
    if _active is None:
        with _lock:
            if _active is None:
                _activate(resolve_backend_name(None))
    return _active


def active_backend_name() -> str:
    """Name of the backend in effect (resolving the default if needed)."""
    return ensure_backend()


@contextlib.contextmanager
def use_backend(name: Optional[str] = None) -> Iterator[str]:
    """Scoped backend selection: activate on entry, restore on exit.

    ``None`` activates the environment default.  On exit the previously
    active backend is re-activated (or the default re-resolved if nothing
    had been activated yet).
    """
    with _lock:
        previous = _active
        active = _activate(resolve_backend_name(name))
    try:
        yield active
    finally:
        with _lock:
            _activate(resolve_backend_name(previous))


def reset_backend() -> None:
    """Forget the active backend so the next op call re-resolves the default.

    Test hook: backend selection is process-global, so suites that
    monkeypatch ``REPRO_KERNEL_BACKEND`` reset around it.
    """
    global _active
    with _lock:
        _active = None
        namespace = globals()
        for op in OP_NAMES:
            namespace[op] = _bootstrap(op)


def counters_snapshot() -> Dict[str, int]:
    """Per-op dispatch counts since the last :func:`reset_counters`."""
    return dict(_counters)


def reset_counters() -> None:
    """Zero the per-op dispatch counters."""
    _counters.clear()


def warm_up() -> str:
    """Run every op once on tiny inputs so JIT compilation happens up front.

    Memoized per backend per process; the numpy backend's warm-up is a few
    microseconds, the numba backend's first-ever warm-up compiles (or loads
    the on-disk ``@njit(cache=True)`` artifacts of) every kernel.  Returns
    the active backend name.  Warm-up calls go straight to the backend
    module, so they never pollute the dispatch counters.
    """
    backend = ensure_backend()
    with _lock:
        if backend in _warmed:
            return backend
        _warmed.add(backend)
    _exercise_ops(backend)
    return backend


def _exercise_ops(backend: str) -> None:
    module = importlib.import_module(f"repro.kernels.{backend}_backend")
    values = np.array([0.25, -1.5, 3.75], dtype=np.float64)
    inv_scale, scale = 16.0, 0.0625
    min_raw, max_raw = np.int64(-128), np.int64(127)
    word_mask, sign_bit, modulus = np.int64(255), np.int64(128), np.int64(256)
    module.quantize(values, inv_scale, scale, min_raw, max_raw)
    raw = module.encode(values, inv_scale, min_raw, max_raw, word_mask)
    module.decode(raw, word_mask, sign_bit, modulus, scale)
    flat = raw.reshape(-1).copy()
    elements = np.array([0, 1], dtype=np.int64)
    bits = np.array([0, 7], dtype=np.int64)
    module.scatter_bits(flat, elements, bits, OP_FLIP)
    module.inject_sites(flat, elements, bits, np.array([OP_SET, OP_CLEAR], dtype=np.int64))
    x = np.full((2, 1, 3), 0.25)
    w = np.full((2, 3, 2), 0.5)
    b = np.zeros((2, 2))
    module.matmul_bias_quantize(x, w, b, inv_scale, scale, min_raw, max_raw)
    y = np.full((2, 1, 2), 0.375)
    module.bias_quantize(y, np.zeros(2), inv_scale, scale, min_raw, max_raw)
    module.bias_quantize_stacked(y, b, inv_scale, scale, min_raw, max_raw)
    module.relu_quantize(values, inv_scale, scale, min_raw, max_raw)


def _bootstrap(op: str):
    """Initial binding for an op: resolve the default backend, then re-dispatch."""

    def boot(*args):
        ensure_backend()
        return globals()[op](*args)

    boot.__name__ = op
    boot.__qualname__ = f"kernels.{op}"
    return boot


for _op in OP_NAMES:
    globals()[_op] = _bootstrap(_op)
del _op
