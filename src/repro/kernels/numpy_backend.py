"""Reference numpy implementations of the kernel ops.

These bodies are the exact numpy expressions the quantization and
fault-injection code paths used before the kernel layer existed — they
*define* the numerical contract every other backend must reproduce
bit-for-bit (see ``tests/test_kernels.py``).

All ops take primitive scalars (``inv_scale``, ``min_raw``, ...) instead of
a :class:`~repro.quant.qformat.QFormat` so the kernel layer never imports
the quantization package (which imports this layer).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.common import OP_CLEAR, OP_FLIP, OP_SET

name = "numpy"


# --------------------------------------------------------------------------- #
# Elementwise quantization
# --------------------------------------------------------------------------- #
def quantize(values, inv_scale, scale, min_raw, max_raw):
    """Round-to-nearest-even fixed-point quantization with saturation."""
    raw = np.rint(values * inv_scale).astype(np.int64)
    raw = np.minimum(np.maximum(raw, min_raw), max_raw)
    return raw.astype(np.float64) * scale


def encode(values, inv_scale, min_raw, max_raw, word_mask):
    """Quantize and mask to the two's-complement word bits."""
    raw = np.rint(values * inv_scale).astype(np.int64)
    raw = np.minimum(np.maximum(raw, min_raw), max_raw)
    return raw & word_mask


def decode(raw, word_mask, sign_bit, modulus, scale):
    """Decode two's-complement words back to real values."""
    raw = raw & word_mask
    if sign_bit:
        signed = np.where(raw & sign_bit, raw - modulus, raw)
    else:
        signed = raw
    return signed.astype(np.float64) * scale


# --------------------------------------------------------------------------- #
# Bit injection
# --------------------------------------------------------------------------- #
def scatter_bits(flat, elements, bits, op_code):
    """Apply one bit operation to ``flat`` in place at the addressed sites.

    ``np.bitwise_*.at`` handles repeated element indices correctly (each
    occurrence applies), matching the serial per-site loop of the compiled
    backends.
    """
    masks = np.int64(1) << bits
    if op_code == OP_FLIP:
        np.bitwise_xor.at(flat, elements, masks)
    elif op_code == OP_SET:
        np.bitwise_or.at(flat, elements, masks)
    elif op_code == OP_CLEAR:
        np.bitwise_and.at(flat, elements, ~masks)
    else:  # pragma: no cover - guarded by the dispatch layer's callers
        raise ValueError(f"unknown bit op code {op_code!r}")


def inject_sites(flat, elements, bits, op_codes):
    """Apply mixed flip/set/clear operations to ``flat`` in place.

    Sites carrying *different* op codes must be distinct (guaranteed by
    :func:`repro.core.sites.apply_patterns_stacked`, where each replica's
    pattern addresses a disjoint flat range); repeated sites within one op
    kind behave like repeated ``scatter_bits`` applications.
    """
    for op_code in (OP_FLIP, OP_SET, OP_CLEAR):
        mask = op_codes == op_code
        if mask.any():
            scatter_bits(flat, elements[mask], bits[mask], op_code)


# --------------------------------------------------------------------------- #
# Fused quantized-forward ops
# --------------------------------------------------------------------------- #
def matmul_bias_quantize(x, w, b, inv_scale, scale, min_raw, max_raw):
    """Per-replica ``quantize(x @ w + b)`` for stacked weights.

    Shapes: ``x (R, rows, in)``, ``w (R, in, out)``, ``b (R, out)``.
    """
    return quantize(np.matmul(x, w) + b[:, None, :], inv_scale, scale, min_raw, max_raw)


def bias_quantize(y, bias, inv_scale, scale, min_raw, max_raw):
    """``quantize(y + bias)`` with a shared trailing-axis bias."""
    return quantize(y + bias, inv_scale, scale, min_raw, max_raw)


def bias_quantize_stacked(y, bias, inv_scale, scale, min_raw, max_raw):
    """``quantize(y + bias)`` with a per-replica ``(R, out)`` bias stack."""
    return quantize(y + bias[:, None, :], inv_scale, scale, min_raw, max_raw)


def relu_quantize(values, inv_scale, scale, min_raw, max_raw):
    """``quantize(relu(values))`` (NaN propagates, like ``np.maximum``)."""
    return quantize(np.maximum(values, 0.0), inv_scale, scale, min_raw, max_raw)
