"""Shared constants of the kernel backend layer.

Kept dependency-free (numpy only) so both backend modules and the dispatch
package can import it without cycles.
"""

from __future__ import annotations

__all__ = ["OP_FLIP", "OP_SET", "OP_CLEAR", "OP_NAMES"]

#: Bit-operation codes used by the fused injection kernels.  One code per
#: fault mechanism: transient flip (XOR), stuck-at-1 (OR), stuck-at-0
#: (AND-NOT).  Stable small integers so op-code arrays are plain int64.
OP_FLIP = 0
OP_SET = 1
OP_CLEAR = 2

#: Every dispatchable kernel op.  Each backend module must define a function
#: of this name; the package rebinds its module-level attributes to the
#: active backend's implementations.
OP_NAMES = (
    "quantize",
    "encode",
    "decode",
    "scatter_bits",
    "inject_sites",
    "matmul_bias_quantize",
    "bias_quantize",
    "bias_quantize_stacked",
    "relu_quantize",
)
