"""Content-addressed, filesystem-backed store of experiment artifacts.

The sweep orchestrator never recomputes a result it already has.  That
promise lives here: every :class:`~repro.api.artifact.ExperimentArtifact` is
stored under a *content key* — the SHA-256 of the canonical JSON of

* the spec name,
* the fully resolved experiment parameters,
* the numeric-identity fields of the
  :class:`~repro.api.execution.ExecutionConfig` (seed, repetitions, scale;
  engine and checkpoint knobs are excluded because campaigns are
  bit-identical across engines), and
* a fingerprint of the ``repro`` source tree
  (:func:`~repro.store.fingerprint.code_fingerprint`), so editing any code
  invalidates the cache automatically.

Layout on disk::

    <root>/
        index.json                  # compacted snapshot: digest -> metadata
        index.d/<digest>.json       # per-entry journal records (see below)
        index.lock                  # advisory lock serializing compaction
        objects/<aa>/<digest>.json  # full artifact JSON (provenance intact)

**Multi-writer index design.**  The store is safe for any number of
concurrent writer processes (the distributed sweep runner opens one store
per worker on a shared root).  Object puts were always conflict-free —
content-addressed filenames plus atomic replace — but a single shared
``index.json`` would lose entries to read-modify-write races.  Instead,
``put()`` appends one *journal* file per entry under ``index.d/`` (an
atomic, single-writer create; two writers never touch the same journal
file unless they computed the same artifact, in which case the records are
identical).  Readers merge the ``index.json`` snapshot with every journal
record, journal winning.  When the journal grows past a threshold, whoever
notices compacts it into the snapshot under a non-blocking advisory lock
(``index.lock``); losing the lock race just means someone else is already
compacting.  An entry is therefore visible to every process from the
moment its journal file lands, and no interleaving of writers can drop it.

**Crash safety.**  Object and journal writes go through a same-directory
temp file that is flushed and fsync'd before an atomic ``os.replace``
(followed by an fsync of the parent directory), so a killed process can
never leave a half-written or empty object behind — at worst a stale
``*.tmp`` file, which ``_rebuild_index`` and ``evict`` sweep once it is
old enough to be provably orphaned.  Each object additionally embeds a
``store`` envelope recording its own digest and creation time: rebuilds
verify the digest against the filename (a copied or renamed object file is
skipped with a warning rather than served under the wrong key) and
preserve the original creation order.

The object files are the source of truth; ``index.json`` + ``index.d/``
are a queryable summary that is rebuilt by scanning ``objects/`` whenever
the snapshot is missing or unreadable.

The ``cache`` policy threaded through :func:`repro.api.run` maps onto the
store as:

========== =============================================================
``reuse``   return the stored artifact when the key exists, else run+put
``refresh`` always run, overwrite whatever the key held
``off``     never touch the store (the historical behaviour)
========== =============================================================
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

try:  # advisory file locking: POSIX only; degrades to a no-op elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.api.artifact import ExperimentArtifact
from repro.api.execution import ExecutionConfig
from repro.io.atomic import _fsync_dir, atomic_write_text
from repro.io.sanitize import canonical_json, json_ready
from repro.store.fingerprint import code_fingerprint
from repro.telemetry.bus import default_bus
from repro.telemetry.events import StoreEvict, StoreHit, StoreMiss, StorePut

__all__ = [
    "CACHE_POLICIES",
    "STORE_ENV_VAR",
    "ArtifactStore",
    "StoreEntry",
    "artifact_key",
    "atomic_write_text",
    "default_store_root",
    "resolve_store",
    "validate_cache_policy",
]

#: Valid values for the ``cache=`` policy accepted by ``api.run`` / ``api.sweep``.
CACHE_POLICIES = ("reuse", "refresh", "off")

#: Environment variable selecting the default store root directory.
STORE_ENV_VAR = "REPRO_STORE_DIR"

_INDEX_KIND = "repro-artifact-store-index"

#: Journal size at which ``put()`` folds ``index.d/`` into ``index.json``.
_COMPACT_THRESHOLD = 32

#: Age (seconds) past which an orphaned ``*.tmp`` file is provably stale: no
#: healthy writer holds a temp file open this long, so the sweep can never
#: delete a file another process is still writing.
_STALE_TMP_AGE_S = 3600.0

#: Bounded retries when a concurrent writer replaces ``index.json`` mid-read.
_SNAPSHOT_READ_RETRIES = 8


def validate_cache_policy(policy: str) -> str:
    """Check a ``cache=`` policy string, returning it unchanged."""
    if policy not in CACHE_POLICIES:
        raise ValueError(f"cache must be one of {CACHE_POLICIES}, got {policy!r}")
    return policy


def default_store_root() -> Path:
    """Default store directory: ``REPRO_STORE_DIR`` or ``.repro-store``."""
    return Path(os.environ.get(STORE_ENV_VAR, ".repro-store"))


def resolve_store(store: Union["ArtifactStore", str, os.PathLike, None]) -> "ArtifactStore":
    """Coerce a store argument (instance, path, or ``None`` for the default)."""
    if isinstance(store, ArtifactStore):
        return store
    return ArtifactStore(default_store_root() if store is None else store)


def artifact_key(
    spec_name: str,
    params: Mapping[str, Any],
    execution: ExecutionConfig,
    fingerprint: Optional[str] = None,
) -> str:
    """Content key of one experiment invocation (SHA-256 hex digest).

    Pure function of the *semantic* identity of a run: parameter dict
    ordering, numpy scalar types and the execution engine all wash out, so
    the same experiment asked for twice — by any engine, in any order —
    lands on the same key.
    """
    payload = {
        "spec": spec_name,
        "params": params,
        "execution": execution.cache_key_dict(),
        "code": fingerprint if fingerprint is not None else code_fingerprint(),
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


@dataclass(frozen=True)
class StoreEntry:
    """One index record: the key plus enough metadata to query without loads."""

    digest: str
    spec_name: str
    params: Dict[str, Any]
    execution_key: Dict[str, Any]
    created_at: float
    wall_time_s: float

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec_name,
            "params": self.params,
            "execution_key": self.execution_key,
            "created_at": self.created_at,
            "wall_time_s": self.wall_time_s,
        }

    @classmethod
    def from_json_dict(cls, digest: str, data: Mapping[str, Any]) -> "StoreEntry":
        return cls(
            digest=digest,
            spec_name=str(data["spec"]),
            params=dict(data["params"]),
            execution_key=dict(data.get("execution_key") or {}),
            created_at=float(data.get("created_at", 0.0)),
            wall_time_s=float(data.get("wall_time_s", 0.0)),
        )


class _IndexLock:
    """Advisory lock serializing snapshot compaction and eviction.

    Only *optimizations* hide behind it (compacting the journal, rewriting
    the snapshot during evict); correctness of concurrent ``put()`` never
    depends on holding it.  On platforms without ``fcntl`` the lock is a
    no-op, which degrades compaction to last-writer-wins on the snapshot —
    still safe, because journal files are only deleted by the process that
    merged them and the object files remain the source of truth.
    """

    def __init__(self, path: Path, blocking: bool) -> None:
        self.path = path
        self.blocking = blocking
        self._fd: Optional[int] = None

    def __enter__(self) -> bool:
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            return True
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path, os.O_CREAT | os.O_RDWR)
        flags = fcntl.LOCK_EX if self.blocking else fcntl.LOCK_EX | fcntl.LOCK_NB
        try:
            fcntl.flock(fd, flags)
        except OSError:
            os.close(fd)
            return False  # someone else is compacting; skip
        self._fd = fd
        return True

    def __exit__(self, *exc_info: Any) -> None:
        if self._fd is not None:
            try:
                fcntl.flock(self._fd, fcntl.LOCK_UN)
            finally:
                os.close(self._fd)
            self._fd = None


class ArtifactStore:
    """Filesystem-backed, content-addressed cache of experiment artifacts.

    Safe for concurrent readers *and* writers on one root directory: see
    the module docstring for the journal-merge index design.
    """

    #: Journal entries tolerated before ``put()`` attempts a compaction.
    compact_threshold = _COMPACT_THRESHOLD

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = Path(root)
        # In-memory cache of the *snapshot* (index.json) only, validated
        # against an (mtime_ns, size, inode) stamp so a long sweep does not
        # re-parse a large snapshot on every query while still seeing
        # replacements made by other processes.  Journal records are always
        # read fresh — compaction keeps their number small.
        self._snapshot_cache: Optional[Dict[str, Dict[str, Any]]] = None
        self._snapshot_stamp: Optional[Tuple[int, int, int]] = None
        # Lifetime operation counters for *this* store instance.  Always
        # maintained (they are plain integer bumps); the matching telemetry
        # events are only emitted when a bus subscriber is attached.
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0

    # -- paths ----------------------------------------------------------- #
    @property
    def index_path(self) -> Path:
        return self.root / "index.json"

    @property
    def journal_dir(self) -> Path:
        return self.root / "index.d"

    @property
    def lock_path(self) -> Path:
        return self.root / "index.lock"

    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    def object_path(self, digest: str) -> Path:
        return self.objects_dir / digest[:2] / f"{digest}.json"

    def journal_path(self, digest: str) -> Path:
        return self.journal_dir / f"{digest}.json"

    # -- snapshot -------------------------------------------------------- #
    @staticmethod
    def _stamp(stat: os.stat_result) -> Tuple[int, int, int]:
        # mtime alone is not enough: two replacements within one mtime_ns
        # granularity tick (coarse filesystems) would alias, so the stamp
        # also carries size and inode (os.replace always changes the inode).
        return (stat.st_mtime_ns, stat.st_size, stat.st_ino)

    def _load_snapshot(self) -> Dict[str, Dict[str, Any]]:
        """The ``index.json`` entries, cached under a replace-proof stamp.

        The file is stat'd *before and after* reading: a concurrent writer
        replacing it mid-read changes the stamp, in which case the read is
        retried rather than poisoning the cache with a torn view.  A
        missing or unreadable snapshot falls back to a rebuild from the
        object files.
        """
        for _ in range(_SNAPSHOT_READ_RETRIES):
            try:
                before = self._stamp(os.stat(self.index_path))
            except OSError:
                break  # missing: rebuild below
            if self._snapshot_cache is not None and before == self._snapshot_stamp:
                return self._snapshot_cache
            try:
                text = self.index_path.read_text()
                after = self._stamp(os.stat(self.index_path))
            except OSError:
                continue  # replaced or removed mid-read; retry
            if after != before:
                continue  # torn read; retry against the new file
            try:
                data = json.loads(text)
                if data.get("kind") != _INDEX_KIND:
                    raise ValueError(f"not a store index: {self.index_path}")
                entries = dict(data.get("entries") or {})
            except (json.JSONDecodeError, ValueError, KeyError):
                break  # unreadable snapshot: rebuild from the object files
            self._snapshot_cache, self._snapshot_stamp = entries, after
            return entries
        entries = self._rebuild_index()
        if entries or self.root.exists():
            self._save_snapshot(entries)
        return entries

    def _save_snapshot(self, entries: Dict[str, Dict[str, Any]]) -> None:
        payload = json.dumps(
            json_ready({"kind": _INDEX_KIND, "version": 2, "entries": entries}),
            indent=2,
            sort_keys=True,
        )
        atomic_write_text(self.index_path, payload)
        # Never stamp our own write: a concurrent writer may have replaced
        # the file already, and pairing our entries with its stamp would
        # serve a stale cache.  The next load re-reads and re-stamps.
        self._snapshot_cache, self._snapshot_stamp = None, None

    # -- journal --------------------------------------------------------- #
    def _journal_entries(self) -> Dict[str, Dict[str, Any]]:
        """Every parseable journal record, keyed by digest."""
        entries: Dict[str, Dict[str, Any]] = {}
        try:
            names = sorted(os.listdir(self.journal_dir))
        except OSError:
            return entries
        for name in names:
            if not name.endswith(".json"):
                continue
            try:
                data = json.loads((self.journal_dir / name).read_text())
            except (OSError, json.JSONDecodeError, ValueError):
                continue  # vanished under compaction, or never completed
            if isinstance(data, dict):
                entries[name[: -len(".json")]] = data
        return entries

    def _maybe_compact(self, force: bool = False) -> None:
        """Fold the journal into the snapshot when it has grown enough.

        Runs under a *non-blocking* advisory lock: losing the race simply
        means another process is compacting the same records.  Only the
        journal files actually merged are deleted, so a record landing
        mid-compaction survives in the journal untouched.
        """
        try:
            pending = sum(1 for n in os.listdir(self.journal_dir) if n.endswith(".json"))
        except OSError:
            pending = 0
        if not force and pending < self.compact_threshold:
            return
        with _IndexLock(self.lock_path, blocking=False) as acquired:
            if not acquired:
                return
            journal = self._journal_entries()
            merged = dict(self._load_snapshot())
            merged.update(journal)
            self._save_snapshot(merged)
            for digest in journal:
                try:
                    os.unlink(self.journal_path(digest))
                except OSError:
                    pass

    # -- index ----------------------------------------------------------- #
    def _load_index(self) -> Dict[str, Dict[str, Any]]:
        """The merged view: snapshot overlaid with journal records."""
        entries = dict(self._load_snapshot())
        entries.update(self._journal_entries())
        return entries

    def _sweep_stale_tmp(self, max_age_s: float = _STALE_TMP_AGE_S) -> int:
        """Remove ``*.tmp`` files orphaned by killed writers; returns count.

        Only files older than ``max_age_s`` go — a younger temp file may
        still be open in a live writer about to ``os.replace`` it.
        """
        removed = 0
        if not self.root.is_dir():
            return removed
        cutoff = time.time() - max_age_s
        for path in self.root.rglob("*.tmp"):
            try:
                if path.stat().st_mtime <= cutoff:
                    path.unlink()
                    removed += 1
            except OSError:
                continue  # raced with its writer or another sweeper
        return removed

    def _rebuild_index(self) -> Dict[str, Dict[str, Any]]:
        """Reconstruct index metadata by scanning ``objects/``.

        Every object verifies against its filename before being indexed:
        the digest recorded in the object's ``store`` envelope (or, for
        objects predating the envelope, the recomputed
        :func:`artifact_key`) must equal the filename stem.  A copied or
        renamed object file therefore gets skipped with a warning instead
        of being served under the wrong key.  Creation times come from the
        envelope, so entry ordering survives a rebuild.
        """
        self._sweep_stale_tmp()
        entries: Dict[str, Dict[str, Any]] = {}
        objects = self.objects_dir
        if not objects.is_dir():
            return entries
        for path in sorted(objects.glob("*/*.json")):
            digest = path.stem
            try:
                data = json.loads(path.read_text())
                artifact = ExperimentArtifact.from_json_dict(data)
            except (ValueError, KeyError, TypeError, json.JSONDecodeError, OSError):
                continue  # corrupt object: skip, never serve
            envelope = data.get("store") if isinstance(data.get("store"), dict) else {}
            recorded = envelope.get("digest")
            if recorded is None:
                recorded = artifact_key(artifact.spec_name, artifact.params, artifact.execution)
            if recorded != digest:
                warnings.warn(
                    f"artifact store object {path} does not verify: recorded key "
                    f"{recorded[:12]}... != filename {digest[:12]}... (copied or "
                    "renamed object file?); skipping",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            created_at = envelope.get("created_at")
            entries[digest] = StoreEntry(
                digest=digest,
                spec_name=artifact.spec_name,
                params=dict(artifact.params),
                execution_key=artifact.execution.cache_key_dict(),
                created_at=float(created_at) if created_at is not None else path.stat().st_mtime,
                wall_time_s=artifact.wall_time_s,
            ).to_json_dict()
        return entries

    # -- core operations -------------------------------------------------- #
    def contains(self, digest: str) -> bool:
        """Whether an object for ``digest`` exists on disk."""
        return self.object_path(digest).is_file()

    def get(self, digest: str) -> Optional[ExperimentArtifact]:
        """Load the artifact stored under ``digest``; ``None`` on a miss.

        An unreadable object file counts as a miss (the caller recomputes
        and overwrites it) rather than an error — a half-corrupted cache
        must never block an experiment.  Safe against concurrent ``put()``
        and ``evict()``: object replacement is atomic and removal surfaces
        as an ordinary miss.
        """
        path = self.object_path(digest)
        bus = default_bus()
        try:
            payload = path.read_text()
        except OSError:
            self.misses += 1  # missing, or evicted between any check and the read
            if bus.active:
                bus.emit(StoreMiss(digest=digest))
            return None
        try:
            artifact = ExperimentArtifact.from_json_dict(json.loads(payload))
        except (ValueError, KeyError, TypeError, json.JSONDecodeError):
            self.misses += 1
            if bus.active:
                bus.emit(StoreMiss(digest=digest))
            return None
        self.hits += 1
        if bus.active:
            bus.emit(StoreHit(digest=digest))
        return artifact

    def put(
        self, artifact: ExperimentArtifact, digest: Optional[str] = None
    ) -> StoreEntry:
        """Store an artifact under its content key (computed if not given).

        The artifact JSON round-trips with full provenance — loading the
        entry back yields an ``ExperimentArtifact`` whose ``to_json_dict()``
        equals the original's exactly.  Concurrency-safe: the object write
        is atomic and content-addressed, and the index entry is a private
        journal file rather than a read-modify-write of shared state, so
        parallel writers never lose each other's entries.
        """
        if digest is None:
            digest = artifact_key(artifact.spec_name, artifact.params, artifact.execution)
        created_at = time.time()
        payload = artifact.to_json_dict()
        # The envelope is store metadata, ignored by ExperimentArtifact
        # loading: the object's own key (verified on rebuild) and its
        # creation time (so rebuilds preserve entry ordering).
        payload["store"] = {"digest": digest, "created_at": created_at}
        atomic_write_text(
            self.object_path(digest), json.dumps(payload, indent=2, default=float)
        )
        entry = StoreEntry(
            digest=digest,
            spec_name=artifact.spec_name,
            params=json_ready(dict(artifact.params)),
            execution_key=artifact.execution.cache_key_dict(),
            created_at=created_at,
            wall_time_s=artifact.wall_time_s,
        )
        atomic_write_text(
            self.journal_path(digest),
            json.dumps(json_ready(entry.to_json_dict()), sort_keys=True),
        )
        # Materialize the snapshot on first contact so `index.json` always
        # exists alongside objects; afterwards only threshold compactions
        # rewrite it.
        self._maybe_compact(force=not self.index_path.exists())
        self.puts += 1
        bus = default_bus()
        if bus.active:
            bus.emit(StorePut(digest=digest))
        return entry

    def entries(self) -> List[StoreEntry]:
        """Every index entry, ordered by creation time then digest."""
        entries = [
            StoreEntry.from_json_dict(digest, data)
            for digest, data in self._load_index().items()
        ]
        return sorted(entries, key=lambda e: (e.created_at, e.digest))

    def query(self, spec: Optional[str] = None, **params: Any) -> List[StoreEntry]:
        """Index entries matching a spec name and/or exact parameter values.

        ``store.query("fig5.inference", approach="nn")`` returns every cached
        fig5 NN artifact regardless of seed or repetition count.
        """
        matched = []
        wanted = json_ready(params)
        for entry in self.entries():
            if spec is not None and entry.spec_name != spec:
                continue
            if all(entry.params.get(key) == value for key, value in wanted.items()):
                matched.append(entry)
        return matched

    def evict(self, digest: Optional[str] = None, *, spec: Optional[str] = None) -> int:
        """Remove entries: one digest, every entry of a spec, or everything.

        Returns the number of objects removed.  With neither ``digest`` nor
        ``spec`` the whole store is cleared.  Runs under the advisory index
        lock so an eviction and a compaction never interleave their
        snapshot rewrites; stale ``*.tmp`` litter is swept on the way.
        """
        with _IndexLock(self.lock_path, blocking=True):
            entries = self._load_index()
            if digest is not None:
                doomed = [digest] if digest in entries or self.contains(digest) else []
            elif spec is not None:
                doomed = [d for d, data in entries.items() if data.get("spec") == spec]
            else:
                doomed = list(entries)
            removed = 0
            bus = default_bus()
            for d in doomed:
                entries.pop(d, None)
                try:
                    os.unlink(self.journal_path(d))
                except OSError:
                    pass
                path = self.object_path(d)
                if path.is_file():
                    path.unlink()
                    removed += 1
                    self.evictions += 1
                    if bus.active:
                        bus.emit(StoreEvict(digest=d))
            self._save_snapshot(entries)
            self._sweep_stale_tmp()
        return removed

    def counters_dict(self) -> Dict[str, int]:
        """This instance's lifetime operation counters, JSON-ready."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
        }

    def __len__(self) -> int:
        return len(self._load_index())

    def __repr__(self) -> str:
        return f"ArtifactStore({str(self.root)!r})"
