"""Content-addressed, filesystem-backed store of experiment artifacts.

The sweep orchestrator never recomputes a result it already has.  That
promise lives here: every :class:`~repro.api.artifact.ExperimentArtifact` is
stored under a *content key* — the SHA-256 of the canonical JSON of

* the spec name,
* the fully resolved experiment parameters,
* the numeric-identity fields of the
  :class:`~repro.api.execution.ExecutionConfig` (seed, repetitions, scale;
  engine and checkpoint knobs are excluded because campaigns are
  bit-identical across engines), and
* a fingerprint of the ``repro`` source tree
  (:func:`~repro.store.fingerprint.code_fingerprint`), so editing any code
  invalidates the cache automatically.

Layout on disk::

    <root>/
        index.json                  # digest -> metadata (spec, params, ...)
        objects/<aa>/<digest>.json  # full artifact JSON (provenance intact)

The object files are the source of truth; ``index.json`` is a queryable
summary that is rebuilt by scanning ``objects/`` whenever it is missing or
unreadable.  Writes go through a temp file + ``os.replace`` so a killed
process can never leave a half-written object behind.

The ``cache`` policy threaded through :func:`repro.api.run` maps onto the
store as:

========== =============================================================
``reuse``   return the stored artifact when the key exists, else run+put
``refresh`` always run, overwrite whatever the key held
``off``     never touch the store (the historical behaviour)
========== =============================================================
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.api.artifact import ExperimentArtifact
from repro.api.execution import ExecutionConfig
from repro.io.sanitize import canonical_json, json_ready
from repro.store.fingerprint import code_fingerprint

__all__ = [
    "CACHE_POLICIES",
    "STORE_ENV_VAR",
    "ArtifactStore",
    "StoreEntry",
    "artifact_key",
    "default_store_root",
    "resolve_store",
    "validate_cache_policy",
]

#: Valid values for the ``cache=`` policy accepted by ``api.run`` / ``api.sweep``.
CACHE_POLICIES = ("reuse", "refresh", "off")

#: Environment variable selecting the default store root directory.
STORE_ENV_VAR = "REPRO_STORE_DIR"

_INDEX_KIND = "repro-artifact-store-index"


def validate_cache_policy(policy: str) -> str:
    """Check a ``cache=`` policy string, returning it unchanged."""
    if policy not in CACHE_POLICIES:
        raise ValueError(f"cache must be one of {CACHE_POLICIES}, got {policy!r}")
    return policy


def default_store_root() -> Path:
    """Default store directory: ``REPRO_STORE_DIR`` or ``.repro-store``."""
    return Path(os.environ.get(STORE_ENV_VAR, ".repro-store"))


def resolve_store(store: Union["ArtifactStore", str, os.PathLike, None]) -> "ArtifactStore":
    """Coerce a store argument (instance, path, or ``None`` for the default)."""
    if isinstance(store, ArtifactStore):
        return store
    return ArtifactStore(default_store_root() if store is None else store)


def artifact_key(
    spec_name: str,
    params: Mapping[str, Any],
    execution: ExecutionConfig,
    fingerprint: Optional[str] = None,
) -> str:
    """Content key of one experiment invocation (SHA-256 hex digest).

    Pure function of the *semantic* identity of a run: parameter dict
    ordering, numpy scalar types and the execution engine all wash out, so
    the same experiment asked for twice — by any engine, in any order —
    lands on the same key.
    """
    payload = {
        "spec": spec_name,
        "params": params,
        "execution": execution.cache_key_dict(),
        "code": fingerprint if fingerprint is not None else code_fingerprint(),
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


@dataclass(frozen=True)
class StoreEntry:
    """One index record: the key plus enough metadata to query without loads."""

    digest: str
    spec_name: str
    params: Dict[str, Any]
    execution_key: Dict[str, Any]
    created_at: float
    wall_time_s: float

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec_name,
            "params": self.params,
            "execution_key": self.execution_key,
            "created_at": self.created_at,
            "wall_time_s": self.wall_time_s,
        }

    @classmethod
    def from_json_dict(cls, digest: str, data: Mapping[str, Any]) -> "StoreEntry":
        return cls(
            digest=digest,
            spec_name=str(data["spec"]),
            params=dict(data["params"]),
            execution_key=dict(data.get("execution_key") or {}),
            created_at=float(data.get("created_at", 0.0)),
            wall_time_s=float(data.get("wall_time_s", 0.0)),
        )


def _atomic_write(path: Path, payload: str) -> None:
    """Write ``payload`` to ``path`` via a same-directory temp file + replace."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class ArtifactStore:
    """Filesystem-backed, content-addressed cache of experiment artifacts."""

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = Path(root)
        # In-memory index cache, validated against the file's mtime_ns so a
        # long sweep does not re-parse a growing index on every put()
        # (which would be O(N^2) over N points) while still seeing writes
        # made by other store instances.
        self._index_cache: Optional[Dict[str, Dict[str, Any]]] = None
        self._index_stamp: Optional[int] = None

    def _index_file_stamp(self) -> Optional[int]:
        try:
            stat = self.index_path.stat()
        except OSError:
            return None
        return stat.st_mtime_ns

    # -- paths ----------------------------------------------------------- #
    @property
    def index_path(self) -> Path:
        return self.root / "index.json"

    def object_path(self, digest: str) -> Path:
        return self.root / "objects" / digest[:2] / f"{digest}.json"

    # -- index ----------------------------------------------------------- #
    def _load_index(self) -> Dict[str, Dict[str, Any]]:
        stamp = self._index_file_stamp()
        if self._index_cache is not None and stamp == self._index_stamp:
            return self._index_cache
        try:
            data = json.loads(self.index_path.read_text())
            if data.get("kind") != _INDEX_KIND:
                raise ValueError(f"not a store index: {self.index_path}")
            entries = dict(data.get("entries") or {})
            self._index_cache, self._index_stamp = entries, stamp
            return entries
        except FileNotFoundError:
            pass
        except (json.JSONDecodeError, ValueError, KeyError):
            pass  # unreadable index: rebuild from the object files below
        entries = self._rebuild_index()
        if entries or self.root.exists():
            self._save_index(entries)
        else:
            self._index_cache, self._index_stamp = entries, self._index_file_stamp()
        return entries

    def _rebuild_index(self) -> Dict[str, Dict[str, Any]]:
        """Reconstruct index metadata by scanning ``objects/``."""
        entries: Dict[str, Dict[str, Any]] = {}
        objects = self.root / "objects"
        if not objects.is_dir():
            return entries
        for path in sorted(objects.glob("*/*.json")):
            digest = path.stem
            try:
                artifact = ExperimentArtifact.from_json(path)
            except (ValueError, KeyError, json.JSONDecodeError, OSError):
                continue  # corrupt object: skip, never serve
            entries[digest] = StoreEntry(
                digest=digest,
                spec_name=artifact.spec_name,
                params=dict(artifact.params),
                execution_key=artifact.execution.cache_key_dict(),
                created_at=path.stat().st_mtime,
                wall_time_s=artifact.wall_time_s,
            ).to_json_dict()
        return entries

    def _save_index(self, entries: Dict[str, Dict[str, Any]]) -> None:
        payload = json.dumps(
            json_ready({"kind": _INDEX_KIND, "version": 1, "entries": entries}),
            indent=2,
            sort_keys=True,
        )
        _atomic_write(self.index_path, payload)
        self._index_cache, self._index_stamp = entries, self._index_file_stamp()

    # -- core operations -------------------------------------------------- #
    def contains(self, digest: str) -> bool:
        """Whether an object for ``digest`` exists on disk."""
        return self.object_path(digest).is_file()

    def get(self, digest: str) -> Optional[ExperimentArtifact]:
        """Load the artifact stored under ``digest``; ``None`` on a miss.

        An unreadable object file counts as a miss (the caller recomputes
        and overwrites it) rather than an error — a half-corrupted cache
        must never block an experiment.
        """
        path = self.object_path(digest)
        if not path.is_file():
            return None
        try:
            return ExperimentArtifact.from_json(path)
        except (ValueError, KeyError, json.JSONDecodeError):
            return None

    def put(
        self, artifact: ExperimentArtifact, digest: Optional[str] = None
    ) -> StoreEntry:
        """Store an artifact under its content key (computed if not given).

        The artifact JSON round-trips with full provenance — loading the
        entry back yields an ``ExperimentArtifact`` whose ``to_json_dict()``
        equals the original's exactly.
        """
        if digest is None:
            digest = artifact_key(artifact.spec_name, artifact.params, artifact.execution)
        _atomic_write(self.object_path(digest), artifact.to_json())
        entry = StoreEntry(
            digest=digest,
            spec_name=artifact.spec_name,
            params=json_ready(dict(artifact.params)),
            execution_key=artifact.execution.cache_key_dict(),
            created_at=time.time(),
            wall_time_s=artifact.wall_time_s,
        )
        entries = self._load_index()
        entries[digest] = entry.to_json_dict()
        self._save_index(entries)
        return entry

    def entries(self) -> List[StoreEntry]:
        """Every index entry, ordered by creation time then digest."""
        entries = [
            StoreEntry.from_json_dict(digest, data)
            for digest, data in self._load_index().items()
        ]
        return sorted(entries, key=lambda e: (e.created_at, e.digest))

    def query(self, spec: Optional[str] = None, **params: Any) -> List[StoreEntry]:
        """Index entries matching a spec name and/or exact parameter values.

        ``store.query("fig5.inference", approach="nn")`` returns every cached
        fig5 NN artifact regardless of seed or repetition count.
        """
        matched = []
        wanted = json_ready(params)
        for entry in self.entries():
            if spec is not None and entry.spec_name != spec:
                continue
            if all(entry.params.get(key) == value for key, value in wanted.items()):
                matched.append(entry)
        return matched

    def evict(self, digest: Optional[str] = None, *, spec: Optional[str] = None) -> int:
        """Remove entries: one digest, every entry of a spec, or everything.

        Returns the number of objects removed.  With neither ``digest`` nor
        ``spec`` the whole store is cleared.
        """
        entries = self._load_index()
        if digest is not None:
            doomed = [digest] if digest in entries or self.contains(digest) else []
        elif spec is not None:
            doomed = [d for d, data in entries.items() if data.get("spec") == spec]
        else:
            doomed = list(entries)
        removed = 0
        for d in doomed:
            entries.pop(d, None)
            path = self.object_path(d)
            if path.is_file():
                path.unlink()
                removed += 1
        self._save_index(entries)
        return removed

    def __len__(self) -> int:
        return len(self._load_index())

    def __repr__(self) -> str:
        return f"ArtifactStore({str(self.root)!r})"
