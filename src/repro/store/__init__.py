"""Content-addressed artifact store (the sweep orchestrator's memory).

``repro.store`` persists :class:`~repro.api.artifact.ExperimentArtifact`
objects under content keys derived from (spec name, resolved params,
execution identity, code fingerprint), so any experiment the repo has
already run — by any engine, in any order — can be served from disk instead
of recomputed.  See :mod:`repro.store.artifact_store` for the key and
layout details and :mod:`repro.store.fingerprint` for the code-change
invalidation scheme.
"""

from repro.store.artifact_store import (
    CACHE_POLICIES,
    STORE_ENV_VAR,
    ArtifactStore,
    StoreEntry,
    artifact_key,
    atomic_write_text,
    default_store_root,
    resolve_store,
    validate_cache_policy,
)
from repro.store.fingerprint import clear_fingerprint_cache, code_fingerprint

__all__ = [
    "CACHE_POLICIES",
    "STORE_ENV_VAR",
    "ArtifactStore",
    "StoreEntry",
    "artifact_key",
    "atomic_write_text",
    "code_fingerprint",
    "clear_fingerprint_cache",
    "default_store_root",
    "resolve_store",
    "validate_cache_policy",
]
