"""Code fingerprinting for cache-key invalidation.

A content-addressed artifact cache is only sound if "same key" implies "same
computation".  Experiment results depend on the whole ``repro`` package — a
one-line change to a fault model or an RNG draw order silently changes every
campaign — so the store folds a digest of the package's source tree into
every artifact key.  Edit any ``repro/*.py`` file and previously cached
artifacts simply stop matching; no manual cache flushing, no stale results.

The fingerprint is a SHA-256 over the sorted relative paths and byte
contents of every ``*.py`` file under the installed ``repro`` package
(``__pycache__`` excluded).  It is computed once per process and cached —
the tree is ~90 small files, so the first call costs a few milliseconds.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Optional

__all__ = ["code_fingerprint", "clear_fingerprint_cache"]

_CACHED: Optional[str] = None


def _package_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


def code_fingerprint() -> str:
    """SHA-256 hex digest of the ``repro`` package's Python source tree."""
    global _CACHED
    if _CACHED is None:
        root = _package_root()
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CACHED = digest.hexdigest()
    return _CACHED


def clear_fingerprint_cache() -> None:
    """Drop the per-process fingerprint cache (tests that edit sources)."""
    global _CACHED
    _CACHED = None
