"""The telemetry event bus: subscribe / emit, with a zero-overhead null state.

One process-global :class:`EventBus` (:func:`default_bus`) carries every
telemetry event.  The design constraint is the *detached* case: campaigns
run millions of trials, so when nothing is subscribed the instrumentation
in the hot paths must cost essentially nothing.  Two properties deliver
that:

* ``bus.active`` is a single attribute read plus a truthiness check (the
  subscriber list is an immutable tuple).  Instrumented sites guard every
  event construction behind it, so a detached bus never even allocates an
  event — the per-trial cost is one boolean check, guarded by
  ``benchmarks/bench_telemetry_overhead.py``.
* ``emit`` iterates a tuple snapshot without locking; subscription changes
  copy-on-write the tuple under a lock.  Subscribers may therefore be
  called from any thread that emits (e.g. the distributed lease heartbeat
  thread) and must be thread-safe themselves — the bundled
  :class:`~repro.telemetry.sink.TraceSink` and
  :class:`~repro.telemetry.metrics.Metrics` are.

Worker processes must not inherit a parent's subscribers (a forked
:class:`~repro.telemetry.sink.TraceSink` would interleave writes into the
parent's file), so every pool/worker entry point calls
:func:`reset_default_bus` first; the distributed sweep runner then attaches
per-worker sinks whose files the coordinator merges.

The *campaign context* is a ``contextvars.ContextVar`` carrying the name of
the campaign currently executing, so the engines — which only see anonymous
``(index, seed)`` tasks — can stamp trial events with the campaign they
belong to.
"""

from __future__ import annotations

import contextlib
import threading
from contextvars import ContextVar
from typing import Callable, Iterator, Tuple

from repro.telemetry.events import TelemetryEvent

__all__ = [
    "EventBus",
    "default_bus",
    "set_default_bus",
    "reset_default_bus",
    "current_campaign",
    "campaign_scope",
]

#: A subscriber: any callable taking one event.  Exceptions propagate to the
#: emitter on purpose — a silently broken sink would mean silently lost
#: traces.
Subscriber = Callable[[TelemetryEvent], None]


class EventBus:
    """Thread-safe publish/subscribe fan-out for telemetry events."""

    __slots__ = ("_subscribers", "_lock")

    def __init__(self) -> None:
        self._subscribers: Tuple[Subscriber, ...] = ()
        self._lock = threading.Lock()

    @property
    def active(self) -> bool:
        """Whether any subscriber is attached (the hot-path guard)."""
        return bool(self._subscribers)

    def subscribe(self, handler: Subscriber) -> Subscriber:
        """Attach a subscriber; returns it (so it can be unsubscribed later)."""
        if not callable(handler):
            raise TypeError(f"subscriber must be callable, got {handler!r}")
        with self._lock:
            if handler not in self._subscribers:
                self._subscribers = self._subscribers + (handler,)
        return handler

    def unsubscribe(self, handler: Subscriber) -> None:
        """Detach a subscriber; detaching one not attached is a no-op."""
        with self._lock:
            self._subscribers = tuple(
                fn for fn in self._subscribers if fn is not handler
            )

    @contextlib.contextmanager
    def subscribed(self, handler: Subscriber) -> Iterator[Subscriber]:
        """Context manager: subscribe on entry, unsubscribe on exit."""
        self.subscribe(handler)
        try:
            yield handler
        finally:
            self.unsubscribe(handler)

    def emit(self, event: TelemetryEvent) -> None:
        """Deliver one event to every subscriber, in subscription order."""
        for handler in self._subscribers:
            handler(event)

    def __repr__(self) -> str:
        return f"EventBus({len(self._subscribers)} subscriber(s))"


_DEFAULT_BUS = EventBus()


def default_bus() -> EventBus:
    """The process-global bus every instrumented subsystem emits into."""
    return _DEFAULT_BUS


def set_default_bus(bus: EventBus) -> EventBus:
    """Replace the process-global bus; returns the previous one."""
    global _DEFAULT_BUS
    if not isinstance(bus, EventBus):
        raise TypeError(f"expected an EventBus, got {type(bus).__name__}")
    previous = _DEFAULT_BUS
    _DEFAULT_BUS = bus
    return previous


def reset_default_bus() -> EventBus:
    """Install a fresh, subscriber-free default bus (returns the new one).

    Called at every worker-process entry point so forked children never
    deliver events into subscribers (sinks, progress lines) the *parent*
    attached; the child decides its own observability.
    """
    global _DEFAULT_BUS
    _DEFAULT_BUS = EventBus()
    return _DEFAULT_BUS


#: Name of the campaign currently executing in this context ("" outside one).
_CAMPAIGN: ContextVar[str] = ContextVar("repro_telemetry_campaign", default="")


def current_campaign() -> str:
    """The campaign name trial events should carry ("" when none is active)."""
    return _CAMPAIGN.get()


@contextlib.contextmanager
def campaign_scope(name: str) -> Iterator[None]:
    """Mark ``name`` as the executing campaign for the duration of the body."""
    token = _CAMPAIGN.set(name)
    try:
        yield
    finally:
        _CAMPAIGN.reset(token)
