"""Telemetry: typed events, the process-global bus, trace sinks, metrics.

The observability layer for every engine in the platform.  Instrumented
subsystems (runners, sweeps, the artifact store, the distributed queue)
emit frozen-dataclass events into a process-global :class:`EventBus`;
subscribers turn the stream into JSONL traces (:class:`TraceSink`),
aggregate statistics (:class:`Metrics` / :class:`TelemetryReport`) or a
terminal progress line (:class:`ProgressReporter`).

Design invariants:

* **Zero overhead when detached** — instrumentation guards event
  construction behind ``bus.active``; with no subscribers a campaign pays
  one attribute read per site (guarded by
  ``benchmarks/bench_telemetry_overhead.py``).
* **Observation only** — telemetry draws no RNG and feeds nothing back
  into execution; traced runs are bit-identical to untraced runs.
* **Mergeable traces** — events carry wall-clock timestamps, so the
  per-worker trace files of a distributed sweep merge into one timeline
  (:func:`merge_traces`).
"""

from repro.telemetry.bus import (
    EventBus,
    campaign_scope,
    current_campaign,
    default_bus,
    reset_default_bus,
    set_default_bus,
)
from repro.telemetry.events import (
    EVENT_KINDS,
    CampaignFinished,
    CampaignProgress,
    CampaignStarted,
    HeartbeatMissed,
    LeaseAcquired,
    LeaseStolen,
    StoreEvict,
    StoreHit,
    StoreMiss,
    StorePut,
    SweepFinished,
    SweepPointCacheHit,
    SweepPointFinished,
    SweepPointStarted,
    SweepProgress,
    SweepStarted,
    TelemetryEvent,
    TrialFinished,
    TrialStarted,
    event_from_json_dict,
)
from repro.telemetry.metrics import Counters, Histogram, Metrics, TelemetryReport, Timer
from repro.telemetry.progress import ProgressReporter
from repro.telemetry.sink import (
    TRACE_ENV_VAR,
    TraceSink,
    merge_traces,
    read_trace,
    trace_to,
)

__all__ = [
    # bus
    "EventBus",
    "default_bus",
    "set_default_bus",
    "reset_default_bus",
    "current_campaign",
    "campaign_scope",
    # events
    "TelemetryEvent",
    "EVENT_KINDS",
    "event_from_json_dict",
    "CampaignStarted",
    "CampaignProgress",
    "CampaignFinished",
    "TrialStarted",
    "TrialFinished",
    "SweepStarted",
    "SweepProgress",
    "SweepFinished",
    "SweepPointStarted",
    "SweepPointCacheHit",
    "SweepPointFinished",
    "StoreHit",
    "StoreMiss",
    "StorePut",
    "StoreEvict",
    "LeaseAcquired",
    "LeaseStolen",
    "HeartbeatMissed",
    # sink
    "TRACE_ENV_VAR",
    "TraceSink",
    "trace_to",
    "read_trace",
    "merge_traces",
    # metrics
    "Counters",
    "Timer",
    "Histogram",
    "Metrics",
    "TelemetryReport",
    # progress
    "ProgressReporter",
]
