"""Live progress reporting as an event-bus subscriber.

Replaces the raw ``print(f"  sweep point {done}/{total}")`` the CLI used to
hard-wire into the sweep loop: the loop now only emits events, and *what*
gets shown is a subscription decision made at the CLI edge.  Two modes:

* ``lines`` (default): one line per completed sweep point / campaign
  progress tick — the old behaviour, but driven by events, so it also
  works under distributed sweeps (the coordinator re-emits merged worker
  events).
* ``live`` (``--progress``): a single carriage-return-rewritten status
  line showing trials done, executed-vs-restored split, and the current
  CI half-width under adaptive runs.

Progress goes to *stderr* so result tables on stdout stay pipeable, and
``--quiet`` simply means no reporter is subscribed at all.
"""

from __future__ import annotations

import sys
from typing import IO, Optional

from repro.telemetry.events import (
    CampaignFinished,
    CampaignProgress,
    CampaignStarted,
    SweepFinished,
    SweepPointCacheHit,
    SweepPointFinished,
    SweepProgress,
    TelemetryEvent,
    TrialFinished,
)

__all__ = ["ProgressReporter"]


class ProgressReporter:
    """Event-bus subscriber rendering run progress to a terminal stream."""

    def __init__(self, mode: str = "lines", stream: Optional[IO[str]] = None) -> None:
        if mode not in ("lines", "live"):
            raise ValueError(f"unknown progress mode: {mode!r}")
        self.mode = mode
        self.stream = stream if stream is not None else sys.stderr
        self._live_dirty = False
        # Running state for the live line.
        self._trials_done = 0
        self._trials_restored = 0
        self._trials_total = 0
        self._points_done = 0
        self._points_total = 0
        self._cache_hits = 0
        self._ci_half_width: Optional[float] = None

    # ------------------------------------------------------------------ #
    def __call__(self, event: TelemetryEvent) -> None:
        if self.mode == "live":
            self._observe_live(event)
        else:
            self._observe_lines(event)

    # -- default mode: one line per progress tick ----------------------- #
    def _observe_lines(self, event: TelemetryEvent) -> None:
        if isinstance(event, SweepProgress):
            self._println(f"  sweep point {event.done}/{event.total}")
        elif isinstance(event, CampaignProgress):
            # Campaign ticks are per-trial and can number millions; only
            # sweep-level ticks get a line in this mode.
            pass

    # -- live mode: one rewritten status line ---------------------------- #
    def _observe_live(self, event: TelemetryEvent) -> None:
        changed = False
        if isinstance(event, CampaignStarted):
            self._trials_total += event.repetitions
            self._trials_restored += event.restored
            self._trials_done += event.restored
            changed = True
        elif isinstance(event, CampaignProgress):
            self._trials_done += 1
            changed = True
        elif isinstance(event, TrialFinished):
            changed = False  # CampaignProgress already counts completions
        elif isinstance(event, SweepProgress):
            self._points_done = event.done
            self._points_total = event.total
            changed = True
        elif isinstance(event, SweepPointCacheHit):
            self._cache_hits += 1
            changed = True
        elif isinstance(event, SweepPointFinished):
            if event.ci_half_width is not None:
                self._ci_half_width = event.ci_half_width
            changed = True
        elif isinstance(event, (SweepFinished, CampaignFinished)):
            self._finish_line()
            return
        if changed:
            self._rewrite()

    def _status(self) -> str:
        parts = []
        if self._points_total:
            parts.append(f"points {self._points_done}/{self._points_total}")
            if self._cache_hits:
                parts.append(f"{self._cache_hits} cached")
        if self._trials_total:
            executed = self._trials_done - self._trials_restored
            piece = f"trials {self._trials_done}/{self._trials_total}"
            if self._trials_restored:
                piece += f" ({executed} run, {self._trials_restored} restored)"
            parts.append(piece)
        if self._ci_half_width is not None:
            parts.append(f"ci±{self._ci_half_width:.4f}")
        return "  " + " | ".join(parts) if parts else ""

    def _rewrite(self) -> None:
        status = self._status()
        if not status:
            return
        self.stream.write("\r" + status.ljust(79))
        self.stream.flush()
        self._live_dirty = True

    def _finish_line(self) -> None:
        """Terminate the live line so following output starts on a fresh row."""
        if self._live_dirty:
            self.stream.write("\n")
            self.stream.flush()
            self._live_dirty = False

    def _println(self, text: str) -> None:
        self.stream.write(text + "\n")
        self.stream.flush()

    def close(self) -> None:
        self._finish_line()
