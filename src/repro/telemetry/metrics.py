"""Metrics aggregation: counters, timers, histograms, and trace reports.

Two consumption styles share the same machinery:

* **Live**: subscribe a :class:`Metrics` instance to a bus and it folds
  events into counters/timers/histograms as the run executes; ``api.run``
  does this to stamp a ``telemetry`` summary block onto artifacts.
* **Post-hoc**: :meth:`TelemetryReport.from_trace` replays a JSONL trace
  file (e.g. the merged trace of a distributed sweep) through the same
  ``Metrics`` and renders per-phase timing tables — the ``trace
  summarize`` subcommand.

Everything here observes; nothing feeds back into execution, so the
numbers of a traced run are bit-identical to an untraced one.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.telemetry.events import (
    CampaignFinished,
    CampaignStarted,
    HeartbeatMissed,
    KernelOps,
    LeaseAcquired,
    LeaseStolen,
    StoreEvict,
    StoreHit,
    StoreMiss,
    StorePut,
    SweepFinished,
    SweepPointCacheHit,
    SweepPointFinished,
    SweepStarted,
    TelemetryEvent,
    TrialFinished,
    TrialStarted,
)

__all__ = ["Counters", "Timer", "Histogram", "Metrics", "TelemetryReport"]


class Counters:
    """A plain named-counter bag (monotone non-negative integers)."""

    def __init__(self) -> None:
        self._values: Dict[str, int] = {}

    def increment(self, name: str, amount: int = 1) -> None:
        self._values[name] = self._values.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._values.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(sorted(self._values.items()))

    def __bool__(self) -> bool:
        return bool(self._values)

    def __repr__(self) -> str:
        return f"Counters({self._values!r})"


@dataclass
class Timer:
    """Streaming wall-time statistics for one named phase."""

    count: int = 0
    total_s: float = 0.0
    min_s: float = math.inf
    max_s: float = 0.0

    def record(self, seconds: float) -> None:
        seconds = max(float(seconds), 0.0)
        self.count += 1
        self.total_s += seconds
        self.min_s = min(self.min_s, seconds)
        self.max_s = max(self.max_s, seconds)

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
        }


class Histogram:
    """Log-decade duration histogram (buckets: <1µs, <10µs, ..., >=10s).

    Coarse on purpose: it answers "are trials microseconds or seconds"
    without configuration, which is the question timing tables ask.
    """

    #: Upper edges in seconds; one overflow bucket beyond the last edge.
    EDGES = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)

    def __init__(self) -> None:
        self.buckets = [0] * (len(self.EDGES) + 1)

    def record(self, seconds: float) -> None:
        seconds = max(float(seconds), 0.0)
        for i, edge in enumerate(self.EDGES):
            if seconds < edge:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    @property
    def count(self) -> int:
        return sum(self.buckets)

    def as_dict(self) -> Dict[str, int]:
        labels = [f"<{edge:g}s" for edge in self.EDGES] + [f">={self.EDGES[-1]:g}s"]
        return {label: n for label, n in zip(labels, self.buckets) if n}


class Metrics:
    """Event-bus subscriber folding the stream into aggregate statistics.

    Thread-safe: the bus may deliver from pool callback threads and the
    distributed heartbeat thread concurrently.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters = Counters()
        self.timers: Dict[str, Timer] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.events_seen = 0
        #: Final CI half-widths of adaptive sweep points, by point index.
        self.ci_half_widths: Dict[int, float] = {}
        self.engines_seen: Dict[str, int] = {}
        #: Kernel backends observed via KernelOps, with total dispatch counts.
        self.kernel_backends: Dict[str, int] = {}

    def _timer(self, name: str) -> Timer:
        timer = self.timers.get(name)
        if timer is None:
            timer = self.timers[name] = Timer()
        return timer

    def _histogram(self, name: str) -> Histogram:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        return hist

    def observe(self, event: TelemetryEvent) -> None:
        with self._lock:
            self.events_seen += 1
            self.counters.increment(f"events.{event.kind}")
            if isinstance(event, TrialFinished):
                self.counters.increment("trials.finished")
                self._timer("trial").record(event.wall_time_s)
                self._histogram("trial").record(event.wall_time_s)
                if event.engine:
                    self._timer(f"trial[{event.engine}]").record(event.wall_time_s)
                    self.engines_seen[event.engine] = (
                        self.engines_seen.get(event.engine, 0) + 1
                    )
            elif isinstance(event, TrialStarted):
                self.counters.increment("trials.started")
            elif isinstance(event, CampaignStarted):
                self.counters.increment("campaigns.started")
                self.counters.increment("trials.restored", event.restored)
            elif isinstance(event, CampaignFinished):
                self.counters.increment("campaigns.finished")
                self._timer("campaign").record(event.wall_time_s)
            elif isinstance(event, SweepStarted):
                self.counters.increment("sweeps.started")
            elif isinstance(event, SweepFinished):
                self.counters.increment("sweeps.finished")
                self._timer("sweep").record(event.wall_time_s)
            elif isinstance(event, SweepPointCacheHit):
                self.counters.increment("sweep.points.cache_hits")
            elif isinstance(event, SweepPointFinished):
                self.counters.increment("sweep.points.finished")
                self.counters.increment(
                    "sweep.trials.executed", event.executed_trials
                )
                if not event.cache_hit:
                    self._timer("sweep.point").record(event.wall_time_s)
                if event.ci_half_width is not None:
                    self.ci_half_widths[event.point] = event.ci_half_width
            elif isinstance(event, StoreHit):
                self.counters.increment("store.hits")
            elif isinstance(event, StoreMiss):
                self.counters.increment("store.misses")
            elif isinstance(event, StorePut):
                self.counters.increment("store.puts")
            elif isinstance(event, StoreEvict):
                self.counters.increment("store.evictions")
            elif isinstance(event, LeaseAcquired):
                self.counters.increment("leases.acquired")
            elif isinstance(event, LeaseStolen):
                self.counters.increment("leases.stolen")
            elif isinstance(event, HeartbeatMissed):
                self.counters.increment("leases.heartbeats_missed")
            elif isinstance(event, KernelOps):
                total = 0
                for op, count in event.ops.items():
                    self.counters.increment(f"kernels.{op}", count)
                    total += count
                if event.backend:
                    self.kernel_backends[event.backend] = (
                        self.kernel_backends.get(event.backend, 0) + total
                    )

    # Allow subscribing the instance itself: bus.subscribe(metrics).
    __call__ = observe

    def summary_dict(self) -> Dict[str, Any]:
        """Compact JSON-ready summary (the artifact ``telemetry`` block)."""
        with self._lock:
            summary: Dict[str, Any] = {
                "events": self.events_seen,
                "counters": self.counters.as_dict(),
                "timers": {
                    name: timer.as_dict()
                    for name, timer in sorted(self.timers.items())
                },
            }
            if self.engines_seen:
                summary["engines"] = dict(sorted(self.engines_seen.items()))
            if self.kernel_backends:
                summary["kernel_backends"] = dict(sorted(self.kernel_backends.items()))
            if self.ci_half_widths:
                summary["ci_half_width"] = {
                    "points": len(self.ci_half_widths),
                    "max": max(self.ci_half_widths.values()),
                }
            return summary


@dataclass
class TelemetryReport:
    """A folded trace: aggregate metrics plus per-kind accounting.

    Build one with :meth:`from_trace` (a JSONL file) or
    :meth:`from_events` (an in-memory stream), then :meth:`render` it as
    the per-phase timing tables ``trace summarize`` prints.
    """

    metrics: Metrics = field(default_factory=Metrics)
    source: Optional[str] = None

    @classmethod
    def from_events(
        cls, events: Iterable[TelemetryEvent], source: Optional[str] = None
    ) -> "TelemetryReport":
        report = cls(source=source)
        for event in events:
            report.metrics.observe(event)
        return report

    @classmethod
    def from_trace(cls, path: Union[str, "Any"]) -> "TelemetryReport":
        from repro.telemetry.sink import read_trace

        return cls.from_events(read_trace(path), source=str(path))

    # -- accounting properties (the acceptance-criteria numbers) ---------- #
    @property
    def events_total(self) -> int:
        return self.metrics.events_seen

    @property
    def executed_trials(self) -> int:
        """Trials that actually ran (one TrialFinished each)."""
        return self.metrics.counters.get("trials.finished")

    @property
    def restored_trials(self) -> int:
        return self.metrics.counters.get("trials.restored")

    @property
    def sweep_points(self) -> int:
        return self.metrics.counters.get("sweep.points.finished")

    @property
    def cache_hits(self) -> int:
        return self.metrics.counters.get("sweep.points.cache_hits")

    @property
    def store_hits(self) -> int:
        return self.metrics.counters.get("store.hits")

    @property
    def store_misses(self) -> int:
        return self.metrics.counters.get("store.misses")

    @property
    def trial_pairs_balanced(self) -> bool:
        """Whether every started trial also finished (stream completeness)."""
        started = self.metrics.counters.get("trials.started")
        return started == self.metrics.counters.get("trials.finished")

    def summary_dict(self) -> Dict[str, Any]:
        summary = self.metrics.summary_dict()
        if self.source is not None:
            summary["source"] = self.source
        return summary

    def render(self) -> str:
        """Human-readable report: counts, per-phase timing, histograms."""
        from repro.io.results import ResultTable
        from repro.io.tables import render_table

        sections: List[str] = []
        header = f"Telemetry report"
        if self.source:
            header += f" — {self.source}"
        sections.append(header)
        sections.append(
            f"{self.events_total} event(s): "
            f"{self.executed_trials} trial(s) executed, "
            f"{self.restored_trials} restored"
            + (
                f"; {self.sweep_points} sweep point(s), "
                f"{self.cache_hits} cache hit(s)"
                if self.sweep_points or self.cache_hits
                else ""
            )
        )

        counts = ResultTable(title="event counts")
        for name, value in self.metrics.counters.as_dict().items():
            if name.startswith("events."):
                counts.add(kind=name[len("events."):], count=value)
        if counts.rows:
            sections.append(render_table(counts))

        timing = ResultTable(title="phase timing")
        for name, timer in sorted(self.metrics.timers.items()):
            timing.add(
                phase=name,
                count=timer.count,
                total_s=timer.total_s,
                mean_s=timer.mean_s,
                min_s=timer.min_s if timer.count else 0.0,
                max_s=timer.max_s,
            )
        if timing.rows:
            sections.append(render_table(timing, precision=4))

        for name, hist in sorted(self.metrics.histograms.items()):
            buckets = hist.as_dict()
            if not buckets:
                continue
            hist_table = ResultTable(title=f"{name} duration histogram")
            for label, n in buckets.items():
                hist_table.add(bucket=label, count=n)
            sections.append(render_table(hist_table))

        if self.metrics.ci_half_widths:
            ci = ResultTable(title="adaptive CI half-widths")
            for point, half_width in sorted(self.metrics.ci_half_widths.items()):
                ci.add(point=point, ci_half_width=half_width)
            sections.append(render_table(ci, precision=4))

        counters = {
            name: value
            for name, value in self.metrics.counters.as_dict().items()
            if not name.startswith("events.")
        }
        if counters:
            other = ResultTable(title="counters")
            for name, value in counters.items():
                other.add(counter=name, value=value)
            sections.append(render_table(other))

        return "\n\n".join(sections)
