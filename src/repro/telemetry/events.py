"""The typed telemetry event model.

Every observable moment in a running campaign, sweep or store is a frozen
dataclass with a stable string ``kind`` and a wall-clock timestamp, JSON
round-trippable through :meth:`~TelemetryEvent.to_json_dict` /
:func:`event_from_json_dict` (the schema the ``trace validate`` subcommand
checks against).  The families mirror the subsystems they instrument:

* ``campaign.*`` / ``trial.*`` — the campaign engines
  (:mod:`repro.core.campaign`, :mod:`repro.core.runner`): one
  :class:`CampaignStarted`/:class:`CampaignFinished` bracket per campaign
  and exactly one :class:`TrialStarted`/:class:`TrialFinished` pair per
  *executed* trial (restored-from-checkpoint trials never ran, so they
  never emit).
* ``sweep.*`` — the sweep orchestrators (:mod:`repro.sweep`): per-point
  start / cache-hit / finish, plus sweep-level progress used by the live
  CLI progress line.
* ``store.*`` — the content-addressed artifact store
  (:mod:`repro.store.artifact_store`): hit / miss / put / evict.
* ``lease.*`` — the distributed work queue
  (:mod:`repro.sweep.distributed`): lease acquisition, stale-lease
  stealing and missed heartbeats.

Events are *observations*, never inputs: nothing in the execution path
reads them back, they draw no RNG, and emitting (or not emitting) them can
never change an experiment's numbers.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Type

__all__ = [
    "TelemetryEvent",
    "CampaignStarted",
    "CampaignProgress",
    "CampaignFinished",
    "TrialStarted",
    "TrialFinished",
    "SweepStarted",
    "SweepProgress",
    "SweepFinished",
    "SweepPointStarted",
    "SweepPointCacheHit",
    "SweepPointFinished",
    "StoreHit",
    "StoreMiss",
    "StorePut",
    "StoreEvict",
    "LeaseAcquired",
    "LeaseStolen",
    "HeartbeatMissed",
    "KernelOps",
    "EVENT_KINDS",
    "event_from_json_dict",
]

#: Registry of every event kind string -> event class (the trace schema).
EVENT_KINDS: Dict[str, Type["TelemetryEvent"]] = {}


def _register(cls: Type["TelemetryEvent"]) -> Type["TelemetryEvent"]:
    if not cls.kind:
        raise ValueError(f"{cls.__name__} declares no event kind")
    existing = EVENT_KINDS.get(cls.kind)
    if existing is not None and existing is not cls:
        raise ValueError(f"duplicate event kind {cls.kind!r}")
    EVENT_KINDS[cls.kind] = cls
    return cls


@dataclass(frozen=True)
class TelemetryEvent:
    """Base event: a ``kind`` discriminator plus a wall-clock timestamp.

    ``ts`` is ``time.time()`` at construction — wall clock on purpose, so
    traces from different worker processes merge into one human-meaningful
    timeline (monotonic clocks are not comparable across machines, and the
    per-worker trace files of a distributed sweep are merged by timestamp).
    """

    kind = ""  # overridden per subclass; class attr, not a dataclass field

    def to_json_dict(self) -> Dict[str, Any]:
        # Deferred import: repro.io's package __init__ pulls in the campaign
        # module, which imports telemetry — importing io.sanitize at module
        # scope here would close that cycle.
        from repro.io.sanitize import json_ready

        payload = {"kind": self.kind}
        payload.update(json_ready(dataclasses.asdict(self)))
        return payload


def _ts() -> float:
    return time.time()


# --------------------------------------------------------------------------- #
# Campaign / trial events (core engines)
# --------------------------------------------------------------------------- #
@_register
@dataclass(frozen=True)
class CampaignStarted(TelemetryEvent):
    """A campaign began executing (after checkpoint restoration)."""

    campaign: str = ""
    repetitions: int = 0
    #: Trials restored from a checkpoint (they will emit no trial events).
    restored: int = 0
    engine: str = ""
    ts: float = field(default_factory=_ts)

    kind = "campaign.started"


@_register
@dataclass(frozen=True)
class CampaignProgress(TelemetryEvent):
    """One more campaign trial completed (``done`` counts restored trials)."""

    campaign: str = ""
    done: int = 0
    total: int = 0
    ts: float = field(default_factory=_ts)

    kind = "campaign.progress"


@_register
@dataclass(frozen=True)
class CampaignFinished(TelemetryEvent):
    """A campaign completed; counts split executed vs checkpoint-restored."""

    campaign: str = ""
    repetitions: int = 0
    executed_trials: int = 0
    restored_trials: int = 0
    wall_time_s: float = 0.0
    ts: float = field(default_factory=_ts)

    kind = "campaign.finished"


@_register
@dataclass(frozen=True)
class TrialStarted(TelemetryEvent):
    """One campaign trial is about to execute on ``engine``."""

    campaign: str = ""
    trial: int = 0
    engine: str = ""
    ts: float = field(default_factory=_ts)

    kind = "trial.started"


@_register
@dataclass(frozen=True)
class TrialFinished(TelemetryEvent):
    """One campaign trial finished.

    ``wall_time_s`` is the trial's own wall time on scalar engines; for
    vectorized batches (where B trials share one stacked forward pass) it
    is the batch wall time amortized over the batch, flagged by
    ``batched=True``.
    """

    campaign: str = ""
    trial: int = 0
    engine: str = ""
    wall_time_s: float = 0.0
    batched: bool = False
    success: Optional[bool] = None
    metric: Optional[float] = None
    ts: float = field(default_factory=_ts)

    kind = "trial.finished"


# --------------------------------------------------------------------------- #
# Sweep events (orchestration layers)
# --------------------------------------------------------------------------- #
@_register
@dataclass(frozen=True)
class SweepStarted(TelemetryEvent):
    """A sweep began (``restored`` points were loaded from a checkpoint)."""

    experiment: str = ""
    n_points: int = 0
    restored: int = 0
    sweep_workers: int = 1
    ts: float = field(default_factory=_ts)

    kind = "sweep.started"


@_register
@dataclass(frozen=True)
class SweepProgress(TelemetryEvent):
    """One more sweep point is accounted for (drives the progress line)."""

    experiment: str = ""
    done: int = 0
    total: int = 0
    ts: float = field(default_factory=_ts)

    kind = "sweep.progress"


@_register
@dataclass(frozen=True)
class SweepFinished(TelemetryEvent):
    """A sweep completed, with the orchestration-level totals."""

    experiment: str = ""
    n_points: int = 0
    cache_hits: int = 0
    executed_trials: int = 0
    wall_time_s: float = 0.0
    ts: float = field(default_factory=_ts)

    kind = "sweep.finished"


@_register
@dataclass(frozen=True)
class SweepPointStarted(TelemetryEvent):
    """One sweep point is about to run (or be served from the store)."""

    experiment: str = ""
    point: int = 0
    params: Dict[str, Any] = field(default_factory=dict)
    ts: float = field(default_factory=_ts)

    kind = "sweep.point.started"


@_register
@dataclass(frozen=True)
class SweepPointCacheHit(TelemetryEvent):
    """A sweep point was served from the artifact store (zero trials)."""

    experiment: str = ""
    point: int = 0
    digest: Optional[str] = None
    ts: float = field(default_factory=_ts)

    kind = "sweep.point.cache_hit"


@_register
@dataclass(frozen=True)
class SweepPointFinished(TelemetryEvent):
    """One sweep point completed.

    ``ci_half_width`` is the final Wilson half-width of the point's
    headline success-rate metric under adaptive (``repetitions="auto"``)
    runs, ``None`` otherwise.
    """

    experiment: str = ""
    point: int = 0
    executed_trials: int = 0
    cache_hit: bool = False
    adaptive_rounds: int = 1
    ci_half_width: Optional[float] = None
    wall_time_s: float = 0.0
    ts: float = field(default_factory=_ts)

    kind = "sweep.point.finished"


# --------------------------------------------------------------------------- #
# Artifact-store events
# --------------------------------------------------------------------------- #
@_register
@dataclass(frozen=True)
class StoreHit(TelemetryEvent):
    """``get()`` served an artifact from disk."""

    digest: str = ""
    ts: float = field(default_factory=_ts)

    kind = "store.hit"


@_register
@dataclass(frozen=True)
class StoreMiss(TelemetryEvent):
    """``get()`` found nothing (or an unreadable object) under the key."""

    digest: str = ""
    ts: float = field(default_factory=_ts)

    kind = "store.miss"


@_register
@dataclass(frozen=True)
class StorePut(TelemetryEvent):
    """``put()`` persisted an artifact object + index journal entry."""

    digest: str = ""
    ts: float = field(default_factory=_ts)

    kind = "store.put"


@_register
@dataclass(frozen=True)
class StoreEvict(TelemetryEvent):
    """``evict()`` removed one stored object."""

    digest: str = ""
    ts: float = field(default_factory=_ts)

    kind = "store.evict"


# --------------------------------------------------------------------------- #
# Distributed work-queue events
# --------------------------------------------------------------------------- #
@_register
@dataclass(frozen=True)
class LeaseAcquired(TelemetryEvent):
    """A worker won the exclusive-create race for one point's lease."""

    point: int = 0
    worker: str = ""
    ts: float = field(default_factory=_ts)

    kind = "lease.acquired"


@_register
@dataclass(frozen=True)
class LeaseStolen(TelemetryEvent):
    """An expired lease was broken and re-acquired by another worker."""

    point: int = 0
    worker: str = ""
    previous_worker: str = ""
    ts: float = field(default_factory=_ts)

    kind = "lease.stolen"


@_register
@dataclass(frozen=True)
class HeartbeatMissed(TelemetryEvent):
    """A worker observed another worker's lease past its heartbeat timeout."""

    point: int = 0
    #: The lease holder whose heartbeat went stale (not the observer).
    worker: str = ""
    age_s: float = 0.0
    observed_by: str = ""
    ts: float = field(default_factory=_ts)

    kind = "lease.heartbeat_missed"


# --------------------------------------------------------------------------- #
# Kernel-backend events
# --------------------------------------------------------------------------- #
@_register
@dataclass(frozen=True)
class KernelOps(TelemetryEvent):
    """Per-op kernel dispatch counts accumulated over one ``api.run``.

    ``backend`` is the concrete backend that executed (``"numpy"`` or
    ``"numba"`` — never ``"auto"``) and ``ops`` maps op name (e.g.
    ``"quantize"``, ``"inject_sites"``, ``"matmul_bias_quantize"``) to how
    many times the dispatch layer invoked it.  Emitted once per run, after
    the experiment's campaigns complete; counts cover the emitting process
    only (worker subprocesses dispatch in their own address space).
    """

    backend: str = ""
    ops: Dict[str, int] = field(default_factory=dict)
    ts: float = field(default_factory=_ts)

    kind = "kernel.ops"


def event_from_json_dict(data: Mapping[str, Any]) -> TelemetryEvent:
    """Reconstruct an event from its :meth:`~TelemetryEvent.to_json_dict` form.

    Unknown fields are ignored (forward compatibility: a newer writer may
    add fields an older reader does not know); an unknown ``kind`` raises
    ``ValueError`` — that is the schema check ``trace validate`` relies on.
    """
    kind = data.get("kind")
    cls = EVENT_KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown telemetry event kind: {kind!r}")
    names = {f.name for f in dataclasses.fields(cls)}
    return cls(**{key: value for key, value in data.items() if key in names})
