"""JSONL trace sinks: durable, mergeable event streams.

A :class:`TraceSink` is an event-bus subscriber that appends one JSON line
per event to a file.  Writes are serialized under a lock (the bus may
deliver from any emitting thread) and flushed per line, so a crashed run
leaves at most one truncated trailing line — which :func:`read_trace`
skips, mirroring how the campaign/sweep checkpoints tolerate torn tails.

Distributed sweeps give each worker process its *own* trace file (one
writer per file; concurrent appends to a shared file would interleave),
and the coordinator folds them back together with :func:`merge_traces`,
ordering events by their wall-clock timestamp so the merged trace reads as
one timeline.

:func:`trace_to` is the one-liner the CLI uses::

    with trace_to("run.jsonl"):
        api.run("fig5.inference", fast=True)
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Union

from repro.telemetry.bus import EventBus, default_bus
from repro.telemetry.events import TelemetryEvent, event_from_json_dict

__all__ = [
    "TRACE_ENV_VAR",
    "TraceSink",
    "trace_to",
    "read_trace",
    "iter_trace_lines",
    "merge_traces",
]

#: Environment variable naming a default trace file for every CLI subcommand.
TRACE_ENV_VAR = "REPRO_TRACE"


class TraceSink:
    """Event-bus subscriber appending every event to a JSONL file.

    Parameters
    ----------
    path:
        Trace file; parent directories are created, an existing file is
        truncated (a trace describes one run, not an append-forever log).
    """

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._handle = open(self.path, "w")
        self._events_written = 0

    @property
    def events_written(self) -> int:
        return self._events_written

    def __call__(self, event: TelemetryEvent) -> None:
        line = json.dumps(event.to_json_dict(), separators=(",", ":"))
        with self._lock:
            if self._handle.closed:
                return  # late event after close (e.g. a straggler thread)
            self._handle.write(line + "\n")
            self._handle.flush()
            self._events_written += 1

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"TraceSink({str(self.path)!r}, {self._events_written} event(s))"


@contextlib.contextmanager
def trace_to(
    path: Union[str, os.PathLike], bus: Optional[EventBus] = None
) -> Iterator[TraceSink]:
    """Write every event emitted in the body to a JSONL trace file.

    Subscribes a fresh :class:`TraceSink` to ``bus`` (default: the
    process-global bus) on entry and detaches + closes it on exit.
    """
    bus = bus if bus is not None else default_bus()
    sink = TraceSink(path)
    bus.subscribe(sink)
    try:
        yield sink
    finally:
        bus.unsubscribe(sink)
        sink.close()


def iter_trace_lines(path: Union[str, os.PathLike]) -> Iterator[str]:
    """The non-empty lines of a trace file, in file order."""
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield line


def read_trace(
    path: Union[str, os.PathLike], strict: bool = False
) -> List[TelemetryEvent]:
    """Parse a JSONL trace file back into typed events.

    By default a malformed line (a writer killed mid-append) or an unknown
    event kind is skipped, so a partially written trace from a crashed
    worker still folds into a report.  ``strict=True`` raises instead —
    that is the ``trace validate`` mode.
    """
    events: List[TelemetryEvent] = []
    for number, line in enumerate(iter_trace_lines(path), start=1):
        try:
            events.append(event_from_json_dict(json.loads(line)))
        except (json.JSONDecodeError, ValueError, TypeError) as exc:
            if strict:
                raise ValueError(f"{path}:{number}: invalid trace line: {exc}") from exc
            continue
    return events


def merge_traces(
    paths: Sequence[Union[str, os.PathLike]],
    out: Union[str, os.PathLike, None] = None,
) -> List[TelemetryEvent]:
    """Merge per-worker trace files into one event-timestamp-ordered stream.

    Events are sorted by wall-clock ``ts`` (the sort is stable, so ties
    keep their within-file order); missing files are tolerated — a worker
    that never claimed a point may never have opened its trace.  With
    ``out`` the merged stream is also written as a JSONL trace file.
    """
    events: List[TelemetryEvent] = []
    for path in paths:
        try:
            events.extend(read_trace(path))
        except OSError:
            continue
    events.sort(key=lambda event: event.ts)
    if out is not None:
        out = Path(out)
        out.parent.mkdir(parents=True, exist_ok=True)
        with open(out, "w") as handle:
            for event in events:
                handle.write(json.dumps(event.to_json_dict(), separators=(",", ":")) + "\n")
    return events
