"""repro.api — the declarative experiment API (the public entry point).

Experiments are *data*: each paper figure registers one or more
:class:`~repro.experiments.registry.ExperimentSpec` objects describing its
typed sweep parameters, and :func:`run` executes any spec by name under a
single :class:`ExecutionConfig` that bundles every engine / checkpoint /
seed / scale knob::

    from repro import api

    artifact = api.run(
        "fig5.inference",
        params={"approach": "nn"},
        execution=api.ExecutionConfig(seed=1, batch_size=8, workers=4),
    )
    artifact.result      # the ResultTable, bit-identical to a serial run
    artifact.engine      # "batched(8) x 4 workers"
    artifact.to_json("fig5.json")

The same registry drives the CLI (``python -m repro <figure>`` and
``python -m repro list``), so anything expressible as a flag is expressible
programmatically and vice versa.  The per-driver ``run_*`` functions remain
as deprecated shims delegating to the same machinery.
"""

from __future__ import annotations

import contextlib
import dataclasses
import time
from typing import Any, Iterator, List, Mapping, Optional

from repro.api.artifact import ExperimentArtifact
from repro.api.execution import ExecutionConfig, resolve_execution

__all__ = [
    "ExecutionConfig",
    "ExperimentArtifact",
    "resolve_execution",
    "run",
    "sweep",
    "get_spec",
    "list_experiments",
]


@contextlib.contextmanager
def _telemetry_collector() -> Iterator[Optional[Any]]:
    """Yield a subscribed :class:`~repro.telemetry.Metrics`, or ``None``.

    When the process-global event bus has subscribers (a trace sink, a
    progress reporter, …) this attaches a metrics aggregator for the
    duration of the ``with`` block so the resulting artifact can carry a
    ``telemetry`` summary.  On the untraced fast path it yields ``None``
    without importing anything beyond the bus module.
    """
    from repro.telemetry.bus import default_bus

    bus = default_bus()
    if not bus.active:
        yield None
        return
    from repro.telemetry.metrics import Metrics

    collector = Metrics()
    bus.subscribe(collector)
    try:
        yield collector
    finally:
        bus.unsubscribe(collector)


@contextlib.contextmanager
def _kernel_scope(backend: Optional[str]) -> Iterator[None]:
    """Activate the requested kernel backend; emit ``kernel.ops`` if traced.

    Pins the :mod:`repro.kernels` dispatch layer to ``backend`` for the
    duration of the block (restoring the previous backend afterwards), and —
    when the telemetry bus has subscribers — emits one
    :class:`~repro.telemetry.events.KernelOps` event carrying this block's
    per-op dispatch deltas.  Counters only ever grow, so the delta against a
    snapshot isolates this run even when runs nest or interleave.
    """
    from repro import kernels

    with kernels.use_backend(backend):
        from repro.telemetry.bus import default_bus

        bus = default_bus()
        if not bus.active:
            yield
            return
        before = kernels.counters_snapshot()
        try:
            yield
        finally:
            from repro.telemetry.events import KernelOps

            after = kernels.counters_snapshot()
            deltas = {
                op: after[op] - before.get(op, 0)
                for op in after
                if after[op] > before.get(op, 0)
            }
            bus.emit(
                KernelOps(backend=kernels.active_backend_name(), ops=deltas)
            )


def get_spec(name: str):
    """Look up a registered :class:`~repro.experiments.registry.ExperimentSpec`."""
    from repro.experiments.registry import get_spec as _get_spec

    return _get_spec(name)


def list_experiments() -> List[Any]:
    """Every registered spec, ordered by figure (``fig2`` … ``summary``)."""
    from repro.experiments.registry import list_specs

    return list_specs()


def run(
    spec_or_name,
    params: Optional[Mapping[str, Any]] = None,
    *,
    execution: Optional[ExecutionConfig] = None,
    cache: str = "off",
    store: Any = None,
    **param_overrides: Any,
) -> ExperimentArtifact:
    """Run one registered experiment and return a provenance-carrying artifact.

    Parameters
    ----------
    spec_or_name:
        An :class:`~repro.experiments.registry.ExperimentSpec` or its
        registered name (e.g. ``"fig5.inference"``).
    params:
        Experiment parameter overrides, validated against the spec's typed
        parameter schema (unknown names raise ``TypeError``).  Scalar
        overrides may also be passed as keyword arguments.
    execution:
        The :class:`ExecutionConfig`; defaults to environment-driven serial
        execution.  Engine choice never changes the numbers — campaigns are
        bit-identical across serial / parallel / batched execution for the
        same seed.
    cache:
        Artifact-store policy.  ``"off"`` (default) never touches the store;
        ``"reuse"`` returns the stored artifact when this exact invocation
        (spec, params, seed/repetitions/scale, code fingerprint) has run
        before, executing nothing; ``"refresh"`` always executes and
        overwrites the stored entry.
    store:
        The :class:`~repro.store.ArtifactStore` (or its root path) used when
        ``cache`` is not ``"off"``; ``None`` selects the default store
        (``REPRO_STORE_DIR`` or ``.repro-store``).
    """
    from repro.experiments.registry import ExperimentSpec, get_spec as _get_spec

    if isinstance(spec_or_name, ExperimentSpec):
        spec = spec_or_name
    else:
        spec = _get_spec(str(spec_or_name))
    merged = dict(params or {})
    for name, value in param_overrides.items():
        if name in merged:
            raise TypeError(f"parameter {name!r} given both in params= and as a keyword")
        merged[name] = value
    resolved_params = spec.resolve_params(merged)
    execution = (execution or ExecutionConfig()).resolved()

    with _telemetry_collector() as collector:
        digest = None
        if cache != "off" or store is not None:
            from repro.store import artifact_key, resolve_store, validate_cache_policy

            validate_cache_policy(cache)
            if cache == "off":
                raise TypeError(
                    "store= was given but cache='off'; pass cache='reuse' or 'refresh'"
                )
            store = resolve_store(store)
            digest = artifact_key(spec.name, resolved_params, execution)
            if cache == "reuse":
                hit = store.get(digest)
                if hit is not None:
                    if collector is not None:
                        hit = dataclasses.replace(
                            hit, telemetry=collector.summary_dict()
                        )
                    return hit

        start = time.perf_counter()
        with _kernel_scope(execution.kernel_backend):
            result = spec.run_fn(execution, **resolved_params)
        wall_time = time.perf_counter() - start
        artifact = ExperimentArtifact(
            spec_name=spec.name,
            params=resolved_params,
            execution=execution,
            wall_time_s=wall_time,
            result=result,
        )
        # The store always receives the telemetry-free form so stored bytes
        # (and hence digest-addressed content) are identical with tracing on
        # or off; the summary rides only on the object handed back.
        if digest is not None:
            store.put(artifact, digest=digest)
        if collector is not None:
            artifact = dataclasses.replace(
                artifact, telemetry=collector.summary_dict()
            )
        return artifact


def sweep(
    experiment,
    axes: Optional[Mapping[str, Any]] = None,
    *,
    mode: str = "grid",
    samples: Optional[int] = None,
    sample_seed: int = 0,
    params: Optional[Mapping[str, Any]] = None,
    execution: Optional[ExecutionConfig] = None,
    repetitions: Any = None,
    target_ci: float = 0.05,
    initial_repetitions: int = 4,
    growth: float = 2.0,
    max_repetitions: Optional[int] = None,
    cache: str = "reuse",
    store: Any = None,
    checkpoint: Any = None,
    resume: bool = False,
    progress: Any = None,
    sweep_workers: Any = None,
):
    """Run a parameter sweep over one registered experiment.

    A sweep executes one :func:`run` per *point* — a fully resolved
    parameter assignment — through the existing campaign engines, with
    content-addressed caching (points the repo has already computed are
    served from the artifact store and execute zero trials), JSONL
    checkpoint/resume, and identity-derived per-point seeds that make the
    sweep bit-identical to independent :func:`run` calls in any order::

        artifact = api.sweep(
            "fig5.inference",
            {"episodes_per_trial": [1, 2, 5]},
            params={"fast": True},
            execution=api.ExecutionConfig(seed=7, batch_size=8),
        )
        artifact.table()            # every point's rows, flattened
        artifact.cache_hits         # how many points came from the store

    Parameters
    ----------
    experiment:
        A registered spec name (e.g. ``"fig5.inference"``), an
        ``ExperimentSpec``, or a pre-built
        :class:`~repro.sweep.SweepSpec` (in which case ``axes`` / ``mode`` /
        ``samples`` / ``params`` must be left unset).
    axes:
        Mapping of parameter name to the values it sweeps over.
    mode:
        ``"grid"`` (Cartesian product, default), ``"zip"`` (lockstep) or
        ``"random"`` (uniform draws; requires ``samples``).
    params:
        Base parameters pinned for every point (e.g. ``{"fast": True}``).
    execution:
        Shared :class:`ExecutionConfig`; its seed is the sweep seed from
        which every point's campaign seed is derived, and its engine knobs
        apply to every point.
    repetitions:
        ``None`` (use ``execution`` / config presets), a positive int
        (pinned for every point), or ``"auto"`` — adaptive mode, growing
        each point's campaign in rounds until the Wilson CI half-width of
        its headline success-rate metric is at most ``target_ci``.
    target_ci, initial_repetitions, growth, max_repetitions:
        Adaptive-mode knobs (see :class:`~repro.sweep.AdaptiveConfig`);
        ignored unless ``repetitions="auto"``.
    cache:
        Artifact-store policy per point: ``"reuse"`` (default), ``"refresh"``
        or ``"off"``.
    store:
        The :class:`~repro.store.ArtifactStore` or its root path (``None`` =
        the default store).
    checkpoint:
        Path of a JSONL sweep checkpoint recording completed points;
        ``resume=True`` skips points already recorded there.
    progress:
        Callback ``(points completed, total points)``.
    sweep_workers:
        Point-level parallelism: shard the sweep's points across this many
        worker processes pulling from a shared work-stealing queue
        (:class:`~repro.sweep.DistributedSweepRunner`), with bit-identical
        results.  ``None`` reads ``REPRO_SWEEP_WORKERS`` (default 1 =
        serial in-process); ``"auto"`` = one worker per CPU.
    """
    from repro.experiments.registry import ExperimentSpec
    from repro.sweep import (
        AdaptiveConfig,
        DistributedSweepRunner,
        SweepRunner,
        SweepSpec,
        default_sweep_workers,
    )
    from repro.core.runner import parse_worker_count

    if isinstance(experiment, SweepSpec):
        if axes is not None or params is not None or samples is not None:
            raise TypeError(
                "pass either a SweepSpec or axes/params/samples, not both"
            )
        sweep_spec = experiment
    else:
        if isinstance(experiment, ExperimentSpec):
            experiment = experiment.name
        if not axes:
            raise TypeError("sweep needs axes ({param: values}) or a SweepSpec")
        axis_items = tuple((name, tuple(values)) for name, values in axes.items())
        sweep_spec = SweepSpec(
            experiment=str(experiment),
            axes=axis_items,
            mode=mode,
            base_params=tuple((params or {}).items()),
            samples=samples,
            sample_seed=sample_seed,
        )

    adaptive = None
    if repetitions == "auto":
        adaptive = AdaptiveConfig(
            target_ci=target_ci,
            initial_repetitions=initial_repetitions,
            growth=growth,
            max_repetitions=max_repetitions,
        )
    elif repetitions is not None:
        execution = (execution or ExecutionConfig()).replace(repetitions=repetitions)

    if sweep_workers is None:
        n_sweep_workers = default_sweep_workers()
    else:
        n_sweep_workers = parse_worker_count(sweep_workers, "sweep_workers")
    if n_sweep_workers > 1:
        runner: Any = DistributedSweepRunner(
            sweep_workers=n_sweep_workers, cache=cache, store=store,
            progress=progress,
        )
    else:
        runner = SweepRunner(cache=cache, store=store, progress=progress)
    from repro import kernels

    # Backend activation only — each point's api.run owns its own
    # _kernel_scope and emits per-point KernelOps deltas; emitting a
    # sweep-level cumulative event too would double-count in Metrics.
    backend = execution.kernel_backend if execution is not None else None
    with _telemetry_collector() as collector, kernels.use_backend(backend):
        artifact = runner.run(
            sweep_spec, execution, adaptive=adaptive, checkpoint=checkpoint, resume=resume
        )
        if collector is not None:
            artifact.telemetry = collector.summary_dict()
        return artifact
