"""repro.api — the declarative experiment API (the public entry point).

Experiments are *data*: each paper figure registers one or more
:class:`~repro.experiments.registry.ExperimentSpec` objects describing its
typed sweep parameters, and :func:`run` executes any spec by name under a
single :class:`ExecutionConfig` that bundles every engine / checkpoint /
seed / scale knob::

    from repro import api

    artifact = api.run(
        "fig5.inference",
        params={"approach": "nn"},
        execution=api.ExecutionConfig(seed=1, batch_size=8, workers=4),
    )
    artifact.result      # the ResultTable, bit-identical to a serial run
    artifact.engine      # "batched(8) x 4 workers"
    artifact.to_json("fig5.json")

The same registry drives the CLI (``python -m repro <figure>`` and
``python -m repro list``), so anything expressible as a flag is expressible
programmatically and vice versa.  The per-driver ``run_*`` functions remain
as deprecated shims delegating to the same machinery.
"""

from __future__ import annotations

import time
from typing import Any, List, Mapping, Optional

from repro.api.artifact import ExperimentArtifact
from repro.api.execution import ExecutionConfig, resolve_execution

__all__ = [
    "ExecutionConfig",
    "ExperimentArtifact",
    "resolve_execution",
    "run",
    "get_spec",
    "list_experiments",
]


def get_spec(name: str):
    """Look up a registered :class:`~repro.experiments.registry.ExperimentSpec`."""
    from repro.experiments.registry import get_spec as _get_spec

    return _get_spec(name)


def list_experiments() -> List[Any]:
    """Every registered spec, ordered by figure (``fig2`` … ``summary``)."""
    from repro.experiments.registry import list_specs

    return list_specs()


def run(
    spec_or_name,
    params: Optional[Mapping[str, Any]] = None,
    *,
    execution: Optional[ExecutionConfig] = None,
    **param_overrides: Any,
) -> ExperimentArtifact:
    """Run one registered experiment and return a provenance-carrying artifact.

    Parameters
    ----------
    spec_or_name:
        An :class:`~repro.experiments.registry.ExperimentSpec` or its
        registered name (e.g. ``"fig5.inference"``).
    params:
        Experiment parameter overrides, validated against the spec's typed
        parameter schema (unknown names raise ``TypeError``).  Scalar
        overrides may also be passed as keyword arguments.
    execution:
        The :class:`ExecutionConfig`; defaults to environment-driven serial
        execution.  Engine choice never changes the numbers — campaigns are
        bit-identical across serial / parallel / batched execution for the
        same seed.
    """
    from repro.experiments.registry import ExperimentSpec, get_spec as _get_spec

    if isinstance(spec_or_name, ExperimentSpec):
        spec = spec_or_name
    else:
        spec = _get_spec(str(spec_or_name))
    merged = dict(params or {})
    for name, value in param_overrides.items():
        if name in merged:
            raise TypeError(f"parameter {name!r} given both in params= and as a keyword")
        merged[name] = value
    resolved_params = spec.resolve_params(merged)
    execution = (execution or ExecutionConfig()).resolved()

    start = time.perf_counter()
    result = spec.run_fn(execution, **resolved_params)
    wall_time = time.perf_counter() - start
    return ExperimentArtifact(
        spec_name=spec.name,
        params=resolved_params,
        execution=execution,
        wall_time_s=wall_time,
        result=result,
    )
