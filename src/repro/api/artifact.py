"""Structured result of one declarative experiment run.

:func:`repro.api.run` wraps the result table of every experiment in an
:class:`ExperimentArtifact` carrying provenance — which spec ran, the
resolved parameters, the resolved :class:`~repro.api.execution.ExecutionConfig`,
the engine it selected, the seed and the wall time.  Campaign repetition
counts are recorded in the result rows themselves (every driver emits a
``repetitions`` column): when ``execution.repetitions`` is ``None`` the
count comes from the experiment config's preset, which honours
``REPRO_CAMPAIGN_REPS``, so reproducing an artifact exactly means replaying
its execution config with the per-row repetition count (or the same
environment).  Artifacts serialize through :mod:`repro.io` and round-trip
via :meth:`to_json` / :meth:`from_json`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.api.execution import ExecutionConfig
from repro.io.results import RESULT_KINDS, ResultTable, SeriesResult, result_kind
from repro.io.sanitize import json_ready

__all__ = ["ExperimentArtifact"]

_ARTIFACT_KIND = "repro-experiment-artifact"


@dataclass(frozen=True)
class ExperimentArtifact:
    """One experiment result plus the provenance needed to reproduce it."""

    spec_name: str
    params: Dict[str, Any]
    execution: ExecutionConfig
    wall_time_s: float
    result: Union[ResultTable, SeriesResult]
    #: Telemetry summary of the run that produced this artifact (counters
    #: and phase timers from :class:`repro.telemetry.Metrics`); ``None``
    #: when the run was untraced, and omitted from the JSON form so traced
    #: and untraced artifacts serialize identically apart from this block.
    telemetry: Optional[Dict[str, Any]] = None

    @property
    def title(self) -> str:
        return self.result.title

    @property
    def seed(self) -> int:
        """The experiment seed (derived from the execution config)."""
        return self.execution.seed

    @property
    def engine(self) -> str:
        """Human-readable engine summary (derived from the execution config)."""
        return self.execution.engine_description()

    def as_table(self) -> ResultTable:
        """The result as a row table (series results are flattened)."""
        if isinstance(self.result, SeriesResult):
            return self.result.as_table()
        return self.result

    def to_json_dict(self) -> Dict[str, Any]:
        # "engine" and "seed" are serialization-only conveniences derived
        # from "execution", which is the single authoritative record.  The
        # whole payload goes through json_ready so numpy scalars in params or
        # result cells round-trip losslessly (the artifact store digests this
        # representation).
        payload = {
            "kind": _ARTIFACT_KIND,
            "spec": self.spec_name,
            "params": dict(self.params),
            "execution": self.execution.to_json_dict(),
            "engine": self.engine,
            "seed": self.seed,
            "wall_time_s": self.wall_time_s,
            "result": {
                "kind": result_kind(self.result),
                **self.result.to_json_dict(),
            },
        }
        if self.telemetry is not None:
            payload["telemetry"] = dict(self.telemetry)
        return json_ready(payload)

    def to_json(self, path: Optional[Path] = None) -> str:
        """Serialize to JSON; optionally also write to ``path``."""
        payload = json.dumps(self.to_json_dict(), indent=2, default=float)
        if path is not None:
            Path(path).write_text(payload)
        return payload

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "ExperimentArtifact":
        if data.get("kind") != _ARTIFACT_KIND:
            raise ValueError(
                f"not an experiment artifact: kind={data.get('kind')!r} "
                f"(expected {_ARTIFACT_KIND!r})"
            )
        result_data = dict(data["result"])
        result_cls = RESULT_KINDS.get(result_data.pop("kind", None))
        if result_cls is None:
            raise ValueError(f"unknown result kind in artifact {data.get('spec')!r}")
        telemetry = data.get("telemetry")
        return cls(
            spec_name=data["spec"],
            params=dict(data["params"]),
            execution=ExecutionConfig.from_json_dict(data["execution"]),
            wall_time_s=float(data["wall_time_s"]),
            result=result_cls.from_json_dict(result_data),
            telemetry=None if telemetry is None else dict(telemetry),
        )

    @classmethod
    def from_json(cls, payload: Union[str, Path]) -> "ExperimentArtifact":
        """Deserialize from a JSON payload or a file path (mirrors :meth:`to_json`).

        Artifact payloads are always JSON objects, so a string that does not
        start with ``{`` is treated as a path — ``from_json("fig5.json")``
        reads the file ``to_json("fig5.json")`` wrote.  A string that is
        neither raises ``ValueError`` rather than a confusing filesystem
        error.
        """
        if isinstance(payload, Path):
            payload = payload.read_text()
        elif not payload.lstrip("\ufeff \t\r\n").startswith("{"):
            try:
                is_file = Path(payload).is_file()
            except (OSError, ValueError):  # e.g. a multi-KB payload as a "name"
                is_file = False
            if not is_file:
                raise ValueError(
                    "from_json expects an artifact JSON object or the path of "
                    f"one; got neither: {payload[:80]!r}"
                )
            payload = Path(payload).read_text()
        return cls.from_json_dict(json.loads(payload.lstrip("\ufeff")))
