"""The unified execution configuration for experiment campaigns.

Every experiment driver used to thread the same six knobs (``seed``,
``repetitions``, ``workers``, ``batch_size``, ``checkpoint_dir``,
``resume``) down to :func:`repro.experiments.common.run_campaign` by hand.
:class:`ExecutionConfig` bundles them into one frozen, validated object and
is the single place the declarative API resolves the campaign environment
variables (``REPRO_CAMPAIGN_WORKERS`` / ``REPRO_CAMPAIGN_BATCH`` /
``REPRO_SCALE``; ``REPRO_CAMPAIGN_REPS`` stays with the config presets via
:func:`repro.core.campaign.default_repetitions`).

``ExecutionConfig()`` leaves every engine knob at "inherit from the
environment"; :meth:`ExecutionConfig.resolved` pins the environment-derived
values so a run's provenance (recorded in
:class:`~repro.api.artifact.ExperimentArtifact`) shows the engine that
actually executed.

:func:`resolve_execution` is the compatibility shim used by the legacy
``run_*`` driver signatures: it folds the old per-driver keyword knobs into
an :class:`ExecutionConfig` (warning that the keywords are deprecated) and
rejects the ambiguous case where both styles are mixed.
"""

from __future__ import annotations

import dataclasses
import operator
import os
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.core.envvars import parse_positive_int
from repro.core.runner import (
    CampaignRunner,
    default_batch_size,
    default_workers,
    make_runner,
)

__all__ = ["ExecutionConfig", "resolve_execution"]


@dataclass(frozen=True)
class ExecutionConfig:
    """How an experiment's campaigns execute, as one immutable bundle.

    Parameters
    ----------
    seed:
        Master seed for the experiment (training RNGs and campaign
        ``SeedSequence`` roots all derive from it).
    repetitions:
        Campaign repetition count; ``None`` defers to the experiment
        config's preset (which itself honours ``REPRO_CAMPAIGN_REPS``).
        Explicit values must be positive — ``repetitions=0`` raises instead
        of silently meaning "use the default".
    workers:
        Campaign worker processes (``"auto"`` = one per CPU, normalized at
        construction); ``None`` defers to ``REPRO_CAMPAIGN_WORKERS``.
    batch_size:
        Trials per vectorized batch; ``None`` defers to
        ``REPRO_CAMPAIGN_BATCH``.  Trial functions without a ``run_batch``
        implementation fall back to scalar execution, so the knob is safe
        for every experiment.
    checkpoint_dir:
        Directory receiving per-campaign JSONL trial checkpoints.
    resume:
        Skip trials already recorded under ``checkpoint_dir`` (requires
        ``checkpoint_dir``).
    scale:
        Experiment scale preset (``"small"`` / ``"medium"`` / ``"paper"``);
        ``None`` defers to ``REPRO_SCALE``.
    kernel_backend:
        Compute-kernel backend for the quantization / fault-injection hot
        path (``"auto"`` / ``"numpy"`` / ``"numba"``); ``None`` defers to
        ``REPRO_KERNEL_BACKEND``.  Backends are contractually bit-identical,
        so this knob never changes the numbers — only how fast they arrive.
    """

    seed: int = 0
    repetitions: Optional[int] = None
    workers: Optional[Union[int, str]] = None
    batch_size: Optional[int] = None
    checkpoint_dir: Optional[Path] = None
    resume: bool = False
    scale: Optional[str] = None
    kernel_backend: Optional[str] = None

    def __post_init__(self) -> None:
        if isinstance(self.seed, bool):
            raise ValueError(f"seed must be an integer, got {self.seed!r}")
        try:
            # operator.index accepts true integer types (int, numpy integers)
            # while rejecting floats, so a seed=2.9 cannot silently truncate.
            object.__setattr__(self, "seed", operator.index(self.seed))
        except TypeError:
            raise ValueError(f"seed must be an integer, got {self.seed!r}") from None
        if self.repetitions is not None:
            object.__setattr__(
                self,
                "repetitions",
                parse_positive_int(self.repetitions, "repetitions"),
            )
        if self.workers is not None:
            object.__setattr__(
                self, "workers", parse_positive_int(self.workers, "workers", allow_auto=True)
            )
        if self.batch_size is not None:
            object.__setattr__(
                self, "batch_size", parse_positive_int(self.batch_size, "batch_size")
            )
        if self.checkpoint_dir is not None:
            object.__setattr__(self, "checkpoint_dir", Path(self.checkpoint_dir))
        if self.resume and self.checkpoint_dir is None:
            raise ValueError("resume=True requires a checkpoint_dir")
        if self.scale is not None:
            from repro.experiments.config import ExperimentScale

            object.__setattr__(self, "scale", ExperimentScale(self.scale).value)
        if self.kernel_backend is not None:
            from repro.kernels import validate_backend_name

            object.__setattr__(
                self, "kernel_backend", validate_backend_name(self.kernel_backend)
            )

    # -- environment resolution ----------------------------------------- #
    def resolved(self) -> "ExecutionConfig":
        """Pin every ``None`` knob to its environment-derived value.

        This is where the campaign environment variables are consulted on
        behalf of the declarative API: ``REPRO_CAMPAIGN_WORKERS`` and
        ``REPRO_CAMPAIGN_BATCH`` fill the engine knobs and ``REPRO_SCALE``
        pins the scale preset.  ``repetitions`` stays ``None`` on purpose —
        the experiment config's preset is its default, and that preset
        already honours ``REPRO_CAMPAIGN_REPS`` through
        :func:`repro.core.campaign.default_repetitions` (the one place that
        variable is read).  The result executes identically but records
        concrete values for provenance.
        """
        from repro.experiments.config import get_scale
        from repro.kernels import resolve_backend_name

        return self.replace(
            workers=self.workers if self.workers is not None else default_workers(),
            batch_size=self.batch_size
            if self.batch_size is not None
            else default_batch_size(),
            scale=self.scale if self.scale is not None else get_scale().value,
            # "auto" (and None) pin to the concrete backend that will run, so
            # artifact provenance records numpy-vs-numba explicitly.
            kernel_backend=resolve_backend_name(self.kernel_backend),
        )

    # -- derived behaviour ---------------------------------------------- #
    def replace(self, **changes: Any) -> "ExecutionConfig":
        """A copy with the given fields replaced (frozen-dataclass update)."""
        return dataclasses.replace(self, **changes)

    def resolve_repetitions(self, config_default: int) -> int:
        """The campaign repetition count: explicit override or config preset."""
        if self.repetitions is not None:
            return self.repetitions
        return parse_positive_int(config_default, "config repetitions")

    def make_runner(self) -> CampaignRunner:
        """Build the campaign engine these knobs describe."""
        return make_runner(self.workers, self.batch_size)

    def engine_description(self) -> str:
        """Human-readable engine summary, e.g. ``"batched(8) x 4 workers"``."""
        resolved = self.resolved()
        workers = resolved.workers or 1
        batch = resolved.batch_size or 1
        if batch > 1 and workers > 1:
            return f"batched({batch}) x {workers} workers"
        if batch > 1:
            return f"batched({batch})"
        if workers > 1:
            return f"parallel({workers} workers)"
        return "serial"

    def cache_key_dict(self) -> Dict[str, Any]:
        """The execution fields that determine an experiment's *numbers*.

        This is what the content-addressed artifact store digests: the seed,
        the repetition count and the scale preset.  The engine knobs
        (``workers`` / ``batch_size`` / ``kernel_backend``) and the
        checkpoint knobs are excluded on purpose — campaigns are
        contractually bit-identical across serial / parallel / batched
        execution and across kernel backends, so a result computed on one
        engine is a valid cache hit for every other.

        When ``repetitions`` is ``None`` the count comes from the experiment
        config's preset, which honours ``REPRO_CAMPAIGN_REPS``; the raw value
        of that variable is folded into the key so changing it invalidates
        cached results instead of silently serving counts from a different
        environment.
        """
        from repro.core.campaign import REPS_ENV_VAR

        key: Dict[str, Any] = {
            "seed": self.seed,
            "repetitions": self.repetitions,
            "scale": self.resolved().scale,
        }
        if self.repetitions is None:
            key["reps_env"] = os.environ.get(REPS_ENV_VAR)
        return key

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-safe representation (used by experiment artifacts)."""
        return {
            "seed": self.seed,
            "repetitions": self.repetitions,
            "workers": self.workers,
            "batch_size": self.batch_size,
            "checkpoint_dir": None if self.checkpoint_dir is None else str(self.checkpoint_dir),
            "resume": self.resume,
            "scale": self.scale,
            "kernel_backend": self.kernel_backend,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "ExecutionConfig":
        return cls(**{key: data.get(key) for key in data if key in _FIELD_NAMES})


_FIELD_NAMES = {f.name for f in dataclasses.fields(ExecutionConfig)}

#: Defaults of the legacy per-driver keyword knobs (``seed`` excluded — it
#: predates the engine knobs and never needed migrating loudly).
_LEGACY_DEFAULTS = {
    "repetitions": None,
    "workers": None,
    "batch_size": None,
    "checkpoint_dir": None,
    "resume": False,
}


def resolve_execution(
    execution: Optional[ExecutionConfig] = None,
    *,
    seed: Optional[int] = None,
    repetitions: Optional[int] = None,
    workers: Optional[Union[int, str]] = None,
    batch_size: Optional[int] = None,
    checkpoint_dir: Optional[Path] = None,
    resume: bool = False,
) -> ExecutionConfig:
    """Fold a driver's legacy keyword knobs into one :class:`ExecutionConfig`.

    Called at the top of every ``run_*`` driver: passing ``execution=`` is
    the declarative path and wins outright; passing any of the legacy engine
    keywords instead builds an equivalent config (with a
    ``DeprecationWarning`` pointing at :func:`repro.api.run`).  Mixing both
    styles is ambiguous and raises ``TypeError``.  ``seed=None`` means
    "not supplied" (the drivers' own default) and resolves to 0, so an
    explicit ``seed=0`` alongside ``execution=`` is still caught as mixing.
    """
    legacy = {
        "repetitions": repetitions,
        "workers": workers,
        "batch_size": batch_size,
        "checkpoint_dir": checkpoint_dir,
        "resume": resume,
    }
    supplied = [name for name, value in legacy.items() if value != _LEGACY_DEFAULTS[name]]
    if execution is not None:
        if supplied or seed is not None:
            raise TypeError(
                "pass either execution=ExecutionConfig(...) or the legacy "
                f"keyword knobs, not both (got execution= plus "
                f"{', '.join(sorted(set(supplied) | ({'seed'} if seed is not None else set())))})"
            )
        return execution
    # Validate before warning, so an invalid knob surfaces as its ValueError
    # even under warnings-as-errors.
    resolved = ExecutionConfig(seed=0 if seed is None else seed, **legacy)
    if supplied:
        warnings.warn(
            f"the per-driver engine keywords ({', '.join(supplied)}) are "
            "deprecated; pass execution=repro.api.ExecutionConfig(...) or use "
            "repro.api.run() instead",
            DeprecationWarning,
            stacklevel=3,
        )
    return resolved
