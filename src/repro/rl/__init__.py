"""Reinforcement-learning substrate.

Implements the learning algorithms evaluated by the paper:

* tabular Q-learning with an 8-bit quantized Q table
  (:mod:`repro.rl.tabular`),
* neural-network Q-function approximation / DQN and Double DQN with
  experience replay (:mod:`repro.rl.dqn`),
* decaying epsilon-greedy exploration schedules whose rate can be adjusted
  at runtime by the fault-mitigation controller (:mod:`repro.rl.schedules`),
* a training loop with hook points for fault injection and mitigation
  (:mod:`repro.rl.trainer`), and policy evaluation rollouts
  (:mod:`repro.rl.evaluation`).
"""

from repro.rl.base import Agent, Transition
from repro.rl.schedules import ConstantSchedule, DecayingEpsilonGreedy
from repro.rl.replay import ReplayBuffer
from repro.rl.tabular import TabularQAgent
from repro.rl.dqn import DQNAgent, DoubleDQNAgent
from repro.rl.trainer import TrainingHooks, TrainingResult, train_agent
from repro.rl.evaluation import (
    as_batched_policy,
    evaluate_success_rate,
    greedy_rollout,
    greedy_rollouts,
)

__all__ = [
    "Agent",
    "Transition",
    "ConstantSchedule",
    "DecayingEpsilonGreedy",
    "ReplayBuffer",
    "TabularQAgent",
    "DQNAgent",
    "DoubleDQNAgent",
    "TrainingHooks",
    "TrainingResult",
    "train_agent",
    "evaluate_success_rate",
    "greedy_rollout",
    "greedy_rollouts",
    "as_batched_policy",
]
