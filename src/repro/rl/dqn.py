"""Neural-network Q-learning agents (DQN and Double DQN).

The Grid World NN-based policy (Sec. 4.1) is a small fully-connected
Q-network over one-hot states; the drone policy (Sec. 4.2) is the C3F2
convolutional network trained with Double DQN and experience replay.  Both
are served by the agents in this module, parameterized by a state encoder
and a :class:`~repro.nn.network.Sequential` network.

Weight storage is exposed to the fault injector as quantized buffers
(:meth:`DQNAgent.memory_buffers`); permanent faults are re-applied by the
injection framework on every episode because training keeps rewriting the
underlying values.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.nn.buffers import BufferSet
from repro.nn.losses import huber_loss
from repro.nn.network import Sequential
from repro.nn.optim import Adam, Optimizer
from repro.quant.qformat import QFormat, Q16_NARROW
from repro.quant.qtensor import QTensor
from repro.rl.base import Agent, Transition
from repro.rl.replay import ReplayBuffer
from repro.rl.schedules import ConstantSchedule, DecayingEpsilonGreedy

__all__ = ["DQNAgent", "DoubleDQNAgent"]

Schedule = Union[ConstantSchedule, DecayingEpsilonGreedy]
StateEncoder = Callable[[object], np.ndarray]


class DQNAgent(Agent):
    """Deep Q-learning agent with experience replay and a target network.

    Parameters
    ----------
    network:
        Online Q-network mapping encoded states to per-action Q-values.
    state_encoder:
        Maps an environment state to the network's input array (no batch dim).
    n_actions:
        Size of the discrete action space (must match the network output).
    gamma, learning_rate:
        Discount factor and optimizer step size.
    replay_capacity, batch_size, train_every, target_update_every:
        Experience-replay and target-network hyperparameters.
    weight_qformat:
        Fixed-point format of the weight buffers exposed to the fault
        injector (Q(1,4,11) by default, the paper's most resilient format).
    frozen_prefixes:
        Parameter-name prefixes excluded from training; used to fine-tune
        only the last layers of a pre-trained policy (transfer learning).
    """

    def __init__(
        self,
        network: Sequential,
        state_encoder: StateEncoder,
        n_actions: int,
        gamma: float = 0.95,
        learning_rate: float = 1e-3,
        schedule: Optional[Schedule] = None,
        replay_capacity: int = 2000,
        batch_size: int = 32,
        train_every: int = 1,
        target_update_every: int = 200,
        min_replay_size: int = 64,
        weight_qformat: QFormat = Q16_NARROW,
        frozen_prefixes: Optional[List[str]] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if n_actions <= 0:
            raise ValueError(f"n_actions must be positive, got {n_actions}")
        if not 0.0 < gamma < 1.0:
            raise ValueError(f"gamma must be in (0, 1), got {gamma}")
        self.network = network
        self.state_encoder = state_encoder
        self.n_actions = n_actions
        self.gamma = gamma
        self.schedule: Schedule = schedule or DecayingEpsilonGreedy()
        self.rng = rng or np.random.default_rng()
        self.replay = ReplayBuffer(replay_capacity, rng=self.rng)
        self.batch_size = batch_size
        self.train_every = train_every
        self.target_update_every = target_update_every
        self.min_replay_size = min_replay_size
        self.weight_qformat = weight_qformat
        self.optimizer: Optimizer = Adam(
            network, learning_rate=learning_rate, frozen=frozen_prefixes
        )
        self._target_state = network.state_dict()
        self._steps = 0
        self._buffer_set: Optional[BufferSet] = None

    # ------------------------------------------------------------------ #
    # Value access
    # ------------------------------------------------------------------ #
    def _encode_batch(self, states: List[object]) -> np.ndarray:
        return np.stack([self.state_encoder(s) for s in states])

    def q_values(self, state: object) -> np.ndarray:
        encoded = self.state_encoder(state)[None, ...]
        return self.network.forward(encoded)[0]

    def _target_q_values(self, states: np.ndarray) -> np.ndarray:
        snapshot = self.network.state_dict()
        self.network.load_state_dict(self._target_state)
        try:
            return self.network.forward(states)
        finally:
            self.network.load_state_dict(snapshot)

    # ------------------------------------------------------------------ #
    # Acting
    # ------------------------------------------------------------------ #
    def select_action(self, state: object, explore: bool = True) -> int:
        if explore and self.rng.random() < self.schedule.epsilon:
            return int(self.rng.integers(self.n_actions))
        q = self.q_values(state)
        best = np.flatnonzero(q == q.max())
        return int(self.rng.choice(best))

    # ------------------------------------------------------------------ #
    # Learning
    # ------------------------------------------------------------------ #
    def observe(self, transition: Transition) -> None:
        self.replay.push(transition)
        self._steps += 1
        if len(self.replay) < self.min_replay_size:
            return
        if self._steps % self.train_every == 0:
            self._train_step()
        if self._steps % self.target_update_every == 0:
            self._target_state = self.network.state_dict()

    def _compute_targets(self, batch: List[Transition]) -> np.ndarray:
        """Standard DQN targets: ``r + gamma * max_a Q_target(s', a)``."""
        next_states = self._encode_batch([t.next_state for t in batch])
        next_q = self._target_q_values(next_states)
        targets = np.array(
            [
                t.reward
                if t.done
                else t.reward + self.gamma * float(next_q[i].max())
                for i, t in enumerate(batch)
            ]
        )
        return targets

    def _train_step(self) -> float:
        batch = self.replay.sample(self.batch_size)
        states = self._encode_batch([t.state for t in batch])
        actions = np.array([t.action for t in batch], dtype=np.int64)
        targets = self._compute_targets(batch)

        predictions = self.network.forward(states, training=True)
        target_matrix = predictions.copy()
        target_matrix[np.arange(len(batch)), actions] = targets
        loss, grad = huber_loss(predictions, target_matrix)
        self.network.backward(grad)
        self.optimizer.step()
        return loss

    def end_episode(self) -> None:
        self.schedule.step()

    # ------------------------------------------------------------------ #
    # Exploration
    # ------------------------------------------------------------------ #
    @property
    def exploration_rate(self) -> float:
        return self.schedule.epsilon

    # ------------------------------------------------------------------ #
    # Fault-injection surface
    # ------------------------------------------------------------------ #
    def memory_buffers(self) -> Dict[str, QTensor]:
        """Quantized weight buffers, refreshed from the current parameters.

        Each call re-quantizes the live (float) parameters, so stuck-at
        faults must be re-applied by the campaign after every refresh — which
        matches their physical persistence in the memory array.
        """
        self._buffer_set = BufferSet(self.network, self.weight_qformat)
        return dict(self._buffer_set.weight_buffers())

    def reload_from_buffers(self) -> None:
        if self._buffer_set is None:
            raise RuntimeError("memory_buffers() must be called before reload_from_buffers()")
        self._buffer_set.sync_weights_to_network()

    # ------------------------------------------------------------------ #
    # Snapshots
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        return self.network.state_dict()

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        self.network.load_state_dict(state)
        self._target_state = self.network.state_dict()


class DoubleDQNAgent(DQNAgent):
    """Double DQN: online network selects the bootstrap action, target evaluates it.

    This is the algorithm used to train the drone navigation policy offline
    before transfer-learning fine-tuning (Sec. 4.2.1).
    """

    def _compute_targets(self, batch: List[Transition]) -> np.ndarray:
        next_states = self._encode_batch([t.next_state for t in batch])
        online_next = self.network.forward(next_states)
        best_actions = online_next.argmax(axis=1)
        target_next = self._target_q_values(next_states)
        targets = np.array(
            [
                t.reward
                if t.done
                else t.reward + self.gamma * float(target_next[i, best_actions[i]])
                for i, t in enumerate(batch)
            ]
        )
        return targets
