"""Supervised pre-training of the drone policy (offline-training substitute).

``pretrain_drone_policy`` trains the C3F2 network to regress the privileged
expert's per-action clearance scores from camera images.  The resulting
network plays the role of the paper's offline-trained Double DQN policy: its
argmax steers toward open space, and it can subsequently be fine-tuned online
(last two layers only) with :class:`~repro.rl.dqn.DoubleDQNAgent`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.envs.drone.env import DroneNavEnv
from repro.envs.drone.expert import GreedyDepthExpert, collect_dataset
from repro.nn.losses import mse_loss
from repro.nn.network import Sequential
from repro.nn.optim import Adam

__all__ = ["PretrainResult", "behaviour_clone", "pretrain_drone_policy"]


@dataclass
class PretrainResult:
    """Training record of a supervised pre-training run."""

    losses: List[float]

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise ValueError("no training steps were recorded")
        return self.losses[-1]


def behaviour_clone(
    network: Sequential,
    images: np.ndarray,
    targets: np.ndarray,
    epochs: int = 20,
    batch_size: int = 32,
    learning_rate: float = 1e-3,
    rng: Optional[np.random.Generator] = None,
) -> PretrainResult:
    """Fit ``network`` to (image, per-action score) pairs by minibatch MSE."""
    if images.shape[0] != targets.shape[0]:
        raise ValueError(
            f"images and targets disagree on sample count: "
            f"{images.shape[0]} vs {targets.shape[0]}"
        )
    if epochs <= 0 or batch_size <= 0:
        raise ValueError("epochs and batch_size must be positive")
    rng = rng or np.random.default_rng()
    optimizer = Adam(network, learning_rate=learning_rate)
    num_samples = images.shape[0]
    losses: List[float] = []
    for _ in range(epochs):
        order = rng.permutation(num_samples)
        epoch_losses = []
        for start in range(0, num_samples, batch_size):
            batch = order[start : start + batch_size]
            predictions = network.forward(images[batch], training=True)
            loss, grad = mse_loss(predictions, targets[batch])
            network.backward(grad)
            optimizer.step()
            epoch_losses.append(loss)
        losses.append(float(np.mean(epoch_losses)))
    return PretrainResult(losses=losses)


def pretrain_drone_policy(
    network: Sequential,
    env: DroneNavEnv,
    num_samples: int = 400,
    epochs: int = 20,
    batch_size: int = 32,
    learning_rate: float = 1e-3,
    rng: Optional[np.random.Generator] = None,
) -> PretrainResult:
    """Pre-train a drone policy network against the privileged depth expert."""
    rng = rng or np.random.default_rng()
    expert = GreedyDepthExpert(env)
    images, targets = collect_dataset(env, expert, num_samples, rng)
    return behaviour_clone(
        network,
        images,
        targets,
        epochs=epochs,
        batch_size=batch_size,
        learning_rate=learning_rate,
        rng=rng,
    )
