"""Tabular Q-learning with a quantized Q table.

The Grid World policies of Sec. 4.1 are quantized to 8 bits during both
training and inference; the Q table is therefore held in a
:class:`~repro.quant.qtensor.QTensor` ("data buffer storing tabular values",
Sec. 3.2) so the fault injector can flip or stick its bits directly.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from repro.quant.qformat import Q8_GRID, QFormat
from repro.quant.qtensor import QTensor
from repro.rl.base import Agent, Transition
from repro.rl.schedules import ConstantSchedule, DecayingEpsilonGreedy

__all__ = ["TabularQAgent"]

Schedule = Union[ConstantSchedule, DecayingEpsilonGreedy]

#: Name of the tabular value buffer in :meth:`TabularQAgent.memory_buffers`.
QTABLE_BUFFER = "qtable"


class TabularQAgent(Agent):
    """Q-learning agent with an explicit quantized Q-table buffer.

    Parameters
    ----------
    n_states, n_actions:
        Sizes of the discrete state and action spaces.
    gamma:
        Discount factor.
    learning_rate:
        Bellman-update step size (alpha).
    schedule:
        Epsilon-greedy exploration schedule (stepped once per episode).
    qformat:
        Fixed-point storage format of the Q table (8-bit by default).
    value_scale:
        Q values are stored multiplied by this factor so that the table uses
        the full dynamic range of the fixed-point format (the Fig. 2b
        histogram spans roughly [-8, 8) for unit rewards).
    initial_q:
        Initial Q value (in reward units) for every table entry.  A small
        optimistic value (e.g. 0.5) makes the agent systematically try
        untried actions, which speeds up convergence and makes it far more
        reliable on the sparse-reward Grid World.
    """

    def __init__(
        self,
        n_states: int,
        n_actions: int,
        gamma: float = 0.95,
        learning_rate: float = 0.3,
        schedule: Optional[Schedule] = None,
        qformat: QFormat = Q8_GRID,
        value_scale: float = 7.5,
        initial_q: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if n_states <= 0 or n_actions <= 0:
            raise ValueError("n_states and n_actions must be positive")
        if not 0.0 < gamma < 1.0:
            raise ValueError(f"gamma must be in (0, 1), got {gamma}")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError(f"learning_rate must be in (0, 1], got {learning_rate}")
        if value_scale <= 0:
            raise ValueError(f"value_scale must be positive, got {value_scale}")
        self.n_states = n_states
        self.n_actions = n_actions
        self.gamma = gamma
        self.learning_rate = learning_rate
        self.schedule: Schedule = schedule or DecayingEpsilonGreedy()
        self.qformat = qformat
        self.value_scale = value_scale
        self.initial_q = initial_q
        self.rng = rng or np.random.default_rng()
        initial = np.full((n_states, n_actions), initial_q * value_scale, dtype=np.float64)
        self._table = QTensor(initial, qformat, name=QTABLE_BUFFER)

    # ------------------------------------------------------------------ #
    # Value access
    # ------------------------------------------------------------------ #
    @property
    def q_table(self) -> np.ndarray:
        """Decoded Q-value table (in reward units, scale removed)."""
        return self._table.values / self.value_scale

    def q_values(self, state: int) -> np.ndarray:
        """Q-values for every action in a state."""
        self._check_state(state)
        return self._table.values[state] / self.value_scale

    def _check_state(self, state: int) -> None:
        if not 0 <= state < self.n_states:
            raise ValueError(f"state {state} outside [0, {self.n_states})")

    # ------------------------------------------------------------------ #
    # Acting
    # ------------------------------------------------------------------ #
    def select_action(self, state: int, explore: bool = True) -> int:
        """Epsilon-greedy action selection (ties broken randomly)."""
        if explore and self.rng.random() < self.schedule.epsilon:
            return int(self.rng.integers(self.n_actions))
        q = self.q_values(state)
        best = np.flatnonzero(q == q.max())
        return int(self.rng.choice(best))

    # ------------------------------------------------------------------ #
    # Learning
    # ------------------------------------------------------------------ #
    def observe(self, transition: Transition) -> None:
        """Apply the Bellman backup of Eq. 4 to the quantized table."""
        state = int(transition.state)
        next_state = int(transition.next_state)
        self._check_state(state)
        self._check_state(next_state)
        values = self._table.values
        current = values[state, transition.action] / self.value_scale
        if transition.done:
            bootstrap = 0.0
        else:
            bootstrap = float(values[next_state].max()) / self.value_scale
        target = transition.reward + self.gamma * bootstrap
        updated = current + self.learning_rate * (target - current)
        values[state, transition.action] = updated * self.value_scale
        self._table.values = values

    def end_episode(self) -> None:
        self.schedule.step()

    # ------------------------------------------------------------------ #
    # Exploration
    # ------------------------------------------------------------------ #
    @property
    def exploration_rate(self) -> float:
        return self.schedule.epsilon

    # ------------------------------------------------------------------ #
    # Fault-injection surface
    # ------------------------------------------------------------------ #
    def memory_buffers(self) -> Dict[str, QTensor]:
        return {QTABLE_BUFFER: self._table}

    def reload_from_buffers(self) -> None:
        """The Q table *is* the buffer, so nothing needs to be copied back."""

    # ------------------------------------------------------------------ #
    # Policy export
    # ------------------------------------------------------------------ #
    def greedy_policy(self) -> np.ndarray:
        """Greedy action for every state (Eq. 5)."""
        return self.q_table.argmax(axis=1)

    def clone(self, rng: Optional[np.random.Generator] = None) -> "TabularQAgent":
        """Deep copy of the agent (table and schedule state preserved).

        Without ``rng`` the copy's generator is seeded by drawing from this
        agent's generator, which *advances the parent's RNG state*.  Callers
        that need cloning to be side-effect free (e.g. campaign trials that
        clone a shared agent and must stay pure functions of their trial
        RNG) should pass an explicit generator.
        """
        if rng is None:
            rng = np.random.default_rng(self.rng.integers(2**32))
        copy = TabularQAgent(
            self.n_states,
            self.n_actions,
            gamma=self.gamma,
            learning_rate=self.learning_rate,
            schedule=ConstantSchedule(self.schedule.epsilon),
            qformat=self.qformat,
            value_scale=self.value_scale,
            initial_q=self.initial_q,
            rng=rng,
        )
        copy._table = self._table.copy()
        return copy
