"""Common agent interface and transition container."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

import numpy as np

from repro.quant.qtensor import QTensor

__all__ = ["Transition", "Agent"]


@dataclass(frozen=True)
class Transition:
    """One environment interaction ``(s, a, r, s', done)``.

    Matches the data tuple :math:`D_i = (s_i, a_i, s_{i+1}, r_i)` of Sec. 3.1,
    extended with the terminal flag needed for bootstrapped targets.
    """

    state: Any
    action: int
    reward: float
    next_state: Any
    done: bool


class Agent:
    """Interface shared by the tabular and NN-based Q-learning agents.

    The fault-injection framework interacts with agents exclusively through
    :meth:`memory_buffers` / :meth:`reload_from_buffers`: every tensor the
    hardware fault model can corrupt is exposed as a named
    :class:`~repro.quant.qtensor.QTensor`.
    """

    #: Number of discrete actions.
    n_actions: int

    # -- acting --------------------------------------------------------- #
    def select_action(self, state: Any, explore: bool = True) -> int:
        """Choose an action; ``explore=False`` forces greedy exploitation."""
        raise NotImplementedError

    def q_values(self, state: Any) -> np.ndarray:
        """Q-values for every action in ``state``."""
        raise NotImplementedError

    # -- learning ------------------------------------------------------- #
    def observe(self, transition: Transition) -> None:
        """Consume one transition (update tables / replay / networks)."""
        raise NotImplementedError

    def end_episode(self) -> None:
        """Hook called at the end of every training episode."""

    # -- exploration ---------------------------------------------------- #
    @property
    def exploration_rate(self) -> float:
        """Current epsilon of the exploration schedule."""
        raise NotImplementedError

    # -- fault-injection surface ---------------------------------------- #
    def memory_buffers(self) -> Dict[str, QTensor]:
        """All quantized memories the fault model can target, by name."""
        raise NotImplementedError

    def reload_from_buffers(self) -> None:
        """Propagate (possibly faulted) buffer contents back into the agent."""
        raise NotImplementedError
