"""Exploration-rate schedules.

The paper uses the standard decaying-epsilon-greedy strategy: exploration
starts high and decays each episode until it reaches a steady exploitation
floor.  The training-time fault-mitigation technique (Sec. 5.1) works by
*adjusting* this schedule at runtime — bumping epsilon back up after a
transient fault, or restarting the decay at a slower rate after a permanent
fault — so the schedule objects here expose explicit mutation hooks.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["ConstantSchedule", "DecayingEpsilonGreedy"]


class ConstantSchedule:
    """A fixed exploration rate (useful for ablations and tests)."""

    def __init__(self, epsilon: float) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        self._epsilon = epsilon

    @property
    def epsilon(self) -> float:
        return self._epsilon

    def step(self) -> float:
        """Advance one episode; constant schedules never change."""
        return self._epsilon

    def is_steady(self) -> bool:
        """Constant schedules are always in their steady state."""
        return True


class DecayingEpsilonGreedy:
    """Multiplicative epsilon decay with a steady exploitation floor.

    Parameters
    ----------
    start:
        Initial exploration rate.
    floor:
        Steady-state exploitation epsilon (the schedule never goes below it).
    decay:
        Per-episode multiplicative decay factor in (0, 1].
    """

    def __init__(self, start: float = 1.0, floor: float = 0.05, decay: float = 0.97) -> None:
        if not 0.0 <= floor <= start <= 1.0:
            raise ValueError(
                f"need 0 <= floor <= start <= 1, got start={start}, floor={floor}"
            )
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self.start = start
        self.floor = floor
        self.base_decay = decay
        self._decay = decay
        self._epsilon = start
        self._episodes = 0

    # ------------------------------------------------------------------ #
    # Normal operation
    # ------------------------------------------------------------------ #
    @property
    def epsilon(self) -> float:
        return self._epsilon

    @property
    def decay(self) -> float:
        return self._decay

    @property
    def episodes(self) -> int:
        """Number of schedule steps taken so far."""
        return self._episodes

    def step(self) -> float:
        """Advance one episode and return the new epsilon."""
        self._episodes += 1
        self._epsilon = max(self.floor, self._epsilon * self._decay)
        return self._epsilon

    def is_steady(self, tolerance: float = 1e-9) -> bool:
        """True once epsilon has decayed down to the exploitation floor."""
        return self._epsilon <= self.floor + tolerance

    def episodes_to_steady(self) -> int:
        """Episodes needed (from the start) to reach the floor at the base decay."""
        import math

        if self.start <= self.floor:
            return 0
        return int(math.ceil(math.log(self.floor / self.start) / math.log(self.base_decay)))

    # ------------------------------------------------------------------ #
    # Mitigation hooks (Sec. 5.1)
    # ------------------------------------------------------------------ #
    def boost(self, delta: float) -> float:
        """Increase epsilon by ``delta`` (transient-fault recovery), capped at 1."""
        if delta < 0:
            raise ValueError(f"boost delta must be non-negative, got {delta}")
        self._epsilon = min(1.0, self._epsilon + delta)
        return self._epsilon

    def restart(self, decay_slowdown: float = 1.0, start: Optional[float] = None) -> float:
        """Revert to the initial exploration rate and slow the decay.

        Permanent-fault recovery: the agent reverts epsilon to its initial
        value and divides the decay *speed* by ``decay_slowdown`` (the paper
        slows it by ``2**n`` after the n-th detection), i.e. the per-episode
        decay factor moves closer to 1.
        """
        if decay_slowdown < 1.0:
            raise ValueError(f"decay_slowdown must be >= 1, got {decay_slowdown}")
        self._epsilon = self.start if start is None else min(1.0, start)
        # Slowing the decay speed k-fold: epsilon(t) = start * d**(t/k)
        # is equivalent to using a per-episode factor d**(1/k).
        self._decay = self.base_decay ** (1.0 / decay_slowdown)
        return self._epsilon

    def reset(self) -> None:
        """Full reset to the initial schedule (fresh training run)."""
        self._epsilon = self.start
        self._decay = self.base_decay
        self._episodes = 0
