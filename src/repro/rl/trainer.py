"""Training loop with hook points for fault injection and mitigation.

The fault-characterization experiments need to (a) corrupt agent memory at a
specific episode or step during training, and (b) let a mitigation controller
watch the reward stream and adjust exploration.  Both are expressed as
:class:`TrainingHooks` so the training loop itself stays free of
experiment-specific logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

import numpy as np

from repro.rl.base import Agent, Transition

__all__ = ["EpisodeRecord", "TrainingHooks", "TrainingResult", "train_agent"]


@dataclass(frozen=True)
class EpisodeRecord:
    """Summary of one training episode."""

    episode: int
    total_reward: float
    steps: int
    success: bool
    exploration_rate: float


class TrainingHooks:
    """Override any subset of these callbacks to observe or perturb training."""

    def on_training_start(self, agent: Agent, env) -> None:
        """Called once before the first episode."""

    def on_episode_start(self, episode: int, agent: Agent, env) -> None:
        """Called before each episode's first step."""

    def on_step(
        self, episode: int, step: int, agent: Agent, env, transition: Transition
    ) -> None:
        """Called after every environment step (post agent update)."""

    def on_episode_end(self, episode: int, agent: Agent, env, record: EpisodeRecord) -> None:
        """Called after each episode completes (post schedule step)."""

    def on_training_end(self, agent: Agent, env, result: "TrainingResult") -> None:
        """Called once after the last episode."""


@dataclass
class TrainingResult:
    """Per-episode training history."""

    records: List[EpisodeRecord] = field(default_factory=list)

    @property
    def episodes(self) -> int:
        return len(self.records)

    @property
    def rewards(self) -> np.ndarray:
        """Cumulative (episode-total) reward per episode."""
        return np.array([r.total_reward for r in self.records], dtype=np.float64)

    @property
    def successes(self) -> np.ndarray:
        """Boolean success flag per episode."""
        return np.array([r.success for r in self.records], dtype=bool)

    @property
    def exploration_rates(self) -> np.ndarray:
        return np.array([r.exploration_rate for r in self.records], dtype=np.float64)

    def moving_average_reward(self, window: int = 50) -> np.ndarray:
        """Moving average of episode rewards (useful for convergence checks)."""
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        rewards = self.rewards
        if rewards.size == 0:
            return rewards
        window = min(window, rewards.size)
        kernel = np.ones(window) / window
        return np.convolve(rewards, kernel, mode="valid")

    def success_rate(self, last_n: Optional[int] = None) -> float:
        """Fraction of successful episodes (optionally over the last ``last_n``)."""
        successes = self.successes
        if successes.size == 0:
            return 0.0
        if last_n is not None:
            successes = successes[-last_n:]
        return float(successes.mean())


def train_agent(
    agent: Agent,
    env,
    episodes: int,
    max_steps_per_episode: int = 200,
    hooks: Iterable[TrainingHooks] = (),
) -> TrainingResult:
    """Run episodic training of ``agent`` on ``env``.

    The environment must follow the small protocol of
    :class:`repro.envs.base.Environment`: ``reset() -> state`` and
    ``step(action) -> (next_state, reward, done, info)``, with ``info``
    optionally carrying a boolean ``"success"`` entry.
    """
    if episodes <= 0:
        raise ValueError(f"episodes must be positive, got {episodes}")
    hooks = list(hooks)
    result = TrainingResult()
    for hook in hooks:
        hook.on_training_start(agent, env)

    for episode in range(episodes):
        for hook in hooks:
            hook.on_episode_start(episode, agent, env)
        state = env.reset()
        total_reward = 0.0
        success = False
        steps = 0
        for step in range(max_steps_per_episode):
            action = agent.select_action(state, explore=True)
            next_state, reward, done, info = env.step(action)
            transition = Transition(state, action, reward, next_state, done)
            agent.observe(transition)
            for hook in hooks:
                hook.on_step(episode, step, agent, env, transition)
            total_reward += reward
            state = next_state
            steps = step + 1
            if done:
                success = bool(info.get("success", False))
                break
        agent.end_episode()
        record = EpisodeRecord(
            episode=episode,
            total_reward=total_reward,
            steps=steps,
            success=success,
            exploration_rate=agent.exploration_rate,
        )
        result.records.append(record)
        for hook in hooks:
            hook.on_episode_end(episode, agent, env, record)

    for hook in hooks:
        hook.on_training_end(agent, env, result)
    return result
