"""Experience replay buffer for DQN training."""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

import numpy as np

from repro.rl.base import Transition

__all__ = ["ReplayBuffer"]


class ReplayBuffer:
    """Fixed-capacity FIFO replay memory with uniform sampling."""

    def __init__(self, capacity: int, rng: Optional[np.random.Generator] = None) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._storage: Deque[Transition] = deque(maxlen=capacity)
        self._rng = rng or np.random.default_rng()

    def push(self, transition: Transition) -> None:
        """Append a transition, evicting the oldest if at capacity."""
        self._storage.append(transition)

    def sample(self, batch_size: int) -> List[Transition]:
        """Uniformly sample ``batch_size`` transitions (with replacement if needed)."""
        if not self._storage:
            raise ValueError("cannot sample from an empty replay buffer")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        replace = batch_size > len(self._storage)
        indices = self._rng.choice(len(self._storage), size=batch_size, replace=replace)
        return [self._storage[int(i)] for i in indices]

    def __len__(self) -> int:
        return len(self._storage)

    def __iter__(self):
        return iter(self._storage)

    def clear(self) -> None:
        self._storage.clear()

    def is_full(self) -> bool:
        return len(self._storage) == self.capacity
