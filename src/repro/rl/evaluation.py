"""Policy evaluation rollouts.

Inference in a learning-based navigation system is a sequential
decision-making process (Sec. 4.1.2): the trained policy is queried at every
step, so the evaluation functions here run full greedy episodes and report
task-level metrics (success, cumulative reward, distance travelled) rather
than single-prediction accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

__all__ = [
    "RolloutResult",
    "greedy_rollout",
    "greedy_rollouts",
    "as_batched_policy",
    "evaluate_success_rate",
    "evaluate_mean_metric",
    "evaluate_mean_metrics",
]

#: A policy is any callable mapping a state to a discrete action.
Policy = Callable[[object], int]

#: A batched policy maps ``(step, replica_indices, states)`` — the states of
#: the replicas still running at this step — to one action per entry.
BatchedPolicy = Callable[[int, np.ndarray, List[object]], Sequence[int]]


@dataclass(frozen=True)
class RolloutResult:
    """Outcome of one greedy evaluation episode."""

    total_reward: float
    steps: int
    success: bool
    info: dict


def greedy_rollout(
    policy: Policy,
    env,
    max_steps: int = 200,
    step_hook: Optional[Callable[[int, object, int], None]] = None,
) -> RolloutResult:
    """Run one episode following ``policy`` greedily.

    ``step_hook(step, state, action)`` — if given — is called before every
    action is applied; inference-time fault injectors use it to corrupt
    buffers mid-episode (the Transient-1 fault mode of Fig. 5).
    """
    state = env.reset()
    total_reward = 0.0
    success = False
    last_info: dict = {}
    steps = 0
    for step in range(max_steps):
        action = policy(state)
        if step_hook is not None:
            step_hook(step, state, action)
        state, reward, done, info = env.step(action)
        total_reward += reward
        last_info = info
        steps = step + 1
        if done:
            success = bool(info.get("success", False))
            break
    return RolloutResult(total_reward=total_reward, steps=steps, success=success, info=last_info)


def greedy_rollouts(
    policy: BatchedPolicy,
    env,
    max_steps: int = 200,
    step_hook: Optional[Callable[[int, np.ndarray, List[object], Sequence[int]], None]] = None,
) -> List[RolloutResult]:
    """Run one greedy episode in every replica of a batched environment.

    The batched counterpart of :func:`greedy_rollout`: ``env`` is a
    :class:`~repro.envs.batched.BatchedEnv` whose replicas run independent
    episodes in lockstep, and ``policy`` selects one action per *active*
    replica each step (replicas whose episode has ended are dropped from the
    batch).  ``step_hook(step, replica_indices, states, actions)`` — if
    given — is called before the actions are applied, mirroring the scalar
    rollout's hook point.

    Each replica's :class:`RolloutResult` is identical to running
    :func:`greedy_rollout` against a scalar environment with that replica's
    policy, which is what lets batched campaigns replace serial ones
    without changing any reported number.
    """
    n_replicas = env.n_replicas
    states: List[object] = list(env.reset_all())
    totals = [0.0] * n_replicas
    steps = [0] * n_replicas
    successes = [False] * n_replicas
    infos: List[dict] = [{} for _ in range(n_replicas)]
    active = list(range(n_replicas))
    for step in range(max_steps):
        if not active:
            break
        indices = np.asarray(active, dtype=np.int64)
        batch_states = [states[i] for i in active]
        actions = policy(step, indices, batch_states)
        if step_hook is not None:
            step_hook(step, indices, batch_states, actions)
        next_states, rewards, dones, step_infos = env.step_many(actions, indices)
        still_active: List[int] = []
        for j, replica in enumerate(active):
            states[replica] = next_states[j]
            totals[replica] += float(rewards[j])
            infos[replica] = step_infos[j]
            steps[replica] = step + 1
            if dones[j]:
                successes[replica] = bool(step_infos[j].get("success", False))
            else:
                still_active.append(replica)
        active = still_active
    return [
        RolloutResult(
            total_reward=totals[r], steps=steps[r], success=successes[r], info=infos[r]
        )
        for r in range(n_replicas)
    ]


def as_batched_policy(policies: Union[Policy, Sequence[Policy]]) -> BatchedPolicy:
    """Adapt scalar per-replica policies to the :data:`BatchedPolicy` protocol.

    ``policies`` is either one scalar policy (shared by every replica) or a
    sequence with one policy per replica.  Policies are queried in replica
    order, so stateful policies (e.g. ones drawing from a per-replica RNG)
    consume their state exactly as they would under scalar rollouts.
    """
    shared = callable(policies)

    def batched(step: int, indices: np.ndarray, states: List[object]) -> List[int]:
        if shared:
            return [int(policies(state)) for state in states]
        return [int(policies[i](state)) for i, state in zip(indices, states)]

    return batched


def evaluate_success_rate(
    policy: Policy,
    env,
    trials: int = 100,
    max_steps: int = 200,
) -> float:
    """Success rate over repeated greedy episodes (Grid World metric)."""
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    successes = 0
    for _ in range(trials):
        if greedy_rollout(policy, env, max_steps=max_steps).success:
            successes += 1
    return successes / trials


def evaluate_mean_metric(
    policy: Policy,
    env,
    metric_key: str,
    trials: int = 10,
    max_steps: int = 500,
) -> float:
    """Average of an ``info``-reported metric over repeated greedy episodes.

    Used for the drone's Mean Safe Flight distance: the drone environment
    reports the distance flown before collision in ``info["flight_distance"]``.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    values = []
    for _ in range(trials):
        result = greedy_rollout(policy, env, max_steps=max_steps)
        if metric_key not in result.info:
            raise KeyError(
                f"environment info does not report {metric_key!r}; got {sorted(result.info)}"
            )
        values.append(float(result.info[metric_key]))
    return float(np.mean(values))


def evaluate_mean_metrics(
    policy: BatchedPolicy,
    env,
    metric_key: str,
    trials: int = 10,
    max_steps: int = 500,
) -> List[float]:
    """Batched :func:`evaluate_mean_metric`: one mean per replica.

    ``env`` is a :class:`~repro.envs.batched.BatchedEnv`; every episode runs
    all replicas in lockstep via :func:`greedy_rollouts`, and replica ``r``'s
    entry equals what :func:`evaluate_mean_metric` would report for that
    replica's policy against a scalar environment.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    values: List[List[float]] = [[] for _ in range(env.n_replicas)]
    for _ in range(trials):
        results = greedy_rollouts(policy, env, max_steps=max_steps)
        for replica, result in enumerate(results):
            if metric_key not in result.info:
                raise KeyError(
                    f"environment info does not report {metric_key!r}; got {sorted(result.info)}"
                )
            values[replica].append(float(result.info[metric_key]))
    return [float(np.mean(replica_values)) for replica_values in values]
