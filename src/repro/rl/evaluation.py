"""Policy evaluation rollouts.

Inference in a learning-based navigation system is a sequential
decision-making process (Sec. 4.1.2): the trained policy is queried at every
step, so the evaluation functions here run full greedy episodes and report
task-level metrics (success, cumulative reward, distance travelled) rather
than single-prediction accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

__all__ = ["RolloutResult", "greedy_rollout", "evaluate_success_rate", "evaluate_mean_metric"]

#: A policy is any callable mapping a state to a discrete action.
Policy = Callable[[object], int]


@dataclass(frozen=True)
class RolloutResult:
    """Outcome of one greedy evaluation episode."""

    total_reward: float
    steps: int
    success: bool
    info: dict


def greedy_rollout(
    policy: Policy,
    env,
    max_steps: int = 200,
    step_hook: Optional[Callable[[int, object, int], None]] = None,
) -> RolloutResult:
    """Run one episode following ``policy`` greedily.

    ``step_hook(step, state, action)`` — if given — is called before every
    action is applied; inference-time fault injectors use it to corrupt
    buffers mid-episode (the Transient-1 fault mode of Fig. 5).
    """
    state = env.reset()
    total_reward = 0.0
    success = False
    last_info: dict = {}
    steps = 0
    for step in range(max_steps):
        action = policy(state)
        if step_hook is not None:
            step_hook(step, state, action)
        state, reward, done, info = env.step(action)
        total_reward += reward
        last_info = info
        steps = step + 1
        if done:
            success = bool(info.get("success", False))
            break
    return RolloutResult(total_reward=total_reward, steps=steps, success=success, info=last_info)


def evaluate_success_rate(
    policy: Policy,
    env,
    trials: int = 100,
    max_steps: int = 200,
) -> float:
    """Success rate over repeated greedy episodes (Grid World metric)."""
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    successes = 0
    for _ in range(trials):
        if greedy_rollout(policy, env, max_steps=max_steps).success:
            successes += 1
    return successes / trials


def evaluate_mean_metric(
    policy: Policy,
    env,
    metric_key: str,
    trials: int = 10,
    max_steps: int = 500,
) -> float:
    """Average of an ``info``-reported metric over repeated greedy episodes.

    Used for the drone's Mean Safe Flight distance: the drone environment
    reports the distance flown before collision in ``info["flight_distance"]``.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    values = []
    for _ in range(trials):
        result = greedy_rollout(policy, env, max_steps=max_steps)
        if metric_key not in result.info:
            raise KeyError(
                f"environment info does not report {metric_key!r}; got {sorted(result.info)}"
            )
        values.append(float(result.info[metric_key]))
    return float(np.mean(values))
