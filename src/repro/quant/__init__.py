"""Fixed-point quantization substrate.

This package models the fixed-point data types used by the paper's
edge accelerator: signed two's-complement ``Q(sign, integer, fraction)``
formats such as ``Q(1,4,11)``, ``Q(1,7,8)`` and ``Q(1,10,5)`` (Fig. 7e) and
the 8-bit formats used for the Grid World policies.

The central abstraction is :class:`~repro.quant.qtensor.QTensor`, which keeps
both the real-valued view and the raw integer (bit-level) view of a tensor in
sync so that hardware faults can be injected at the bit level and observed at
the value level.
"""

from repro.quant.qformat import QFormat, Q8_GRID, Q16_NARROW, Q16_MID, Q16_WIDE
from repro.quant.qtensor import QTensor
from repro.quant.bitops import (
    flip_bits,
    set_bits,
    clear_bits,
    apply_stuck_at,
    random_bit_positions,
)
from repro.quant.statistics import (
    bit_histogram,
    value_histogram,
    bit_level_stats,
    BitStats,
)

__all__ = [
    "QFormat",
    "Q8_GRID",
    "Q16_NARROW",
    "Q16_MID",
    "Q16_WIDE",
    "QTensor",
    "flip_bits",
    "set_bits",
    "clear_bits",
    "apply_stuck_at",
    "random_bit_positions",
    "bit_histogram",
    "value_histogram",
    "bit_level_stats",
    "BitStats",
]
