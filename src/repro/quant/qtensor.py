"""Quantized tensors with a synchronized bit-level view.

A :class:`QTensor` keeps a real-valued numpy array together with its raw
two's-complement integer representation under a given
:class:`~repro.quant.qformat.QFormat`.  Fault injectors mutate the raw view
(bit flips, stuck-at patterns); consumers read the decoded value view.  The
two views are kept consistent: writing values re-encodes the raw words,
mutating raw words re-decodes the values.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from repro.quant.bitops import (
    apply_bit_ops,
    apply_stuck_at,
    flip_bits,
    random_bit_positions,
)
from repro.quant.qformat import QFormat

__all__ = ["QTensor"]


class QTensor:
    """A fixed-point tensor addressable both by value and by bit.

    Parameters
    ----------
    values:
        Real-valued data to quantize into the tensor.
    qformat:
        The fixed-point format.
    name:
        Optional buffer name (e.g. ``"weight"``, ``"activation"``) used by
        the fault-injection framework to address fault locations.
    """

    def __init__(self, values: np.ndarray, qformat: QFormat, name: str = "") -> None:
        self.qformat = qformat
        self.name = name
        values = np.asarray(values, dtype=np.float64)
        self._raw = qformat.encode(values)
        self._shape = values.shape

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_raw(cls, raw: np.ndarray, qformat: QFormat, name: str = "") -> "QTensor":
        """Build a QTensor directly from raw two's-complement words."""
        obj = cls.__new__(cls)
        obj.qformat = qformat
        obj.name = name
        raw = np.asarray(raw, dtype=np.int64) & qformat.word_mask
        obj._raw = raw
        obj._shape = raw.shape
        return obj

    @classmethod
    def zeros(cls, shape: Tuple[int, ...], qformat: QFormat, name: str = "") -> "QTensor":
        """Create an all-zero QTensor with the given shape."""
        return cls(np.zeros(shape, dtype=np.float64), qformat, name=name)

    def copy(self) -> "QTensor":
        """Deep copy of the tensor (raw words copied)."""
        return QTensor.from_raw(self._raw.copy(), self.qformat, name=self.name)

    def replicate(self, n_replicas: int) -> "QTensor":
        """Stack ``n_replicas`` copies along a new leading replica axis.

        The raw words are tiled, so every replica slice is bit-identical to
        this tensor — the starting point for batched fault injection, where
        each replica's bits are then corrupted independently (see
        :func:`repro.core.sites.apply_patterns_stacked`).
        """
        if n_replicas <= 0:
            raise ValueError(f"n_replicas must be positive, got {n_replicas}")
        raw = np.broadcast_to(self._raw, (n_replicas,) + self._shape).copy()
        return QTensor.from_raw(raw, self.qformat, name=self.name)

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self._shape

    @property
    def size(self) -> int:
        return int(np.prod(self._shape)) if self._shape else 1

    @property
    def values(self) -> np.ndarray:
        """Decoded real-valued view (a fresh array each call)."""
        return self.qformat.decode(self._raw)

    @values.setter
    def values(self, new_values: np.ndarray) -> None:
        new_values = np.asarray(new_values, dtype=np.float64)
        if new_values.shape != self._shape:
            raise ValueError(
                f"shape mismatch: tensor is {self._shape}, got {new_values.shape}"
            )
        self._raw = self.qformat.encode(new_values)

    @property
    def raw(self) -> np.ndarray:
        """Raw two's-complement word view (a copy; use setters to mutate)."""
        return self._raw.copy()

    @raw.setter
    def raw(self, new_raw: np.ndarray) -> None:
        new_raw = np.asarray(new_raw, dtype=np.int64)
        if new_raw.shape != self._shape:
            raise ValueError(
                f"shape mismatch: tensor is {self._shape}, got {new_raw.shape}"
            )
        self._raw = new_raw & self.qformat.word_mask

    # ------------------------------------------------------------------ #
    # Fault primitives
    # ------------------------------------------------------------------ #
    def inject_bit_flips(
        self,
        element_indices: np.ndarray,
        bit_positions: np.ndarray,
    ) -> None:
        """Flip the addressed bits in place (transient fault)."""
        self._raw = flip_bits(
            self._raw, element_indices, bit_positions, self.qformat.total_bits
        )

    def inject_stuck_at(
        self,
        element_indices: np.ndarray,
        bit_positions: np.ndarray,
        stuck_value: int,
    ) -> None:
        """Force the addressed bits to 0 or 1 in place (permanent fault)."""
        self._raw = apply_stuck_at(
            self._raw,
            element_indices,
            bit_positions,
            stuck_value,
            self.qformat.total_bits,
        )

    def inject_bit_ops(
        self,
        element_indices: np.ndarray,
        bit_positions: np.ndarray,
        op_codes: np.ndarray,
    ) -> None:
        """Apply mixed flip/set/clear operations in one fused pass.

        ``op_codes`` uses the :data:`~repro.quant.bitops.OP_FLIP` /
        ``OP_SET`` / ``OP_CLEAR`` codes; sites carrying different codes must
        be distinct (see :func:`~repro.quant.bitops.apply_bit_ops`).  This is
        the batched engine's single-copy injection primitive.
        """
        self._raw = apply_bit_ops(
            self._raw,
            element_indices,
            bit_positions,
            op_codes,
            self.qformat.total_bits,
        )

    def inject_random_bit_flips(
        self, bit_error_rate: float, rng: np.random.Generator
    ) -> int:
        """Flip a random set of bits at the given BER.  Returns the flip count."""
        elements, bits = random_bit_positions(
            self.size, self.qformat.total_bits, bit_error_rate, rng
        )
        if elements.size:
            self.inject_bit_flips(elements, bits)
        return int(elements.size)

    def sample_fault_sites(
        self, bit_error_rate: float, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample (element, bit) fault sites at the given BER without injecting."""
        return random_bit_positions(
            self.size, self.qformat.total_bits, bit_error_rate, rng
        )

    # ------------------------------------------------------------------ #
    # Inspection helpers
    # ------------------------------------------------------------------ #
    def bit_counts(self) -> Tuple[int, int]:
        """Return (number of 0 bits, number of 1 bits) across the tensor.

        Used for the bit-level sparsity statistics of Fig. 2b / 2d, which
        explain why stuck-at-1 faults are more damaging than stuck-at-0.
        """
        total_bits = self.qformat.total_bits
        ones = 0
        flat = self._raw.reshape(-1)
        for bit in range(total_bits):
            ones += int(np.count_nonzero(flat & (np.int64(1) << bit)))
        zeros = self.size * total_bits - ones
        return zeros, ones

    def value_range(self) -> Tuple[float, float]:
        """Minimum and maximum decoded values."""
        vals = self.values
        return float(vals.min()), float(vals.max())

    def out_of_range_mask(self, low: float, high: float) -> np.ndarray:
        """Boolean mask of elements whose decoded value is outside [low, high]."""
        vals = self.values
        return (vals < low) | (vals > high)

    def sign_integer_words(self) -> np.ndarray:
        """Raw words masked to sign+integer bits only.

        The range-based anomaly detector compares these truncated words
        against the instrumented bounds so the comparator hardware can skip
        the fractional bits entirely (Sec. 5.2).
        """
        return self._raw & self.qformat.sign_and_integer_mask

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.name!r}" if self.name else ""
        return f"QTensor({self.qformat},{label} shape={self._shape})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QTensor):
            return NotImplemented
        return (
            self.qformat == other.qformat
            and self._shape == other._shape
            and bool(np.array_equal(self._raw, other._raw))
        )

    def __hash__(self) -> int:  # QTensors are mutable; identity hash
        return id(self)
