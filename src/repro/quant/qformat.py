"""Fixed-point format descriptors.

The paper quantizes policies to fixed-point two's-complement formats written
``Q(sign, integer, fraction)``.  For example ``Q(1,4,11)`` is a 16-bit word
with one sign bit, four integer bits and eleven fractional bits, representing
values in ``[-16, 16 - 2**-11]`` with a resolution of ``2**-11``.

Formats are immutable value objects; all numeric conversion logic lives here
so that :class:`~repro.quant.qtensor.QTensor` stays a thin container.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import kernels

__all__ = ["QFormat", "Q8_GRID", "Q16_NARROW", "Q16_MID", "Q16_WIDE"]


@dataclass(frozen=True)
class QFormat:
    """A signed two's-complement fixed-point format ``Q(sign, integer, fraction)``.

    Parameters
    ----------
    sign_bits:
        Number of sign bits.  The paper always uses 1; 0 is allowed for
        unsigned experiments.
    integer_bits:
        Number of integer (magnitude) bits.
    fraction_bits:
        Number of fractional bits.  The scale factor is ``2**fraction_bits``.
    """

    sign_bits: int
    integer_bits: int
    fraction_bits: int

    def __post_init__(self) -> None:
        if self.sign_bits not in (0, 1):
            raise ValueError(f"sign_bits must be 0 or 1, got {self.sign_bits}")
        if self.integer_bits < 0 or self.fraction_bits < 0:
            raise ValueError("integer_bits and fraction_bits must be non-negative")
        if self.total_bits < 2:
            raise ValueError("a QFormat needs at least 2 bits")
        if self.total_bits > 62:
            raise ValueError("QFormat wider than 62 bits is not supported")
        # encode/decode run once per layer per forward pass, so the derived
        # constants are cached as numpy scalars instead of being recomputed
        # through the Python-level properties on every call.  The scale is a
        # power of two, so multiplying by the cached reciprocal is exactly
        # the division it replaces.
        object.__setattr__(self, "_scale", 2.0 ** (-self.fraction_bits))
        object.__setattr__(self, "_inv_scale", 2.0 ** self.fraction_bits)
        object.__setattr__(self, "_min_raw_i64", np.int64(self.min_raw))
        object.__setattr__(self, "_max_raw_i64", np.int64(self.max_raw))
        object.__setattr__(self, "_word_mask_i64", np.int64(self.word_mask))
        object.__setattr__(
            self,
            "_sign_bit_i64",
            np.int64(1 << (self.total_bits - 1)) if self.sign_bits else np.int64(0),
        )
        object.__setattr__(self, "_modulus_i64", np.int64(1 << self.total_bits))

    # ------------------------------------------------------------------ #
    # Derived properties
    # ------------------------------------------------------------------ #
    @property
    def total_bits(self) -> int:
        """Total word width in bits."""
        return self.sign_bits + self.integer_bits + self.fraction_bits

    @property
    def signed(self) -> bool:
        """Whether the format carries a sign bit."""
        return self.sign_bits == 1

    @property
    def scale(self) -> float:
        """Value of one least-significant bit."""
        return 2.0 ** (-self.fraction_bits)

    @property
    def max_value(self) -> float:
        """Largest representable value."""
        return (self.max_raw) * self.scale

    @property
    def min_value(self) -> float:
        """Smallest (most negative) representable value."""
        return (self.min_raw) * self.scale

    @property
    def max_raw(self) -> int:
        """Largest raw integer word (as a signed integer)."""
        if self.signed:
            return (1 << (self.total_bits - 1)) - 1
        return (1 << self.total_bits) - 1

    @property
    def min_raw(self) -> int:
        """Smallest raw integer word (as a signed integer)."""
        if self.signed:
            return -(1 << (self.total_bits - 1))
        return 0

    @property
    def sign_bit_position(self) -> int:
        """Bit index of the sign bit (MSB), or -1 for unsigned formats."""
        return self.total_bits - 1 if self.signed else -1

    @property
    def integer_bit_positions(self) -> range:
        """Bit indices (LSB = 0) covered by the integer part."""
        return range(self.fraction_bits, self.fraction_bits + self.integer_bits)

    @property
    def fraction_bit_positions(self) -> range:
        """Bit indices (LSB = 0) covered by the fractional part."""
        return range(0, self.fraction_bits)

    @property
    def sign_and_integer_mask(self) -> int:
        """Bit mask selecting the sign and integer bits.

        The paper's anomaly detector compares only these bits (Sec. 5.2) to
        reduce hardware cost, since the fractional part has little impact.
        """
        high_bits = self.sign_bits + self.integer_bits
        return ((1 << high_bits) - 1) << self.fraction_bits

    @property
    def word_mask(self) -> int:
        """Mask of all bits in the word."""
        return (1 << self.total_bits) - 1

    # ------------------------------------------------------------------ #
    # Value <-> raw conversion
    # ------------------------------------------------------------------ #
    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Quantize real values to this format, returning real-valued output.

        Values outside the representable range saturate.  Equivalent to
        ``decode(encode(values))`` for every input (including non-finite
        ones, which go through the same int64 conversion): after clipping,
        the raw words already equal their decoded signed value, so the
        two's-complement mask/unmask round trip is skipped.

        Dispatches through :mod:`repro.kernels` (as do :meth:`encode` /
        :meth:`decode` and the fused helpers below), so the active kernel
        backend executes it; every backend is bit-identical to the numpy
        reference.
        """
        values = np.asarray(values, dtype=np.float64)
        return kernels.quantize(
            values, self._inv_scale, self._scale, self._min_raw_i64, self._max_raw_i64
        )

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Encode real values into raw unsigned integer words (two's complement).

        Returns an ``int64`` array where each element holds the word's bit
        pattern in its low ``total_bits`` bits.
        """
        values = np.asarray(values, dtype=np.float64)
        return kernels.encode(
            values,
            self._inv_scale,
            self._min_raw_i64,
            self._max_raw_i64,
            self._word_mask_i64,
        )

    def decode(self, raw: np.ndarray) -> np.ndarray:
        """Decode raw unsigned words (two's complement) back to real values."""
        raw = np.asarray(raw, dtype=np.int64)
        return kernels.decode(
            raw,
            self._word_mask_i64,
            self._sign_bit_i64,
            self._modulus_i64,
            self._scale,
        )

    # ------------------------------------------------------------------ #
    # Fused forward-path helpers (kernel-dispatched)
    # ------------------------------------------------------------------ #
    def bias_quantize(self, y: np.ndarray, bias: np.ndarray) -> np.ndarray:
        """``quantize(y + bias)`` with a shared trailing-axis bias, fused."""
        return kernels.bias_quantize(
            np.asarray(y, dtype=np.float64),
            np.asarray(bias, dtype=np.float64),
            self._inv_scale,
            self._scale,
            self._min_raw_i64,
            self._max_raw_i64,
        )

    def bias_quantize_stacked(self, y: np.ndarray, bias: np.ndarray) -> np.ndarray:
        """``quantize(y + bias[:, None, :])`` for a per-replica bias stack, fused."""
        return kernels.bias_quantize_stacked(
            np.asarray(y, dtype=np.float64),
            np.asarray(bias, dtype=np.float64),
            self._inv_scale,
            self._scale,
            self._min_raw_i64,
            self._max_raw_i64,
        )

    def matmul_bias_quantize(
        self, x: np.ndarray, w: np.ndarray, b: np.ndarray
    ) -> np.ndarray:
        """Per-replica ``quantize(x @ w + b)``, fully fused.

        Only bit-identical across backends when the operands are values of
        this format and :meth:`supports_exact_matmul` holds for the
        contraction length — callers must check it and fall back to
        ``np.matmul`` + :meth:`bias_quantize_stacked` otherwise.
        """
        return kernels.matmul_bias_quantize(
            np.asarray(x, dtype=np.float64),
            np.asarray(w, dtype=np.float64),
            np.asarray(b, dtype=np.float64),
            self._inv_scale,
            self._scale,
            self._min_raw_i64,
            self._max_raw_i64,
        )

    def relu_quantize(self, values: np.ndarray) -> np.ndarray:
        """``quantize(relu(values))``, fused (NaN propagates like ``np.maximum``)."""
        return kernels.relu_quantize(
            np.asarray(values, dtype=np.float64),
            self._inv_scale,
            self._scale,
            self._min_raw_i64,
            self._max_raw_i64,
        )

    def supports_exact_matmul(self, in_features: int) -> bool:
        """Whether a length-``in_features`` dot of values of this format is exact.

        Quantized values are integer multiples of ``u = 2**-fraction_bits``
        inside ``[min_value, max_value]``; products are multiples of ``u**2``
        and every partial sum of ``in_features`` products plus a bias is
        bounded by ``in_features * maxv**2 + maxv``.  When that bound (in
        units of ``u**2``) stays within float64's exact-integer window, every
        summation order — BLAS, FMA, or a plain loop — produces bit-identical
        results, which is what licenses the fused matmul kernel.  The
        ``2**52`` margin is half the true ``2**53`` window.
        """
        maxv = max(abs(self.min_value), abs(self.max_value))
        return in_features * maxv * maxv + maxv <= 2.0 ** (52 - 2 * self.fraction_bits)

    def representable(self, values: np.ndarray, rtol: float = 0.0) -> np.ndarray:
        """Boolean mask of values that fall inside the representable range."""
        values = np.asarray(values, dtype=np.float64)
        lo = self.min_value * (1.0 + rtol)
        hi = self.max_value * (1.0 + rtol)
        return (values >= lo) & (values <= hi)

    # ------------------------------------------------------------------ #
    # Presentation helpers
    # ------------------------------------------------------------------ #
    def __str__(self) -> str:
        return f"Q({self.sign_bits},{self.integer_bits},{self.fraction_bits})"

    @classmethod
    def parse(cls, spec: str) -> "QFormat":
        """Parse a string like ``"Q(1,4,11)"`` or ``"1,4,11"`` into a QFormat."""
        text = spec.strip()
        if text.upper().startswith("Q"):
            text = text[1:]
        text = text.strip("() ")
        parts = [p.strip() for p in text.split(",")]
        if len(parts) != 3:
            raise ValueError(f"cannot parse QFormat spec {spec!r}")
        sign, integer, fraction = (int(p) for p in parts)
        return cls(sign, integer, fraction)


#: 8-bit format used for the Grid World policies (Sec. 4.1): Q(1,3,4)
#: covers roughly [-8, 8) with 1/16 resolution, matching the tabular value
#: histogram range in Fig. 2b.
Q8_GRID = QFormat(1, 3, 4)

#: The three 16-bit formats compared in Fig. 7e.
Q16_NARROW = QFormat(1, 4, 11)
Q16_MID = QFormat(1, 7, 8)
Q16_WIDE = QFormat(1, 10, 5)
