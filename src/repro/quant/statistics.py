"""Value and bit-level statistics of quantized tensors.

These reproduce the histograms of Fig. 2b (tabular Q values) and Fig. 2d (NN
weights) together with the 0-bit / 1-bit fractions that the paper uses to
explain the asymmetry between stuck-at-0 and stuck-at-1 faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.quant.qtensor import QTensor

__all__ = ["BitStats", "bit_histogram", "value_histogram", "bit_level_stats"]


@dataclass(frozen=True)
class BitStats:
    """Summary of the bit-level composition of a quantized tensor."""

    zero_bits: int
    one_bits: int
    zero_fraction: float
    one_fraction: float
    zero_to_one_ratio: float
    min_value: float
    max_value: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view convenient for result tables."""
        return {
            "zero_bits": self.zero_bits,
            "one_bits": self.one_bits,
            "zero_fraction": self.zero_fraction,
            "one_fraction": self.one_fraction,
            "zero_to_one_ratio": self.zero_to_one_ratio,
            "min_value": self.min_value,
            "max_value": self.max_value,
        }


def bit_level_stats(tensor: QTensor) -> BitStats:
    """Compute 0/1 bit fractions and value range for a quantized tensor."""
    zeros, ones = tensor.bit_counts()
    total = zeros + ones
    if total == 0:
        raise ValueError("cannot compute bit statistics of an empty tensor")
    lo, hi = tensor.value_range()
    ratio = zeros / ones if ones else float("inf")
    return BitStats(
        zero_bits=zeros,
        one_bits=ones,
        zero_fraction=zeros / total,
        one_fraction=ones / total,
        zero_to_one_ratio=ratio,
        min_value=lo,
        max_value=hi,
    )


def bit_histogram(tensor: QTensor) -> np.ndarray:
    """Per-bit-position count of set bits, LSB first.

    Element ``i`` is the number of words whose bit ``i`` is 1.  Useful for
    checking which bit positions are populated (MSBs of sparse NN weights are
    mostly zero, which is why stuck-at-1 faults there are so damaging).
    """
    total_bits = tensor.qformat.total_bits
    flat = tensor.raw.reshape(-1)
    counts = np.empty(total_bits, dtype=np.int64)
    for bit in range(total_bits):
        counts[bit] = np.count_nonzero(flat & (np.int64(1) << bit))
    return counts


def value_histogram(
    tensor: QTensor, bins: int = 64, value_range: Tuple[float, float] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram of the decoded values (counts, bin_edges).

    Mirrors Fig. 2b / 2d: tabular values span a wide range not centred at
    zero, while NN weights cluster narrowly around zero.
    """
    vals = tensor.values.reshape(-1)
    if value_range is None:
        value_range = (tensor.qformat.min_value, tensor.qformat.max_value)
    counts, edges = np.histogram(vals, bins=bins, range=value_range)
    return counts, edges
