"""Bit-level operations on raw fixed-point words.

These functions operate on ``int64`` numpy arrays holding two's-complement
words in their low bits (the raw representation used by
:class:`~repro.quant.qtensor.QTensor`).  They implement the physical fault
mechanisms of the paper's fault model (Sec. 3.2): transient bit-flips and
permanent stuck-at-0 / stuck-at-1 faults.

The scatter itself dispatches through :mod:`repro.kernels`, so the active
kernel backend (numpy reference or numba JIT) executes it;
:func:`apply_bit_ops` additionally fuses mixed flip/set/clear site lists
into one pass over the buffer (the batched engine's
:func:`~repro.core.sites.apply_patterns_stacked` uses it to corrupt B
replicas in a single copy + scatter instead of one per fault kind).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro import kernels
from repro.kernels import OP_CLEAR, OP_FLIP, OP_SET

__all__ = [
    "flip_bits",
    "set_bits",
    "clear_bits",
    "apply_stuck_at",
    "apply_bit_ops",
    "random_bit_positions",
    "OP_FLIP",
    "OP_SET",
    "OP_CLEAR",
]


def _validate_sites(
    raw: np.ndarray,
    element_indices: np.ndarray,
    bit_positions: np.ndarray,
    total_bits: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    raw = np.asarray(raw, dtype=np.int64)
    element_indices = np.asarray(element_indices, dtype=np.int64)
    bit_positions = np.asarray(bit_positions, dtype=np.int64)
    if element_indices.shape != bit_positions.shape:
        raise ValueError("element_indices and bit_positions must have the same shape")
    if bit_positions.size and (bit_positions.min() < 0 or bit_positions.max() >= total_bits):
        raise ValueError(
            f"bit positions must lie in [0, {total_bits}), got range "
            f"[{bit_positions.min()}, {bit_positions.max()}]"
        )
    if element_indices.size and (
        element_indices.min() < 0 or element_indices.max() >= raw.size
    ):
        raise ValueError(
            f"element indices must lie in [0, {raw.size}) for a buffer of "
            f"{raw.size} elements, got range "
            f"[{element_indices.min()}, {element_indices.max()}]"
        )
    return raw, element_indices, bit_positions


def flip_bits(
    raw: np.ndarray,
    element_indices: np.ndarray,
    bit_positions: np.ndarray,
    total_bits: int,
) -> np.ndarray:
    """Flip ``bit_positions[i]`` of the flat element ``element_indices[i]``.

    Models a transient single-event upset: the logical value of the targeted
    bit is inverted.  Returns a new array; the input is not modified.
    """
    raw, element_indices, bit_positions = _validate_sites(
        raw, element_indices, bit_positions, total_bits
    )
    out = raw.copy()
    kernels.scatter_bits(out.reshape(-1), element_indices, bit_positions, OP_FLIP)
    return out


def set_bits(
    raw: np.ndarray,
    element_indices: np.ndarray,
    bit_positions: np.ndarray,
    total_bits: int,
) -> np.ndarray:
    """Force the targeted bits to logic 1 (stuck-at-1 behaviour)."""
    raw, element_indices, bit_positions = _validate_sites(
        raw, element_indices, bit_positions, total_bits
    )
    out = raw.copy()
    kernels.scatter_bits(out.reshape(-1), element_indices, bit_positions, OP_SET)
    return out


def clear_bits(
    raw: np.ndarray,
    element_indices: np.ndarray,
    bit_positions: np.ndarray,
    total_bits: int,
) -> np.ndarray:
    """Force the targeted bits to logic 0 (stuck-at-0 behaviour)."""
    raw, element_indices, bit_positions = _validate_sites(
        raw, element_indices, bit_positions, total_bits
    )
    out = raw.copy()
    kernels.scatter_bits(out.reshape(-1), element_indices, bit_positions, OP_CLEAR)
    return out


def apply_stuck_at(
    raw: np.ndarray,
    element_indices: np.ndarray,
    bit_positions: np.ndarray,
    stuck_value: int,
    total_bits: int,
) -> np.ndarray:
    """Apply a stuck-at fault pattern to the targeted bits.

    Parameters
    ----------
    stuck_value:
        0 for stuck-at-0 or 1 for stuck-at-1.
    """
    if stuck_value not in (0, 1):
        raise ValueError(f"stuck_value must be 0 or 1, got {stuck_value}")
    if stuck_value == 1:
        return set_bits(raw, element_indices, bit_positions, total_bits)
    return clear_bits(raw, element_indices, bit_positions, total_bits)


def apply_bit_ops(
    raw: np.ndarray,
    element_indices: np.ndarray,
    bit_positions: np.ndarray,
    op_codes: np.ndarray,
    total_bits: int,
) -> np.ndarray:
    """Apply mixed flip/set/clear operations in one fused pass.

    ``op_codes[i]`` (one of :data:`OP_FLIP` / :data:`OP_SET` /
    :data:`OP_CLEAR`) is the operation applied to site
    ``(element_indices[i], bit_positions[i])``.  Sites carrying *different*
    op codes must be distinct; the result is then independent of site order
    and bit-identical to applying each op kind through its own
    :func:`flip_bits` / :func:`set_bits` / :func:`clear_bits` call.  Returns
    a new array; the input is not modified.
    """
    raw, element_indices, bit_positions = _validate_sites(
        raw, element_indices, bit_positions, total_bits
    )
    op_codes = np.asarray(op_codes, dtype=np.int64)
    if op_codes.shape != bit_positions.shape:
        raise ValueError("op_codes and bit_positions must have the same shape")
    if op_codes.size and not np.isin(op_codes, (OP_FLIP, OP_SET, OP_CLEAR)).all():
        raise ValueError(
            f"op_codes must be OP_FLIP ({OP_FLIP}), OP_SET ({OP_SET}) or "
            f"OP_CLEAR ({OP_CLEAR})"
        )
    out = raw.copy()
    if op_codes.size:
        kernels.inject_sites(out.reshape(-1), element_indices, bit_positions, op_codes)
    return out


#: Below this population the exact historical ``rng.choice`` draw is kept, so
#: every seed used by the existing figures and tests keeps sampling the exact
#: same fault sites.  Above it, ``rng.choice(population, replace=False)``
#: would materialize and permute the full bit population, so the
#: rejection-sampling fast path takes over.
_CHOICE_POPULATION_LIMIT = 1 << 20


def _sample_without_replacement(
    population: int, n_faults: int, rng: np.random.Generator
) -> np.ndarray:
    """First ``n_faults`` distinct values of a uniform with-replacement stream.

    The first n distinct values of an i.i.d. uniform stream are a uniform
    sample without replacement (in order), so this is unbiased.  Memory is
    ``O(n_faults)`` per round instead of ``O(population)``; with
    ``n_faults << population`` duplicates are rare and one round almost
    always suffices.
    """
    out = np.empty(0, dtype=np.int64)
    while out.size < n_faults:
        need = n_faults - out.size
        draws = rng.integers(0, population, size=need + max(16, need // 8), dtype=np.int64)
        combined = np.concatenate([out, draws])
        # Dedup preserving first-occurrence order, so the result is a prefix
        # of the distinct-value stream regardless of how many rounds ran.
        _, first = np.unique(combined, return_index=True)
        out = combined[np.sort(first)]
    return out[:n_faults]


def random_bit_positions(
    num_elements: int,
    total_bits: int,
    bit_error_rate: float,
    rng: np.random.Generator,
    max_faults: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample fault sites for a given bit error rate.

    The total bit population is ``num_elements * total_bits``.  The number of
    faulty bits is drawn so that the expected fraction equals
    ``bit_error_rate``; sites are sampled without replacement so no bit is
    selected twice within one injection.

    Seed compatibility: for populations up to ``2**20`` bits this draws
    through ``rng.choice(population, replace=False)`` exactly as it always
    has, so existing seeds reproduce their historical fault sites
    bit-for-bit (every policy in the repo's figures is far below the
    threshold).  Larger populations switch to a rejection-sampling path that
    never materializes the population — still uniform without replacement,
    but a *different* (pinned, regression-tested) draw for the same seed.

    Returns
    -------
    (element_indices, bit_positions):
        Parallel arrays describing each faulty bit.
    """
    if not 0.0 <= bit_error_rate <= 1.0:
        raise ValueError(f"bit_error_rate must be in [0, 1], got {bit_error_rate}")
    if num_elements < 0:
        raise ValueError("num_elements must be non-negative")
    population = num_elements * total_bits
    if population == 0 or bit_error_rate == 0.0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

    expected = population * bit_error_rate
    # Round stochastically so tiny BERs on small tensors still inject
    # sometimes rather than always rounding to zero.
    n_faults = int(np.floor(expected))
    if rng.random() < expected - n_faults:
        n_faults += 1
    n_faults = min(n_faults, population)
    if max_faults is not None:
        n_faults = min(n_faults, max_faults)
    if n_faults == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

    if population <= _CHOICE_POPULATION_LIMIT or n_faults * 8 >= population:
        flat_sites = rng.choice(population, size=n_faults, replace=False)
    else:
        flat_sites = _sample_without_replacement(population, n_faults, rng)
    element_indices = (flat_sites // total_bits).astype(np.int64)
    bit_positions = (flat_sites % total_bits).astype(np.int64)
    return element_indices, bit_positions
