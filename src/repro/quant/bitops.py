"""Bit-level operations on raw fixed-point words.

These functions operate on ``int64`` numpy arrays holding two's-complement
words in their low bits (the raw representation used by
:class:`~repro.quant.qtensor.QTensor`).  They implement the physical fault
mechanisms of the paper's fault model (Sec. 3.2): transient bit-flips and
permanent stuck-at-0 / stuck-at-1 faults.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "flip_bits",
    "set_bits",
    "clear_bits",
    "apply_stuck_at",
    "random_bit_positions",
]


def _validate(raw: np.ndarray, positions: np.ndarray, total_bits: int) -> Tuple[np.ndarray, np.ndarray]:
    raw = np.asarray(raw, dtype=np.int64)
    positions = np.asarray(positions, dtype=np.int64)
    if positions.size and (positions.min() < 0 or positions.max() >= total_bits):
        raise ValueError(
            f"bit positions must lie in [0, {total_bits}), got range "
            f"[{positions.min()}, {positions.max()}]"
        )
    return raw, positions


def flip_bits(
    raw: np.ndarray,
    element_indices: np.ndarray,
    bit_positions: np.ndarray,
    total_bits: int,
) -> np.ndarray:
    """Flip ``bit_positions[i]`` of the flat element ``element_indices[i]``.

    Models a transient single-event upset: the logical value of the targeted
    bit is inverted.  Returns a new array; the input is not modified.
    """
    raw, bit_positions = _validate(raw, bit_positions, total_bits)
    out = raw.copy()
    flat = out.reshape(-1)
    element_indices = np.asarray(element_indices, dtype=np.int64)
    if element_indices.shape != bit_positions.shape:
        raise ValueError("element_indices and bit_positions must have the same shape")
    np.bitwise_xor.at(flat, element_indices, np.int64(1) << bit_positions)
    return out


def set_bits(
    raw: np.ndarray,
    element_indices: np.ndarray,
    bit_positions: np.ndarray,
    total_bits: int,
) -> np.ndarray:
    """Force the targeted bits to logic 1 (stuck-at-1 behaviour)."""
    raw, bit_positions = _validate(raw, bit_positions, total_bits)
    out = raw.copy()
    flat = out.reshape(-1)
    element_indices = np.asarray(element_indices, dtype=np.int64)
    np.bitwise_or.at(flat, element_indices, np.int64(1) << bit_positions)
    return out


def clear_bits(
    raw: np.ndarray,
    element_indices: np.ndarray,
    bit_positions: np.ndarray,
    total_bits: int,
) -> np.ndarray:
    """Force the targeted bits to logic 0 (stuck-at-0 behaviour)."""
    raw, bit_positions = _validate(raw, bit_positions, total_bits)
    out = raw.copy()
    flat = out.reshape(-1)
    element_indices = np.asarray(element_indices, dtype=np.int64)
    np.bitwise_and.at(flat, element_indices, ~(np.int64(1) << bit_positions))
    return out


def apply_stuck_at(
    raw: np.ndarray,
    element_indices: np.ndarray,
    bit_positions: np.ndarray,
    stuck_value: int,
    total_bits: int,
) -> np.ndarray:
    """Apply a stuck-at fault pattern to the targeted bits.

    Parameters
    ----------
    stuck_value:
        0 for stuck-at-0 or 1 for stuck-at-1.
    """
    if stuck_value not in (0, 1):
        raise ValueError(f"stuck_value must be 0 or 1, got {stuck_value}")
    if stuck_value == 1:
        return set_bits(raw, element_indices, bit_positions, total_bits)
    return clear_bits(raw, element_indices, bit_positions, total_bits)


def random_bit_positions(
    num_elements: int,
    total_bits: int,
    bit_error_rate: float,
    rng: np.random.Generator,
    max_faults: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample fault sites for a given bit error rate.

    The total bit population is ``num_elements * total_bits``.  The number of
    faulty bits is drawn so that the expected fraction equals
    ``bit_error_rate``; sites are sampled without replacement so no bit is
    selected twice within one injection.

    Returns
    -------
    (element_indices, bit_positions):
        Parallel arrays describing each faulty bit.
    """
    if not 0.0 <= bit_error_rate <= 1.0:
        raise ValueError(f"bit_error_rate must be in [0, 1], got {bit_error_rate}")
    if num_elements < 0:
        raise ValueError("num_elements must be non-negative")
    population = num_elements * total_bits
    if population == 0 or bit_error_rate == 0.0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

    expected = population * bit_error_rate
    # Round stochastically so tiny BERs on small tensors still inject
    # sometimes rather than always rounding to zero.
    n_faults = int(np.floor(expected))
    if rng.random() < expected - n_faults:
        n_faults += 1
    n_faults = min(n_faults, population)
    if max_faults is not None:
        n_faults = min(n_faults, max_faults)
    if n_faults == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

    flat_sites = rng.choice(population, size=n_faults, replace=False)
    element_indices = (flat_sites // total_bits).astype(np.int64)
    bit_positions = (flat_sites % total_bits).astype(np.int64)
    return element_indices, bit_positions
