"""Optimizers for the numpy NN substrate."""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

import numpy as np

from repro.nn.network import Sequential

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer operating on a :class:`~repro.nn.network.Sequential`.

    Parameters
    ----------
    network:
        The network whose parameters will be updated in place.
    learning_rate:
        Step size.
    frozen:
        Iterable of parameter-name prefixes to exclude from updates.  The
        drone policy fine-tunes only its last two layers online (transfer
        learning, Sec. 4.2.1); freezing the convolutional layers reproduces
        that setup.
    """

    def __init__(
        self,
        network: Sequential,
        learning_rate: float = 1e-3,
        frozen: Optional[Iterable[str]] = None,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        self.network = network
        self.learning_rate = learning_rate
        self.frozen: Set[str] = set(frozen or ())

    def freeze(self, prefix: str) -> None:
        """Exclude parameters whose name starts with ``prefix`` from updates."""
        self.frozen.add(prefix)

    def unfreeze(self, prefix: str) -> None:
        """Re-enable updates for parameters matching ``prefix``."""
        self.frozen.discard(prefix)

    def _is_frozen(self, name: str) -> bool:
        return any(name.startswith(prefix) for prefix in self.frozen)

    def step(self) -> None:
        """Apply one update using the gradients currently stored in the network."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        network: Sequential,
        learning_rate: float = 1e-2,
        momentum: float = 0.0,
        frozen: Optional[Iterable[str]] = None,
    ) -> None:
        super().__init__(network, learning_rate, frozen)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity: Dict[str, np.ndarray] = {}

    def step(self) -> None:
        params = self.network.named_params()
        grads = self.network.named_grads()
        for name, param in params.items():
            if self._is_frozen(name):
                continue
            grad = grads.get(name)
            if grad is None:
                continue
            if self.momentum:
                vel = self._velocity.setdefault(name, np.zeros_like(param))
                vel *= self.momentum
                vel -= self.learning_rate * grad
                param += vel
            else:
                param -= self.learning_rate * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        network: Sequential,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        frozen: Optional[Iterable[str]] = None,
    ) -> None:
        super().__init__(network, learning_rate, frozen)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: Dict[str, np.ndarray] = {}
        self._v: Dict[str, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        params = self.network.named_params()
        grads = self.network.named_grads()
        for name, param in params.items():
            if self._is_frozen(name):
                continue
            grad = grads.get(name)
            if grad is None:
                continue
            m = self._m.setdefault(name, np.zeros_like(param))
            v = self._v.setdefault(name, np.zeros_like(param))
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / (1.0 - self.beta1**self._t)
            v_hat = v / (1.0 - self.beta2**self._t)
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)
