"""Pure-numpy neural-network substrate.

The paper's NN-based policies (a small MLP Q-network for Grid World and the
C3F2 convolutional policy for drone navigation) run on an edge accelerator
with explicit input / filter (weight) / output (activation) buffers.  This
package implements:

* the layers and training machinery needed to learn those policies
  (:mod:`repro.nn.layers`, :mod:`repro.nn.network`, :mod:`repro.nn.optim`,
  :mod:`repro.nn.losses`), and
* an explicit accelerator buffer model (:mod:`repro.nn.buffers`) in which
  every tensor that the fault model targets lives in a named, quantized
  buffer that the fault injector can mutate at the bit level.
"""

from repro.nn.layers import (
    Layer,
    Dense,
    Conv2D,
    MaxPool2D,
    ReLU,
    Flatten,
)
from repro.nn.network import Sequential
from repro.nn.optim import SGD, Adam
from repro.nn.losses import mse_loss, huber_loss
from repro.nn.initializers import he_uniform, glorot_uniform, zeros_init
from repro.nn.buffers import (
    BatchedQuantizedExecutor,
    BufferSet,
    LayerRangeProfile,
    QuantizedExecutor,
)

__all__ = [
    "Layer",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "ReLU",
    "Flatten",
    "Sequential",
    "SGD",
    "Adam",
    "mse_loss",
    "huber_loss",
    "he_uniform",
    "glorot_uniform",
    "zeros_init",
    "BufferSet",
    "QuantizedExecutor",
    "BatchedQuantizedExecutor",
    "LayerRangeProfile",
]
