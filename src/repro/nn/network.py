"""Sequential network container."""

from __future__ import annotations

import copy
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.layers import Layer

__all__ = ["Sequential"]

#: Signature of a forward hook: (layer_index, layer, output) -> possibly-modified output.
ForwardHook = Callable[[int, Layer, np.ndarray], np.ndarray]


class Sequential:
    """A simple feed-forward stack of layers.

    Besides ordinary ``forward`` / ``backward`` training, the network supports
    *forward hooks* so that the fault-injection framework can intercept and
    corrupt intermediate activations exactly where the accelerator's output
    buffer would hold them.

    Layer names must be unique within a network (they address parameters and
    accelerator buffers).  A layer whose name collides with an earlier one is
    replaced by a renamed *shallow copy* — the copy shares the original's
    parameter arrays, but the caller's layer object is never mutated, so the
    same layer instances can safely be reused across networks.
    """

    def __init__(self, layers: Sequence[Layer], name: str = "network") -> None:
        self.layers: List[Layer] = list(layers)
        self.name = name
        seen = set()
        for index, layer in enumerate(self.layers):
            if layer.name in seen:
                renamed = copy.copy(layer)
                renamed.name = f"{layer.name}_{index}"
                self.layers[index] = layer = renamed
            seen.add(layer.name)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def forward(
        self,
        x: np.ndarray,
        training: bool = False,
        hooks: Optional[Iterable[ForwardHook]] = None,
    ) -> np.ndarray:
        """Run the network.  Hooks see (and may replace) each layer output."""
        hooks = list(hooks) if hooks else []
        out = np.asarray(x, dtype=np.float64)
        for index, layer in enumerate(self.layers):
            out = layer.forward(out, training=training)
            for hook in hooks:
                out = hook(index, layer, out)
        return out

    def __call__(self, x: np.ndarray, **kwargs) -> np.ndarray:
        return self.forward(x, **kwargs)

    def forward_replicas(
        self,
        x: np.ndarray,
        param_stacks: Optional[Dict[str, Dict[str, np.ndarray]]] = None,
        hooks: Optional[Iterable[ForwardHook]] = None,
    ) -> np.ndarray:
        """Inference forward of B network replicas in one vectorized pass.

        ``x`` is the scalar input with a leading batch-of-replicas axis:
        ``(replicas, *scalar_input_shape)``.  ``param_stacks`` optionally
        maps layer names to per-replica parameter stacks (each array shaped
        ``(replicas, *param_shape)``) — this is how the fault-injection
        engine runs B differently corrupted copies of the same network
        simultaneously; layers without an entry use their own parameters
        broadcast across replicas.  Hooks see (and may replace) each layer's
        stacked output, mirroring :meth:`forward`.

        Every replica's slice of the result is bit-identical to calling
        :meth:`forward` on that replica alone (with that replica's weights
        loaded), which is what makes batched fault campaigns reproduce
        serial campaigns exactly.
        """
        hooks = list(hooks) if hooks else []
        out = np.asarray(x, dtype=np.float64)
        for index, layer in enumerate(self.layers):
            params = param_stacks.get(layer.name) if param_stacks else None
            out = layer.forward_replicas(out, params=params)
            for hook in hooks:
                out = hook(index, layer, out)
        return out

    def forward_replicas_quantized(
        self,
        x: np.ndarray,
        param_stacks: Optional[Dict[str, Dict[str, np.ndarray]]],
        qformat,
    ) -> np.ndarray:
        """:meth:`forward_replicas` with every layer output quantized.

        ``x`` must already be quantized into ``qformat``.  Each layer runs
        through :meth:`~repro.nn.layers.Layer.forward_replicas_quantized`,
        which fuses the per-layer quantization into the layer's kernel where
        possible — bit-identical to :meth:`forward_replicas` with a
        ``qformat.quantize`` hook after every layer, which is what the
        batched executor's hot path used to do.
        """
        out = np.asarray(x, dtype=np.float64)
        for layer in self.layers:
            params = param_stacks.get(layer.name) if param_stacks else None
            out = layer.forward_replicas_quantized(out, params, qformat)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backpropagate through all layers (after a training forward pass)."""
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    # ------------------------------------------------------------------ #
    # Parameter access
    # ------------------------------------------------------------------ #
    def named_params(self) -> Dict[str, np.ndarray]:
        """All trainable parameters keyed by ``"<layer>.<param>"``."""
        out: Dict[str, np.ndarray] = {}
        for layer in self.layers:
            for key, value in layer.params().items():
                out[f"{layer.name}.{key}"] = value
        return out

    def named_grads(self) -> Dict[str, np.ndarray]:
        """All gradients keyed to match :meth:`named_params`."""
        out: Dict[str, np.ndarray] = {}
        for layer in self.layers:
            for key, value in layer.grads().items():
                out[f"{layer.name}.{key}"] = value
        return out

    def load_named_params(self, params: Dict[str, np.ndarray]) -> None:
        """Copy values into the network's parameters (shapes must match)."""
        current = self.named_params()
        for key, value in params.items():
            if key not in current:
                raise KeyError(f"network has no parameter {key!r}")
            current[key][...] = value

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Deep-copied snapshot of all parameters."""
        return {key: value.copy() for key, value in self.named_params().items()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore parameters from a snapshot produced by :meth:`state_dict`."""
        self.load_named_params(state)

    def num_params(self) -> int:
        """Total number of trainable scalars."""
        return sum(int(np.prod(p.shape)) for p in self.named_params().values())

    # ------------------------------------------------------------------ #
    # Structure queries
    # ------------------------------------------------------------------ #
    def trainable_layers(self) -> List[Layer]:
        """Layers that own parameters (conv and dense layers)."""
        return [layer for layer in self.layers if layer.trainable]

    def layer_by_name(self, name: str) -> Layer:
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no layer named {name!r} in network {self.name!r}")

    def layer_index(self, name: str) -> int:
        for index, layer in enumerate(self.layers):
            if layer.name == name:
                return index
        raise KeyError(f"no layer named {name!r} in network {self.name!r}")

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Propagate a (channels, h, w) or (features,) shape through the stack."""
        shape = tuple(input_shape)
        for layer in self.layers:
            shape = layer.output_shape(shape)
        return shape

    def summary(self, input_shape: Tuple[int, ...]) -> str:
        """Human-readable per-layer shape/parameter summary."""
        lines = [f"Sequential {self.name!r}"]
        shape = tuple(input_shape)
        for layer in self.layers:
            shape = layer.output_shape(shape)
            n_params = sum(int(np.prod(p.shape)) for p in layer.params().values())
            lines.append(
                f"  {layer.name:<16} {layer.kind:<12} out={shape} params={n_params}"
            )
        lines.append(f"  total params: {self.num_params()}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Sequential(name={self.name!r}, layers={[l.name for l in self.layers]})"
