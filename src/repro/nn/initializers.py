"""Weight initializers for the numpy NN substrate."""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["he_uniform", "glorot_uniform", "zeros_init", "fan_in_out"]


def fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute (fan_in, fan_out) for a weight tensor shape.

    Dense weights are ``(in, out)``; conv kernels are
    ``(out_channels, in_channels, kh, kw)``.
    """
    if len(shape) == 2:
        return shape[0], shape[1]
    if len(shape) == 4:
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    size = int(np.prod(shape))
    return size, size


def he_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He (Kaiming) uniform initialization, appropriate before ReLU layers."""
    fan_in, _ = fan_in_out(shape)
    limit = np.sqrt(6.0 / max(fan_in, 1))
    return rng.uniform(-limit, limit, size=shape)


def glorot_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot (Xavier) uniform initialization for linear output layers."""
    fan_in, fan_out = fan_in_out(shape)
    limit = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-limit, limit, size=shape)


def zeros_init(shape: Tuple[int, ...], rng: np.random.Generator = None) -> np.ndarray:
    """All-zeros initialization (used for biases)."""
    return np.zeros(shape, dtype=np.float64)
