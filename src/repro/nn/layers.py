"""Layers for the numpy NN substrate.

Every layer implements ``forward`` / ``backward`` and exposes its trainable
parameters through ``params()`` / ``grads()`` dictionaries so optimizers and
the accelerator buffer model can address them by name.

Tensor layout conventions
-------------------------
* Dense inputs: ``(batch, features)``.
* Convolutional inputs: ``(batch, channels, height, width)``.
* Conv kernels: ``(out_channels, in_channels, kernel_h, kernel_w)``.

Replica-batched execution
-------------------------
Every layer additionally implements :meth:`Layer.forward_replicas`, which
prepends a *batch-of-replicas* axis to the scalar layout: the input is
``(replicas, *scalar_input_shape)`` and, optionally, a stack of per-replica
parameters ``(replicas, *param_shape)`` replaces the layer's own weights.
This is how the batched fault-injection engine evaluates B differently
corrupted copies of one network in a single numpy call per layer.  The
replica paths are written so that every replica's slice goes through
floating-point operations of exactly the same shape and order as the scalar
``forward`` — the results are bit-identical, which the differential test
suite (``tests/test_batched_parity.py``) enforces.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.nn.initializers import glorot_uniform, he_uniform, zeros_init

__all__ = ["Layer", "Dense", "Conv2D", "MaxPool2D", "ReLU", "Flatten"]


class Layer:
    """Base class for all layers."""

    #: Human-readable layer kind, used by experiments to group layers
    #: ("conv", "dense", "pool", "activation", "reshape").
    kind: str = "layer"

    def __init__(self, name: str = "") -> None:
        self.name = name or self.__class__.__name__.lower()

    # -- interface ------------------------------------------------------ #
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def forward_replicas(
        self, x: np.ndarray, params: Optional[Dict[str, np.ndarray]] = None
    ) -> np.ndarray:
        """Inference forward over a leading batch-of-replicas axis.

        ``x`` has shape ``(replicas, *scalar_input_shape)``.  ``params``
        optionally supplies per-replica parameter stacks (each value shaped
        ``(replicas, *param_shape)``, keyed like :meth:`params`); without it
        the layer's own parameters are broadcast across all replicas.  Each
        replica's slice of the result is bit-identical to running
        :meth:`forward` on that slice alone.
        """
        raise NotImplementedError(
            f"{self.__class__.__name__} does not support replica-batched execution"
        )

    def forward_replicas_quantized(
        self, x: np.ndarray, params: Optional[Dict[str, np.ndarray]], qformat
    ) -> np.ndarray:
        """:meth:`forward_replicas` fused with post-layer quantization.

        The batched executor quantizes every layer's output into ``qformat``
        (the accelerator writes each result through its output buffer); this
        entry point lets layers fuse that quantization into their forward
        kernel via :mod:`repro.kernels`.  The default composes the two
        steps, which is exactly what the executor's per-layer quantize hook
        used to do, so overriding is purely an optimization — results must
        stay bit-identical.
        """
        return qformat.quantize(self.forward_replicas(x, params=params))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def params(self) -> Dict[str, np.ndarray]:
        """Trainable parameter arrays keyed by local name."""
        return {}

    def grads(self) -> Dict[str, np.ndarray]:
        """Gradients matching :meth:`params` keys (after backward)."""
        return {}

    def set_params(self, new_params: Dict[str, np.ndarray]) -> None:
        """Overwrite parameters in place (used to load faulted weights)."""
        current = self.params()
        for key, value in new_params.items():
            if key not in current:
                raise KeyError(f"layer {self.name!r} has no parameter {key!r}")
            current[key][...] = value

    @property
    def trainable(self) -> bool:
        return bool(self.params())

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Shape of the output given an input shape (without batch dim)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.__class__.__name__}(name={self.name!r})"


class Dense(Layer):
    """Fully connected layer ``y = x @ W + b``."""

    kind = "dense"

    def __init__(
        self,
        in_features: int,
        out_features: int,
        name: str = "",
        rng: Optional[np.random.Generator] = None,
        initializer: Callable = glorot_uniform,
    ) -> None:
        super().__init__(name=name)
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = initializer((in_features, out_features), rng)
        self.bias = zeros_init((out_features,))
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._last_input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if training:
            self._last_input = x
        return x @ self.weight + self.bias

    def forward_replicas(
        self, x: np.ndarray, params: Optional[Dict[str, np.ndarray]] = None
    ) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if params is None:
            # Shared weights: one broadcast matmul, same (batch, in) @ (in, out)
            # GEMM per replica slice as the scalar path.
            return np.matmul(x, self.weight) + self.bias
        weight, bias = params["weight"], params["bias"]
        # Per-replica weights: np.matmul maps each (batch, in) slice against
        # its own (in, out) stack entry — the identical GEMM the scalar path
        # issues, just looped in C instead of Python.
        return np.matmul(x, weight) + bias[:, None, :]

    def forward_replicas_quantized(
        self, x: np.ndarray, params: Optional[Dict[str, np.ndarray]], qformat
    ) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if params is None:
            # Shared float weights (pre-fault-activation): the matmul operands
            # are not quantized values, so only the bias+quantize tail fuses —
            # the GEMM itself must stay np.matmul for bit-identity.
            return qformat.bias_quantize(np.matmul(x, self.weight), self.bias)
        weight, bias = params["weight"], params["bias"]
        if qformat.supports_exact_matmul(self.in_features):
            # Decoded quantized stacks: every partial sum is exact in float64
            # (see QFormat.supports_exact_matmul), so the fully fused
            # matmul+bias+quantize kernel is bit-identical to BLAS.
            return qformat.matmul_bias_quantize(x, weight, bias)
        return qformat.bias_quantize_stacked(np.matmul(x, weight), bias)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._last_input is None:
            raise RuntimeError("backward called before a training forward pass")
        x = self._last_input
        self.grad_weight = x.T @ grad_out
        self.grad_bias = grad_out.sum(axis=0)
        return grad_out @ self.weight.T

    def params(self) -> Dict[str, np.ndarray]:
        return {"weight": self.weight, "bias": self.bias}

    def grads(self) -> Dict[str, np.ndarray]:
        return {"weight": self.grad_weight, "bias": self.grad_bias}

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (self.out_features,)


def _im2col(
    x: np.ndarray, kernel_h: int, kernel_w: int, stride: int, padding: int
) -> Tuple[np.ndarray, int, int]:
    """Unfold image patches into columns for convolution-as-matmul.

    Returns ``(cols, out_h, out_w)`` where ``cols`` has shape
    ``(batch, out_h, out_w, channels * kernel_h * kernel_w)``.
    """
    batch, channels, height, width = x.shape
    if padding:
        x = np.pad(
            x,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            mode="constant",
        )
    padded_h, padded_w = x.shape[2], x.shape[3]
    out_h = (padded_h - kernel_h) // stride + 1
    out_w = (padded_w - kernel_w) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"kernel {kernel_h}x{kernel_w} with stride {stride} does not fit "
            f"input of spatial size {height}x{width} (padding {padding})"
        )
    strides = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(batch, channels, out_h, out_w, kernel_h, kernel_w),
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride,
            strides[3] * stride,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(
        batch, out_h, out_w, channels * kernel_h * kernel_w
    )
    return np.ascontiguousarray(cols), out_h, out_w


class Conv2D(Layer):
    """2-D convolution implemented with im2col + matmul."""

    kind = "conv"

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        name: str = "",
        rng: Optional[np.random.Generator] = None,
        initializer: Callable = he_uniform,
    ) -> None:
        super().__init__(name=name)
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = initializer(
            (out_channels, in_channels, kernel_size, kernel_size), rng
        )
        self.bias = zeros_init((out_channels,))
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, ...], int, int]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        cols, out_h, out_w = _im2col(
            x, self.kernel_size, self.kernel_size, self.stride, self.padding
        )
        w_flat = self.weight.reshape(self.out_channels, -1)
        out = cols @ w_flat.T + self.bias
        out = out.transpose(0, 3, 1, 2)
        if training:
            self._cache = (cols, x.shape, out_h, out_w)
        return out

    def forward_replicas(
        self, x: np.ndarray, params: Optional[Dict[str, np.ndarray]] = None
    ) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        replicas, batch = x.shape[0], x.shape[1]
        folded = x.reshape(replicas * batch, *x.shape[2:])
        cols, out_h, out_w = _im2col(
            folded, self.kernel_size, self.kernel_size, self.stride, self.padding
        )
        cols = cols.reshape(replicas, batch, out_h, out_w, -1)
        if params is None:
            w_flat_t = self.weight.reshape(self.out_channels, -1).T
            out = np.matmul(cols, w_flat_t) + self.bias
        else:
            # (replicas, 1, 1, k, out_channels) so matmul broadcasts each
            # replica's (out_w, k) @ (k, out_channels) slice — the same GEMM
            # shape the scalar path's ``cols @ w_flat.T`` produces.
            w_flat_t = params["weight"].reshape(replicas, self.out_channels, -1)
            w_flat_t = w_flat_t.transpose(0, 2, 1)[:, None, None, :, :]
            out = np.matmul(cols, w_flat_t) + params["bias"][:, None, None, None, :]
        return out.transpose(0, 1, 4, 2, 3)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training forward pass")
        cols, input_shape, out_h, out_w = self._cache
        batch, _, height, width = input_shape
        grad_flat = grad_out.transpose(0, 2, 3, 1)  # (b, oh, ow, oc)

        w_flat = self.weight.reshape(self.out_channels, -1)
        self.grad_weight = (
            np.einsum("bijo,bijk->ok", grad_flat, cols).reshape(self.weight.shape)
        )
        self.grad_bias = grad_flat.sum(axis=(0, 1, 2))

        grad_cols = grad_flat @ w_flat  # (b, oh, ow, c*kh*kw)
        grad_input = np.zeros(
            (
                batch,
                self.in_channels,
                height + 2 * self.padding,
                width + 2 * self.padding,
            ),
            dtype=np.float64,
        )
        grad_cols = grad_cols.reshape(
            batch, out_h, out_w, self.in_channels, self.kernel_size, self.kernel_size
        )
        for i in range(out_h):
            hi = i * self.stride
            for j in range(out_w):
                wj = j * self.stride
                grad_input[
                    :, :, hi : hi + self.kernel_size, wj : wj + self.kernel_size
                ] += grad_cols[:, i, j]
        if self.padding:
            grad_input = grad_input[
                :, :, self.padding : -self.padding, self.padding : -self.padding
            ]
        return grad_input

    def params(self) -> Dict[str, np.ndarray]:
        return {"weight": self.weight, "bias": self.bias}

    def grads(self) -> Dict[str, np.ndarray]:
        return {"weight": self.grad_weight, "bias": self.grad_bias}

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        channels, height, width = input_shape
        out_h = (height + 2 * self.padding - self.kernel_size) // self.stride + 1
        out_w = (width + 2 * self.padding - self.kernel_size) // self.stride + 1
        return (self.out_channels, out_h, out_w)


class MaxPool2D(Layer):
    """Max pooling over non-overlapping (or strided) windows."""

    kind = "pool"

    def __init__(self, pool_size: int = 2, stride: Optional[int] = None, name: str = "") -> None:
        super().__init__(name=name)
        self.pool_size = pool_size
        self.stride = stride if stride is not None else pool_size
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, ...]]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        batch, channels, height, width = x.shape
        out_h = (height - self.pool_size) // self.stride + 1
        out_w = (width - self.pool_size) // self.stride + 1
        strides = x.strides
        windows = np.lib.stride_tricks.as_strided(
            x,
            shape=(batch, channels, out_h, out_w, self.pool_size, self.pool_size),
            strides=(
                strides[0],
                strides[1],
                strides[2] * self.stride,
                strides[3] * self.stride,
                strides[2],
                strides[3],
            ),
            writeable=False,
        )
        out = windows.max(axis=(4, 5))
        if training:
            self._cache = (x, out.shape)
        return out

    def forward_replicas(
        self, x: np.ndarray, params: Optional[Dict[str, np.ndarray]] = None
    ) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        replicas, batch = x.shape[0], x.shape[1]
        folded = x.reshape(replicas * batch, *x.shape[2:])
        out = self.forward(folded, training=False)
        return out.reshape(replicas, batch, *out.shape[1:])

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training forward pass")
        x, out_shape = self._cache
        grad_input = np.zeros_like(x)
        batch, channels, out_h, out_w = out_shape
        for i in range(out_h):
            hi = i * self.stride
            for j in range(out_w):
                wj = j * self.stride
                window = x[:, :, hi : hi + self.pool_size, wj : wj + self.pool_size]
                flat = window.reshape(batch, channels, -1)
                arg = flat.argmax(axis=2)
                mask = np.zeros_like(flat)
                b_idx, c_idx = np.meshgrid(
                    np.arange(batch), np.arange(channels), indexing="ij"
                )
                mask[b_idx, c_idx, arg] = 1.0
                mask = mask.reshape(window.shape)
                grad_input[
                    :, :, hi : hi + self.pool_size, wj : wj + self.pool_size
                ] += mask * grad_out[:, :, i, j][:, :, None, None]
        return grad_input

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        channels, height, width = input_shape
        out_h = (height - self.pool_size) // self.stride + 1
        out_w = (width - self.pool_size) // self.stride + 1
        return (channels, out_h, out_w)


class ReLU(Layer):
    """Rectified linear activation."""

    kind = "activation"

    def __init__(self, name: str = "") -> None:
        super().__init__(name=name)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if training:
            self._mask = x > 0
        return np.maximum(x, 0.0)

    def forward_replicas(
        self, x: np.ndarray, params: Optional[Dict[str, np.ndarray]] = None
    ) -> np.ndarray:
        return np.maximum(np.asarray(x, dtype=np.float64), 0.0)

    def forward_replicas_quantized(
        self, x: np.ndarray, params: Optional[Dict[str, np.ndarray]], qformat
    ) -> np.ndarray:
        return qformat.relu_quantize(np.asarray(x, dtype=np.float64))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before a training forward pass")
        return grad_out * self._mask

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return input_shape


class Flatten(Layer):
    """Flatten all non-batch dimensions."""

    kind = "reshape"

    def __init__(self, name: str = "") -> None:
        super().__init__(name=name)
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if training:
            self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def forward_replicas(
        self, x: np.ndarray, params: Optional[Dict[str, np.ndarray]] = None
    ) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return x.reshape(x.shape[0], x.shape[1], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before a training forward pass")
        return grad_out.reshape(self._input_shape)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (int(np.prod(input_shape)),)
