"""Loss functions for Q-learning regression targets."""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["mse_loss", "huber_loss"]


def mse_loss(predictions: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean squared error and its gradient w.r.t. predictions."""
    predictions = np.asarray(predictions, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if predictions.shape != targets.shape:
        raise ValueError(
            f"shape mismatch: predictions {predictions.shape} vs targets {targets.shape}"
        )
    diff = predictions - targets
    loss = float(np.mean(diff**2))
    grad = 2.0 * diff / diff.size
    return loss, grad


def huber_loss(
    predictions: np.ndarray, targets: np.ndarray, delta: float = 1.0
) -> Tuple[float, np.ndarray]:
    """Huber loss (smooth L1), standard in DQN training for robustness."""
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")
    predictions = np.asarray(predictions, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if predictions.shape != targets.shape:
        raise ValueError(
            f"shape mismatch: predictions {predictions.shape} vs targets {targets.shape}"
        )
    diff = predictions - targets
    abs_diff = np.abs(diff)
    quadratic = np.minimum(abs_diff, delta)
    linear = abs_diff - quadratic
    loss = float(np.mean(0.5 * quadratic**2 + delta * linear))
    grad = np.clip(diff, -delta, delta) / diff.size
    return loss, grad
