"""Accelerator buffer model and quantized execution.

The paper's fault model targets the on-chip memories of an edge NN
accelerator: the *input buffer* (feature maps), the *filter buffer* (weights)
and the *output buffer* (activations).  Faults in MAC datapaths are assumed to
manifest as corrupted values in the output buffer (Sec. 3.2).

:class:`BufferSet` materializes those memories as named
:class:`~repro.quant.qtensor.QTensor` instances, and
:class:`QuantizedExecutor` runs a :class:`~repro.nn.network.Sequential`
network *through* them: inputs, weights and every layer's activations are
quantized into their buffers where fault injectors and the anomaly detector
can observe and mutate them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.nn.layers import Layer
from repro.nn.network import Sequential
from repro.quant.qformat import QFormat
from repro.quant.qtensor import QTensor

__all__ = [
    "BufferSet",
    "QuantizedExecutor",
    "LayerRangeProfile",
    "INPUT_BUFFER",
    "weight_buffer_name",
    "activation_buffer_name",
]

#: Canonical name of the input (feature-map) buffer.
INPUT_BUFFER = "input"


def weight_buffer_name(param_name: str) -> str:
    """Buffer name for a network parameter (e.g. ``"weight:conv1.weight"``)."""
    return f"weight:{param_name}"


def activation_buffer_name(layer_name: str) -> str:
    """Buffer name for a layer's output activations."""
    return f"activation:{layer_name}"


class BufferSet:
    """The set of named quantized memories backing a network's execution.

    Weight buffers are persistent (created from the network's trained
    parameters); the input and activation buffers are transient and rewritten
    on every forward pass, mirroring how the accelerator reuses its SRAM.
    """

    def __init__(self, network: Sequential, qformat: QFormat) -> None:
        self.network = network
        self.qformat = qformat
        self.buffers: Dict[str, QTensor] = {}
        self.refresh_weights_from_network()

    # ------------------------------------------------------------------ #
    # Weight buffers
    # ------------------------------------------------------------------ #
    def refresh_weights_from_network(self) -> None:
        """Re-quantize all network parameters into their weight buffers."""
        for name, param in self.network.named_params().items():
            buffer_name = weight_buffer_name(name)
            self.buffers[buffer_name] = QTensor(param, self.qformat, name=buffer_name)

    def sync_weights_to_network(self) -> None:
        """Decode weight buffers back into the network parameters.

        Any faults injected into the weight buffers become visible to the
        float execution path after this call.
        """
        params = self.network.named_params()
        for name, param in params.items():
            buffer = self.buffers.get(weight_buffer_name(name))
            if buffer is not None:
                param[...] = buffer.values

    def weight_buffers(self) -> Dict[str, QTensor]:
        """All weight buffers keyed by buffer name."""
        return {
            name: tensor
            for name, tensor in self.buffers.items()
            if name.startswith("weight:")
        }

    def weight_buffers_for_layer(self, layer_name: str) -> Dict[str, QTensor]:
        """Weight buffers whose parameter belongs to ``layer_name``."""
        prefix = f"weight:{layer_name}."
        return {
            name: tensor
            for name, tensor in self.buffers.items()
            if name.startswith(prefix)
        }

    # ------------------------------------------------------------------ #
    # Transient buffers
    # ------------------------------------------------------------------ #
    def write_input(self, values: np.ndarray) -> QTensor:
        """Quantize input feature maps into the input buffer."""
        tensor = QTensor(values, self.qformat, name=INPUT_BUFFER)
        self.buffers[INPUT_BUFFER] = tensor
        return tensor

    def write_activation(self, layer_name: str, values: np.ndarray) -> QTensor:
        """Quantize a layer's output into its activation buffer."""
        name = activation_buffer_name(layer_name)
        tensor = QTensor(values, self.qformat, name=name)
        self.buffers[name] = tensor
        return tensor

    def get(self, name: str) -> QTensor:
        if name not in self.buffers:
            raise KeyError(f"no buffer named {name!r}; known: {sorted(self.buffers)}")
        return self.buffers[name]

    def names(self) -> List[str]:
        return sorted(self.buffers)

    def total_bits(self) -> int:
        """Total number of memory bits across all current buffers."""
        return sum(t.size * t.qformat.total_bits for t in self.buffers.values())


@dataclass
class LayerRangeProfile:
    """Per-layer value ranges instrumented on the fault-free trained policy.

    Used by the range-based anomaly detector (Sec. 5.2): after training, the
    minimum/maximum of every layer's weights and activations are recorded;
    during inference a configurable margin (10% in the paper) is applied and
    any value outside the widened bound is declared anomalous.
    """

    weight_ranges: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    activation_ranges: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    def record_weight(self, layer_name: str, values: np.ndarray) -> None:
        self.weight_ranges[layer_name] = _merge_range(
            self.weight_ranges.get(layer_name), values
        )

    def record_activation(self, layer_name: str, values: np.ndarray) -> None:
        self.activation_ranges[layer_name] = _merge_range(
            self.activation_ranges.get(layer_name), values
        )

    def weight_bound(self, layer_name: str, margin: float = 0.1) -> Tuple[float, float]:
        """Widened (low, high) bound for a layer's weights."""
        return _widen(self.weight_ranges[layer_name], margin)

    def activation_bound(
        self, layer_name: str, margin: float = 0.1
    ) -> Tuple[float, float]:
        """Widened (low, high) bound for a layer's activations."""
        return _widen(self.activation_ranges[layer_name], margin)

    def layers(self) -> List[str]:
        return sorted(set(self.weight_ranges) | set(self.activation_ranges))


def _merge_range(
    existing: Optional[Tuple[float, float]], values: np.ndarray
) -> Tuple[float, float]:
    lo = float(np.min(values))
    hi = float(np.max(values))
    if existing is not None:
        lo = min(lo, existing[0])
        hi = max(hi, existing[1])
    return lo, hi


def _widen(bound: Tuple[float, float], margin: float) -> Tuple[float, float]:
    lo, hi = bound
    span = margin * max(abs(lo), abs(hi))
    return lo - span, hi + span


#: Hook signature used by the executor: called with the buffer holding a
#: freshly written tensor plus the owning layer (None for the input buffer);
#: the hook may mutate the QTensor in place.
BufferHook = Callable[[QTensor, Optional[Layer]], None]


class QuantizedExecutor:
    """Run a network through quantized accelerator buffers.

    Parameters
    ----------
    network:
        The trained policy network.
    qformat:
        Fixed-point format of every buffer.
    input_hooks / activation_hooks:
        Callables applied after the input / each layer's activations are
        written to their buffer — this is where dynamic (input-dependent)
        transient faults and the anomaly detector plug in.
    """

    def __init__(
        self,
        network: Sequential,
        qformat: QFormat,
        input_hooks: Optional[List[BufferHook]] = None,
        activation_hooks: Optional[List[BufferHook]] = None,
    ) -> None:
        self.network = network
        self.qformat = qformat
        self.buffer_set = BufferSet(network, qformat)
        self.input_hooks: List[BufferHook] = list(input_hooks or [])
        self.activation_hooks: List[BufferHook] = list(activation_hooks or [])
        self._clean_state = network.state_dict()

    # ------------------------------------------------------------------ #
    # Weight-side fault plumbing
    # ------------------------------------------------------------------ #
    def restore_clean_weights(self) -> None:
        """Undo any weight-buffer faults by restoring the trained parameters."""
        self.network.load_state_dict(self._clean_state)
        self.buffer_set.refresh_weights_from_network()

    def apply_weight_faults(self, mutator: Callable[[str, QTensor], None]) -> None:
        """Apply a mutator to every weight buffer, then sync to the network.

        ``mutator(param_name, qtensor)`` receives the *network* parameter name
        (e.g. ``"fc2.weight"``) and the buffer tensor to corrupt in place.
        """
        for buffer_name, tensor in self.buffer_set.weight_buffers().items():
            param_name = buffer_name.split(":", 1)[1]
            mutator(param_name, tensor)
        self.buffer_set.sync_weights_to_network()

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Quantized forward pass through input and activation buffers."""
        input_tensor = self.buffer_set.write_input(x)
        for hook in self.input_hooks:
            hook(input_tensor, None)
        out = input_tensor.values
        for layer in self.network.layers:
            out = layer.forward(out, training=False)
            activation = self.buffer_set.write_activation(layer.name, out)
            for hook in self.activation_hooks:
                hook(activation, layer)
            out = activation.values
        return out

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # ------------------------------------------------------------------ #
    # Range profiling (for the anomaly detector)
    # ------------------------------------------------------------------ #
    def profile_ranges(self, calibration_inputs: np.ndarray) -> LayerRangeProfile:
        """Instrument per-layer weight and activation ranges on clean inputs.

        ``calibration_inputs`` is a batch of representative states; the
        profile records the min/max of each layer's quantized weights and of
        the activations it produces on the calibration batch.
        """
        profile = LayerRangeProfile()
        for buffer_name, tensor in self.buffer_set.weight_buffers().items():
            param_name = buffer_name.split(":", 1)[1]
            layer_name = param_name.split(".", 1)[0]
            profile.record_weight(layer_name, tensor.values)
        out = QTensor(calibration_inputs, self.qformat).values
        for layer in self.network.layers:
            out = layer.forward(out, training=False)
            quantized = self.qformat.quantize(out)
            profile.record_activation(layer.name, quantized)
            out = quantized
        return profile
