"""Accelerator buffer model and quantized execution.

The paper's fault model targets the on-chip memories of an edge NN
accelerator: the *input buffer* (feature maps), the *filter buffer* (weights)
and the *output buffer* (activations).  Faults in MAC datapaths are assumed to
manifest as corrupted values in the output buffer (Sec. 3.2).

:class:`BufferSet` materializes those memories as named
:class:`~repro.quant.qtensor.QTensor` instances, and
:class:`QuantizedExecutor` runs a :class:`~repro.nn.network.Sequential`
network *through* them: inputs, weights and every layer's activations are
quantized into their buffers where fault injectors and the anomaly detector
can observe and mutate them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.nn.layers import Layer
from repro.nn.network import Sequential
from repro.quant.qformat import QFormat
from repro.quant.qtensor import QTensor

__all__ = [
    "BufferSet",
    "QuantizedExecutor",
    "BatchedQuantizedExecutor",
    "LayerRangeProfile",
    "INPUT_BUFFER",
    "weight_buffer_name",
    "activation_buffer_name",
]

#: Canonical name of the input (feature-map) buffer.
INPUT_BUFFER = "input"


def weight_buffer_name(param_name: str) -> str:
    """Buffer name for a network parameter (e.g. ``"weight:conv1.weight"``)."""
    return f"weight:{param_name}"


def activation_buffer_name(layer_name: str) -> str:
    """Buffer name for a layer's output activations."""
    return f"activation:{layer_name}"


class BufferSet:
    """The set of named quantized memories backing a network's execution.

    Weight buffers are persistent (created from the network's trained
    parameters); the input and activation buffers are transient and rewritten
    on every forward pass, mirroring how the accelerator reuses its SRAM.
    """

    def __init__(self, network: Sequential, qformat: QFormat) -> None:
        self.network = network
        self.qformat = qformat
        self.buffers: Dict[str, QTensor] = {}
        self.refresh_weights_from_network()

    # ------------------------------------------------------------------ #
    # Weight buffers
    # ------------------------------------------------------------------ #
    def refresh_weights_from_network(self) -> None:
        """Re-quantize all network parameters into their weight buffers."""
        for name, param in self.network.named_params().items():
            buffer_name = weight_buffer_name(name)
            self.buffers[buffer_name] = QTensor(param, self.qformat, name=buffer_name)

    def sync_weights_to_network(self) -> None:
        """Decode weight buffers back into the network parameters.

        Any faults injected into the weight buffers become visible to the
        float execution path after this call.
        """
        params = self.network.named_params()
        for name, param in params.items():
            buffer = self.buffers.get(weight_buffer_name(name))
            if buffer is not None:
                param[...] = buffer.values

    def weight_buffers(self) -> Dict[str, QTensor]:
        """All weight buffers keyed by buffer name."""
        return {
            name: tensor
            for name, tensor in self.buffers.items()
            if name.startswith("weight:")
        }

    def weight_buffers_for_layer(self, layer_name: str) -> Dict[str, QTensor]:
        """Weight buffers whose parameter belongs to ``layer_name``."""
        prefix = f"weight:{layer_name}."
        return {
            name: tensor
            for name, tensor in self.buffers.items()
            if name.startswith(prefix)
        }

    # ------------------------------------------------------------------ #
    # Transient buffers
    # ------------------------------------------------------------------ #
    def write_input(self, values: np.ndarray) -> QTensor:
        """Quantize input feature maps into the input buffer."""
        tensor = QTensor(values, self.qformat, name=INPUT_BUFFER)
        self.buffers[INPUT_BUFFER] = tensor
        return tensor

    def write_activation(self, layer_name: str, values: np.ndarray) -> QTensor:
        """Quantize a layer's output into its activation buffer."""
        name = activation_buffer_name(layer_name)
        tensor = QTensor(values, self.qformat, name=name)
        self.buffers[name] = tensor
        return tensor

    def get(self, name: str) -> QTensor:
        if name not in self.buffers:
            raise KeyError(f"no buffer named {name!r}; known: {sorted(self.buffers)}")
        return self.buffers[name]

    def names(self) -> List[str]:
        return sorted(self.buffers)

    def total_bits(self) -> int:
        """Total number of memory bits across all current buffers."""
        return sum(t.size * t.qformat.total_bits for t in self.buffers.values())


@dataclass
class LayerRangeProfile:
    """Per-layer value ranges instrumented on the fault-free trained policy.

    Used by the range-based anomaly detector (Sec. 5.2): after training, the
    minimum/maximum of every layer's weights and activations are recorded;
    during inference a configurable margin (10% in the paper) is applied and
    any value outside the widened bound is declared anomalous.
    """

    weight_ranges: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    activation_ranges: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    def record_weight(self, layer_name: str, values: np.ndarray) -> None:
        self.weight_ranges[layer_name] = _merge_range(
            self.weight_ranges.get(layer_name), values
        )

    def record_activation(self, layer_name: str, values: np.ndarray) -> None:
        self.activation_ranges[layer_name] = _merge_range(
            self.activation_ranges.get(layer_name), values
        )

    def weight_bound(self, layer_name: str, margin: float = 0.1) -> Tuple[float, float]:
        """Widened (low, high) bound for a layer's weights."""
        return _widen(self.weight_ranges[layer_name], margin)

    def activation_bound(
        self, layer_name: str, margin: float = 0.1
    ) -> Tuple[float, float]:
        """Widened (low, high) bound for a layer's activations."""
        return _widen(self.activation_ranges[layer_name], margin)

    def layers(self) -> List[str]:
        return sorted(set(self.weight_ranges) | set(self.activation_ranges))


def _merge_range(
    existing: Optional[Tuple[float, float]], values: np.ndarray
) -> Tuple[float, float]:
    lo = float(np.min(values))
    hi = float(np.max(values))
    if existing is not None:
        lo = min(lo, existing[0])
        hi = max(hi, existing[1])
    return lo, hi


def _widen(bound: Tuple[float, float], margin: float) -> Tuple[float, float]:
    lo, hi = bound
    span = margin * max(abs(lo), abs(hi))
    return lo - span, hi + span


#: Hook signature used by the executor: called with the buffer holding a
#: freshly written tensor plus the owning layer (None for the input buffer);
#: the hook may mutate the QTensor in place.
BufferHook = Callable[[QTensor, Optional[Layer]], None]


class QuantizedExecutor:
    """Run a network through quantized accelerator buffers.

    Parameters
    ----------
    network:
        The trained policy network.
    qformat:
        Fixed-point format of every buffer.
    input_hooks / activation_hooks:
        Callables applied after the input / each layer's activations are
        written to their buffer — this is where dynamic (input-dependent)
        transient faults and the anomaly detector plug in.
    """

    def __init__(
        self,
        network: Sequential,
        qformat: QFormat,
        input_hooks: Optional[List[BufferHook]] = None,
        activation_hooks: Optional[List[BufferHook]] = None,
    ) -> None:
        self.network = network
        self.qformat = qformat
        self.buffer_set = BufferSet(network, qformat)
        self.input_hooks: List[BufferHook] = list(input_hooks or [])
        self.activation_hooks: List[BufferHook] = list(activation_hooks or [])
        self._clean_state = network.state_dict()

    # ------------------------------------------------------------------ #
    # Weight-side fault plumbing
    # ------------------------------------------------------------------ #
    def restore_clean_weights(self) -> None:
        """Undo any weight-buffer faults by restoring the trained parameters."""
        self.network.load_state_dict(self._clean_state)
        self.buffer_set.refresh_weights_from_network()

    def apply_weight_faults(self, mutator: Callable[[str, QTensor], None]) -> None:
        """Apply a mutator to every weight buffer, then sync to the network.

        ``mutator(param_name, qtensor)`` receives the *network* parameter name
        (e.g. ``"fc2.weight"``) and the buffer tensor to corrupt in place.
        """
        for buffer_name, tensor in self.buffer_set.weight_buffers().items():
            param_name = buffer_name.split(":", 1)[1]
            mutator(param_name, tensor)
        self.buffer_set.sync_weights_to_network()

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Quantized forward pass through input and activation buffers."""
        input_tensor = self.buffer_set.write_input(x)
        for hook in self.input_hooks:
            hook(input_tensor, None)
        out = input_tensor.values
        for layer in self.network.layers:
            out = layer.forward(out, training=False)
            activation = self.buffer_set.write_activation(layer.name, out)
            for hook in self.activation_hooks:
                hook(activation, layer)
            out = activation.values
        return out

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # ------------------------------------------------------------------ #
    # Range profiling (for the anomaly detector)
    # ------------------------------------------------------------------ #
    def profile_ranges(self, calibration_inputs: np.ndarray) -> LayerRangeProfile:
        """Instrument per-layer weight and activation ranges on clean inputs.

        ``calibration_inputs`` is a batch of representative states; the
        profile records the min/max of each layer's quantized weights and of
        the activations it produces on the calibration batch.
        """
        profile = LayerRangeProfile()
        for buffer_name, tensor in self.buffer_set.weight_buffers().items():
            param_name = buffer_name.split(":", 1)[1]
            layer_name = param_name.split(".", 1)[0]
            profile.record_weight(layer_name, tensor.values)
        out = QTensor(calibration_inputs, self.qformat).values
        for layer in self.network.layers:
            out = layer.forward(out, training=False)
            quantized = self.qformat.quantize(out)
            profile.record_activation(layer.name, quantized)
            out = quantized
        return profile


class BatchedQuantizedExecutor:
    """Run B fault-injected replicas of one network through stacked buffers.

    This is the vectorized counterpart of :class:`QuantizedExecutor`: every
    weight buffer is held as one ``(B, *param_shape)`` stacked
    :class:`~repro.quant.qtensor.QTensor`, so B independently sampled fault
    patterns can be applied in a single bit operation (see
    :func:`~repro.core.sites.apply_patterns_stacked`), and a forward pass
    evaluates all replicas through one stacked numpy call per layer.

    The semantics mirror the scalar executor replica-wise, and every
    replica's result is bit-identical to what a scalar
    :class:`QuantizedExecutor` produces for the same faults:

    * before :meth:`apply_weight_faults` is called, forwards use the live
      (float) network parameters broadcast across replicas — exactly like a
      fresh scalar executor, whose construction does not quantize the
      network in place;
    * after it, forwards use each replica's decoded (quantized, possibly
      corrupted) weight stack — exactly like a scalar executor after its
      ``apply_weight_faults`` synced the buffers back into the network.

    Unlike the scalar executor, the batched one never mutates the network
    it wraps, so no ``restore_clean_weights`` step is needed between
    trials.

    Parameters
    ----------
    network:
        The trained policy network (read-only from this executor's side).
    qformat:
        Fixed-point format of every buffer.
    n_replicas:
        Number of replicas B evaluated together.
    input_hooks / activation_hooks:
        As for :class:`QuantizedExecutor`, but each hook receives the
        *stacked* ``(B, ...)`` buffer.
    """

    def __init__(
        self,
        network: Sequential,
        qformat: QFormat,
        n_replicas: int,
        input_hooks: Optional[List[BufferHook]] = None,
        activation_hooks: Optional[List[BufferHook]] = None,
    ) -> None:
        if n_replicas <= 0:
            raise ValueError(f"n_replicas must be positive, got {n_replicas}")
        self.network = network
        self.qformat = qformat
        self.n_replicas = n_replicas
        self.input_hooks: List[BufferHook] = list(input_hooks or [])
        self.activation_hooks: List[BufferHook] = list(activation_hooks or [])
        #: Unit-shaped clean quantized buffers, used as sampling templates.
        self.unit_buffers: Dict[str, QTensor] = {}
        #: Stacked (B, *shape) quantized weight buffers, one per parameter.
        self.weight_buffers: Dict[str, QTensor] = {}
        for name, param in network.named_params().items():
            buffer_name = weight_buffer_name(name)
            unit = QTensor(param, qformat, name=buffer_name)
            self.unit_buffers[buffer_name] = unit
            self.weight_buffers[buffer_name] = unit.replicate(n_replicas)
        self._param_stacks: Optional[Dict[str, Dict[str, np.ndarray]]] = None

    @property
    def faulted(self) -> bool:
        """Whether the stacked weight buffers have been made the active weights."""
        return self._param_stacks is not None

    def restore_clean_weights(self) -> None:
        """Return the stacked buffers to their clean pre-fault state.

        Every stacked weight buffer goes back to B bit-identical copies of
        the clean quantized parameters and the stacks are deactivated, so a
        reused executor is indistinguishable from a freshly constructed one
        (campaign engines reuse one executor across batches instead of
        re-encoding the network's weights every batch).
        """
        for buffer_name, stacked in self.weight_buffers.items():
            unit = self.unit_buffers[buffer_name]
            stacked.raw = np.broadcast_to(unit.raw, stacked.shape)
        self._param_stacks = None

    # ------------------------------------------------------------------ #
    # Weight-side fault plumbing
    # ------------------------------------------------------------------ #
    def apply_weight_faults(self, mutator: Callable[[str, QTensor], None]) -> None:
        """Apply a mutator to every stacked weight buffer, then activate them.

        ``mutator(param_name, stacked_tensor)`` receives the *network*
        parameter name (e.g. ``"fc2.weight"``) and the ``(B, *shape)``
        stacked buffer to corrupt in place — typically through
        :func:`~repro.core.sites.apply_patterns_stacked`.  Buffers are
        visited in the same order the scalar executor visits them.  After
        the sweep, the decoded stacks become the active weights for
        :meth:`forward` (the stacked analogue of the scalar executor's
        sync back into the network).
        """
        for buffer_name, stacked in self.weight_buffers.items():
            mutator(buffer_name.split(":", 1)[1], stacked)
        stacks: Dict[str, Dict[str, np.ndarray]] = {}
        for buffer_name, stacked in self.weight_buffers.items():
            param_name = buffer_name.split(":", 1)[1]
            layer_name, local_name = param_name.split(".", 1)
            stacks.setdefault(layer_name, {})[local_name] = stacked.values
        self._param_stacks = stacks

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _stacks_for(
        self, replicas: Optional[np.ndarray]
    ) -> Optional[Dict[str, Dict[str, np.ndarray]]]:
        if self._param_stacks is None:
            return None
        if replicas is None or (
            # Full-batch identity (the common case while every replica's
            # episode is still running): skip the fancy-index copy of every
            # weight stack on the hot path.
            replicas.size == self.n_replicas
            and np.array_equal(replicas, np.arange(self.n_replicas))
        ):
            return self._param_stacks
        return {
            layer_name: {local: stack[replicas] for local, stack in locals_.items()}
            for layer_name, locals_ in self._param_stacks.items()
        }

    def forward(
        self, x: np.ndarray, replicas: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Quantized forward pass of the selected replicas.

        ``x`` has shape ``(k, *scalar_input_shape)`` where
        ``scalar_input_shape`` is what the scalar executor's ``forward``
        receives (including its own leading batch axis).  ``replicas``
        selects which replica's weights evaluate each row of ``x``
        (default: row ``i`` uses replica ``i``; required when ``k`` differs
        from ``n_replicas``, e.g. when some replicas have already finished
        their episodes).
        """
        x = np.asarray(x, dtype=np.float64)
        if replicas is not None:
            replicas = np.asarray(replicas, dtype=np.int64)
            if replicas.shape != (x.shape[0],):
                raise ValueError(
                    f"replicas must have shape ({x.shape[0]},), got {replicas.shape}"
                )
        elif x.shape[0] != self.n_replicas:
            raise ValueError(
                f"got {x.shape[0]} input rows for {self.n_replicas} replicas; "
                "pass replica indices to evaluate a subset"
            )
        # Without hooks the buffer QTensors are unobservable (the batched
        # executor keeps no persistent activation buffers), so the common
        # fault-free forward quantizes through the format directly — the same
        # encode/decode round trip without the per-layer tensor wrapping.
        if self.input_hooks:
            input_tensor = QTensor(x, self.qformat, name=INPUT_BUFFER)
            for hook in self.input_hooks:
                hook(input_tensor, None)
            x_q = input_tensor.values
        else:
            x_q = self.qformat.quantize(x)
        param_stacks = self._stacks_for(replicas)

        if self.activation_hooks:

            def quantize(index: int, layer, out: np.ndarray) -> np.ndarray:
                activation = QTensor(
                    out, self.qformat, name=activation_buffer_name(layer.name)
                )
                for hook in self.activation_hooks:
                    hook(activation, layer)
                return activation.values

            return self.network.forward_replicas(x_q, param_stacks, hooks=[quantize])

        # No activation hooks (the common fault-free-activations hot path):
        # run the fused per-layer forward+quantize kernels — bit-identical to
        # the hook formulation above with a plain qformat.quantize hook.
        return self.network.forward_replicas_quantized(x_q, param_stacks, self.qformat)

    def __call__(self, x: np.ndarray, replicas: Optional[np.ndarray] = None) -> np.ndarray:
        return self.forward(x, replicas=replicas)
