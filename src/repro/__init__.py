"""repro — reproduction of "Analyzing and Improving Fault Tolerance of
Learning-Based Navigation Systems" (Wan et al., DAC 2021).

The package is organised bottom-up:

* :mod:`repro.quant` — fixed-point formats and bit-addressable tensors.
* :mod:`repro.nn` — numpy neural-network substrate and accelerator buffers.
* :mod:`repro.rl` — tabular Q-learning, DQN / Double DQN, training loop.
* :mod:`repro.envs` — Grid World and the drone corridor simulator.
* :mod:`repro.policies` — the Grid World MLP and the C3F2 drone network.
* :mod:`repro.core` — the fault-injection tool-chain and mitigation schemes.
* :mod:`repro.metrics`, :mod:`repro.io` — metrics, statistics and result I/O.
* :mod:`repro.experiments` — one driver per paper figure, each registered as
  a declarative :class:`~repro.experiments.registry.ExperimentSpec`.
* :mod:`repro.api` — the public entry point: ``repro.api.run(name,
  execution=ExecutionConfig(...))`` executes any registered experiment and
  returns a provenance-carrying :class:`~repro.api.ExperimentArtifact`.
* :mod:`repro.telemetry` — typed event bus, JSONL trace sinks and timing
  metrics published by every engine (free when nobody subscribes).
"""

__version__ = "1.0.0"

__all__ = [
    "quant",
    "nn",
    "rl",
    "envs",
    "policies",
    "core",
    "metrics",
    "io",
    "experiments",
    "api",
    "telemetry",
]
