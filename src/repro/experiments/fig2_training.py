"""Fig. 2 — impact of faults on Grid World training, plus value histograms.

Panels (a) and (c) are success-rate heatmaps over (bit error rate x fault
injection episode) for transient faults, with additional stuck-at-0 /
stuck-at-1 columns, for the tabular and NN-based approaches respectively.
Panels (b) and (d) are the histograms / bit-level statistics of the trained
tabular values and NN weights that explain the stuck-at asymmetry.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.api.execution import ExecutionConfig, resolve_execution
from repro.core.campaign import Campaign, TrialOutcome
from repro.core.injector import PermanentTrainingFaultHook, TransientTrainingFaultHook
from repro.core.sites import BufferSelector
from repro.experiments.common import (
    evaluate_grid_policy,
    greedy_policy,
    run_campaign,
    train_grid_nn,
    train_tabular,
)
from repro.experiments.config import (
    APPROACH_PARAM,
    FAST_PARAM,
    GridNNConfig,
    GridTabularConfig,
    grid_ber_sweep,
    grid_config_for,
    injection_episodes as injection_episode_grid,
)
from repro.experiments.registry import register_experiment
from repro.io.results import ResultTable
from repro.quant.statistics import bit_level_stats
from repro.rl.trainer import TrainingHooks

__all__ = [
    "run_transient_training_heatmap",
    "run_permanent_training_sweep",
    "run_value_histograms",
    "heatmap_matrix",
]

GridConfig = Union[GridTabularConfig, GridNNConfig]


def _train_and_evaluate(
    config: GridConfig,
    rng: np.random.Generator,
    hooks: Iterable[TrainingHooks],
) -> float:
    """One trial: train under the given fault hooks, return eval success rate."""
    seed = int(rng.integers(2**31 - 1))
    trial_rng = np.random.default_rng(seed)
    if isinstance(config, GridNNConfig):
        agent, eval_env, _ = train_grid_nn(config, trial_rng, hooks=hooks)
    else:
        agent, eval_env, _ = train_tabular(config, trial_rng, hooks=hooks)
    return evaluate_grid_policy(
        greedy_policy(agent), eval_env, config.eval_trials, max_steps=config.max_steps
    )


def run_transient_training_heatmap(
    config: GridConfig,
    bit_error_rates: Sequence[float],
    injection_episodes: Sequence[int],
    seed: Optional[int] = None,
    repetitions: Optional[int] = None,
    workers: Optional[int] = None,
    checkpoint_dir=None,
    resume: bool = False,
    *,
    batch_size: Optional[int] = None,
    execution: Optional[ExecutionConfig] = None,
) -> ResultTable:
    """Success rate after training with a transient fault at each (BER, episode)."""
    execution = resolve_execution(
        execution,
        seed=seed,
        repetitions=repetitions,
        workers=workers,
        batch_size=batch_size,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )
    seed = execution.seed
    approach = "nn" if isinstance(config, GridNNConfig) else "tabular"
    repetitions = execution.resolve_repetitions(config.repetitions)
    table = ResultTable(title=f"Fig2 transient training heatmap ({approach})")
    for ber in bit_error_rates:
        for episode in injection_episodes:
            def trial(rng: np.random.Generator, ber=ber, episode=episode) -> TrialOutcome:
                hooks: List[TrainingHooks] = []
                if ber > 0:
                    hooks.append(
                        TransientTrainingFaultHook(
                            ber, inject_episode=episode, rng=rng
                        )
                    )
                rate = _train_and_evaluate(config, rng, hooks)
                return TrialOutcome(success=None, metric=rate)

            campaign = Campaign(
                f"fig2-{approach}-transient-ber{ber}-ep{episode}", repetitions, seed=seed
            )
            result = run_campaign(campaign, trial, execution=execution)
            table.add(
                approach=approach,
                fault_type="transient",
                bit_error_rate=ber,
                injection_episode=episode,
                success_rate=result.mean_metric,
                repetitions=repetitions,
            )
    return table


def run_permanent_training_sweep(
    config: GridConfig,
    bit_error_rates: Sequence[float],
    seed: Optional[int] = None,
    repetitions: Optional[int] = None,
    workers: Optional[int] = None,
    checkpoint_dir=None,
    resume: bool = False,
    *,
    batch_size: Optional[int] = None,
    execution: Optional[ExecutionConfig] = None,
) -> ResultTable:
    """Success rate after training under stuck-at-0 / stuck-at-1 faults."""
    execution = resolve_execution(
        execution,
        seed=seed,
        repetitions=repetitions,
        workers=workers,
        batch_size=batch_size,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )
    seed = execution.seed
    approach = "nn" if isinstance(config, GridNNConfig) else "tabular"
    repetitions = execution.resolve_repetitions(config.repetitions)
    table = ResultTable(title=f"Fig2 permanent training sweep ({approach})")
    for stuck_value in (0, 1):
        for ber in bit_error_rates:
            def trial(rng: np.random.Generator, ber=ber, stuck=stuck_value) -> TrialOutcome:
                hooks: List[TrainingHooks] = []
                if ber > 0:
                    hooks.append(
                        PermanentTrainingFaultHook(ber, stuck_value=stuck, rng=rng)
                    )
                rate = _train_and_evaluate(config, rng, hooks)
                return TrialOutcome(success=None, metric=rate)

            campaign = Campaign(
                f"fig2-{approach}-sa{stuck_value}-ber{ber}", repetitions, seed=seed
            )
            result = run_campaign(campaign, trial, execution=execution)
            table.add(
                approach=approach,
                fault_type=f"stuck-at-{stuck_value}",
                bit_error_rate=ber,
                injection_episode=0,
                success_rate=result.mean_metric,
                repetitions=repetitions,
            )
    return table


def run_value_histograms(
    tabular_config: Optional[GridTabularConfig] = None,
    nn_config: Optional[GridNNConfig] = None,
    seed: int = 0,
) -> ResultTable:
    """Fig. 2b/2d — bit-level statistics of trained tabular values and NN weights.

    The paper reports ~76% zero bits for tabular values (3.18x more 0s than
    1s) and ~88% zero bits for NN weights (7.17x), which is why stuck-at-1
    faults are so much more damaging for the NN policy.
    """
    tabular_config = tabular_config or GridTabularConfig()
    nn_config = nn_config or GridNNConfig()
    table = ResultTable(title="Fig2b/2d value and bit histograms")

    rng = np.random.default_rng(seed)
    agent, _, _ = train_tabular(tabular_config, rng)
    stats = bit_level_stats(agent.memory_buffers()["qtable"])
    table.add(policy="tabular", buffer="qtable", **stats.as_dict())

    rng = np.random.default_rng(seed)
    nn_agent, _, _ = train_grid_nn(nn_config, rng)
    buffers = nn_agent.memory_buffers()
    weight_buffers = {k: v for k, v in buffers.items() if k.endswith(".weight")}
    zero_bits = one_bits = 0
    lo, hi = np.inf, -np.inf
    for tensor in weight_buffers.values():
        stats = bit_level_stats(tensor)
        zero_bits += stats.zero_bits
        one_bits += stats.one_bits
        lo, hi = min(lo, stats.min_value), max(hi, stats.max_value)
    total = zero_bits + one_bits
    table.add(
        policy="nn",
        buffer="weights",
        zero_bits=zero_bits,
        one_bits=one_bits,
        zero_fraction=zero_bits / total,
        one_fraction=one_bits / total,
        zero_to_one_ratio=zero_bits / max(one_bits, 1),
        min_value=lo,
        max_value=hi,
    )
    return table


# --------------------------------------------------------------------------- #
# Declarative specs
# --------------------------------------------------------------------------- #
@register_experiment(
    "fig2.transient_heatmap",
    description="Fig. 2a/2c — success rate after a transient training fault "
    "at each (BER, injection episode)",
    params=(APPROACH_PARAM, FAST_PARAM),
)
def _transient_heatmap_spec(
    execution: ExecutionConfig, *, approach: str, fast: bool
) -> ResultTable:
    config = grid_config_for(approach, fast, scale=execution.scale)
    return run_transient_training_heatmap(
        config,
        grid_ber_sweep(execution.scale),
        injection_episode_grid(config.episodes, execution.scale),
        execution=execution,
    )


@register_experiment(
    "fig2.permanent_sweep",
    description="Fig. 2a/2c stuck-at columns — success rate after training "
    "under stuck-at-0/1 faults",
    params=(APPROACH_PARAM, FAST_PARAM),
)
def _permanent_sweep_spec(
    execution: ExecutionConfig, *, approach: str, fast: bool
) -> ResultTable:
    config = grid_config_for(approach, fast, scale=execution.scale)
    return run_permanent_training_sweep(
        config, grid_ber_sweep(execution.scale), execution=execution
    )


def heatmap_matrix(
    table: ResultTable,
    bit_error_rates: Sequence[float],
    injection_episodes: Sequence[int],
    value_column: str = "success_rate",
) -> np.ndarray:
    """Reshape a Fig. 2-style table into a (BER x episode) matrix for rendering."""
    matrix = np.full((len(bit_error_rates), len(injection_episodes)), np.nan)
    for row in table.rows:
        try:
            i = list(bit_error_rates).index(row["bit_error_rate"])
            j = list(injection_episodes).index(row["injection_episode"])
        except ValueError:
            continue
        matrix[i, j] = row[value_column]
    return matrix
