"""Experiment drivers, one per paper figure.

Each module exposes ``run_*`` functions that return
:class:`~repro.io.results.ResultTable` / :class:`~repro.io.results.SeriesResult`
objects reproducing the rows and series of the corresponding figure, and
registers each experiment as a declarative
:class:`~repro.experiments.registry.ExperimentSpec` — the preferred way to
run them is :func:`repro.api.run` (or the registry-generated CLI).  The
benchmark harness under ``benchmarks/`` calls these drivers and prints the
resulting tables; EXPERIMENTS.md records paper-vs-measured values.

Experiment sizes (repetitions, sweep densities, training lengths) are
controlled by the config presets in :mod:`repro.experiments.config`; the
defaults are sized for a laptop CPU and can be scaled up through environment
variables (``REPRO_SCALE``, ``REPRO_CAMPAIGN_REPS``).
"""

from repro.experiments.config import (
    ExperimentScale,
    GridTabularConfig,
    GridNNConfig,
    DroneConfig,
    drone_config_for,
    get_scale,
    grid_config_for,
)
from repro.experiments.registry import (
    ExperimentSpec,
    ParamSpec,
    get_spec,
    list_specs,
    register_experiment,
)

__all__ = [
    "ExperimentScale",
    "GridTabularConfig",
    "GridNNConfig",
    "DroneConfig",
    "get_scale",
    "grid_config_for",
    "drone_config_for",
    "ExperimentSpec",
    "ParamSpec",
    "register_experiment",
    "get_spec",
    "list_specs",
]
