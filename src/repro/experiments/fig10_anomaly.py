"""Fig. 10 — effectiveness of range-based anomaly detection at inference.

Transient faults are injected into the NN weights; the range detector
(per-layer bounds + 10% margin, sign+integer-bit comparison) scrubs anomalous
values before they reach the policy.  Panel (a) is the Grid World success
rate with / without mitigation; panel (b) is the drone flight distance with /
without mitigation.  The paper reports roughly a 2x success-rate improvement
and a 39% flight-quality improvement at high BER, at <3% runtime overhead.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.api.execution import ExecutionConfig, resolve_execution
from repro.core.campaign import Campaign, TrialOutcome
from repro.core.fault_models import TransientBitFlip
from repro.core.injector import inject_weight_faults
from repro.core.mitigation.anomaly import RangeAnomalyDetector
from repro.experiments.common import (
    build_drone_bundle,
    evaluate_drone_msf,
    run_campaign,
    train_grid_nn,
)
from repro.experiments.config import (
    FAST_PARAM,
    DroneConfig,
    GridNNConfig,
    drone_ber_sweep,
    drone_config_for,
    grid_ber_sweep,
    grid_config_for,
)
from repro.experiments.fig7_drone import executor_policy
from repro.experiments.registry import ParamSpec, register_experiment
from repro.io.results import ResultTable
from repro.nn.buffers import QuantizedExecutor
from repro.rl.evaluation import evaluate_success_rate

__all__ = ["run_gridworld_anomaly_mitigation", "run_drone_anomaly_mitigation"]


def run_gridworld_anomaly_mitigation(
    config: GridNNConfig,
    bit_error_rates: Sequence[float],
    margin: float = 0.1,
    seed: Optional[int] = None,
    repetitions: Optional[int] = None,
    episodes_per_trial: int = 5,
    workers: Optional[int] = None,
    batch_size: Optional[int] = None,
    checkpoint_dir=None,
    resume: bool = False,
    *,
    execution: Optional[ExecutionConfig] = None,
) -> ResultTable:
    """Fig. 10a — Grid World NN inference success rate, mitigation on vs off.

    ``batch_size`` selects the batched campaign engine; the detector-scrub
    trials have no vectorized implementation yet, so batches fall back to
    scalar execution (outcomes are unchanged either way).
    """
    execution = resolve_execution(
        execution,
        seed=seed,
        repetitions=repetitions,
        workers=workers,
        batch_size=batch_size,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )
    seed = execution.seed
    repetitions = execution.resolve_repetitions(config.repetitions)
    rng = np.random.default_rng(seed)
    agent, eval_env, _ = train_grid_nn(config, rng)

    # Profile layer ranges on the clean policy using every state's encoding.
    calibration = np.stack([eval_env.one_hot(s) for s in range(eval_env.n_states)])
    clean_executor = QuantizedExecutor(agent.network, config.weight_qformat)
    profile = clean_executor.profile_ranges(calibration)

    table = ResultTable(title="Fig10a Grid World anomaly-detection mitigation")
    for mitigation in (False, True):
        for ber in bit_error_rates:
            def trial(rng: np.random.Generator, ber=ber, mitigation=mitigation) -> TrialOutcome:
                executor = QuantizedExecutor(agent.network, config.weight_qformat)
                try:
                    if ber > 0:
                        inject_weight_faults(executor, TransientBitFlip(ber), rng=rng)
                    if mitigation:
                        # Faults live in the weight buffers, so the detector
                        # sits on the filter-buffer read port (weight scrub).
                        detector = RangeAnomalyDetector(profile, margin=margin)
                        detector.apply_to_weights(executor)
                    policy = lambda s: int(
                        np.argmax(executor.forward(agent.state_encoder(s)[None])[0])
                    )
                    rate = evaluate_success_rate(
                        policy, eval_env, trials=episodes_per_trial, max_steps=config.max_steps
                    )
                    return TrialOutcome(metric=rate)
                finally:
                    executor.restore_clean_weights()

            label = "mitigated" if mitigation else "no-mitigation"
            result = run_campaign(
                Campaign(f"fig10a-{label}-ber{ber}", repetitions, seed=seed + 1),
                trial,
                execution=execution,
            )
            table.add(
                mitigation=mitigation,
                bit_error_rate=ber,
                success_rate=result.mean_metric,
                repetitions=repetitions,
            )
    return table


def run_drone_anomaly_mitigation(
    config: DroneConfig,
    bit_error_rates: Sequence[float],
    margin: float = 0.1,
    seed: Optional[int] = None,
    repetitions: Optional[int] = None,
    workers: Optional[int] = None,
    batch_size: Optional[int] = None,
    checkpoint_dir=None,
    resume: bool = False,
    *,
    execution: Optional[ExecutionConfig] = None,
) -> ResultTable:
    """Fig. 10b — drone flight distance under weight faults, mitigation on vs off.

    ``batch_size`` selects the batched campaign engine; the drone trials
    stay scalar behind it (no vectorized implementation), so batches fall
    back to scalar execution with unchanged outcomes.
    """
    execution = resolve_execution(
        execution,
        seed=seed,
        repetitions=repetitions,
        workers=workers,
        batch_size=batch_size,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )
    seed = execution.seed
    repetitions = execution.resolve_repetitions(config.repetitions)
    bundle = build_drone_bundle(config, seed=seed)

    table = ResultTable(title="Fig10b drone anomaly-detection mitigation")
    for mitigation in (False, True):
        for ber in bit_error_rates:
            def trial(rng: np.random.Generator, ber=ber, mitigation=mitigation) -> TrialOutcome:
                executor = bundle.make_executor()
                try:
                    if ber > 0:
                        inject_weight_faults(executor, TransientBitFlip(ber), rng=rng)
                    if mitigation:
                        # Faults live in the weight buffers, so the detector
                        # sits on the filter-buffer read port (weight scrub).
                        detector = RangeAnomalyDetector(bundle.range_profile, margin=margin)
                        detector.apply_to_weights(executor)
                    msf = evaluate_drone_msf(
                        executor_policy(executor),
                        bundle.env(config.environment),
                        trials=config.eval_trials,
                        max_steps=config.max_eval_steps,
                    )
                    return TrialOutcome(metric=msf)
                finally:
                    executor.restore_clean_weights()

            label = "mitigated" if mitigation else "no-mitigation"
            result = run_campaign(
                Campaign(f"fig10b-{label}-ber{ber}", repetitions, seed=seed + 2),
                trial,
                execution=execution,
            )
            table.add(
                mitigation=mitigation,
                bit_error_rate=ber,
                mean_safe_flight=result.mean_metric,
                repetitions=repetitions,
            )
    return table


# --------------------------------------------------------------------------- #
# Declarative specs
# --------------------------------------------------------------------------- #
_MARGIN_PARAM = ParamSpec(
    "margin", float, 0.1, help="range-detector margin around the profiled bounds"
)


@register_experiment(
    "fig10.gridworld",
    description="Fig. 10a — Grid World NN inference success rate with and "
    "without range-based anomaly detection",
    params=(FAST_PARAM, _MARGIN_PARAM),
    batched=True,
)
def _gridworld_anomaly_spec(
    execution: ExecutionConfig, *, fast: bool, margin: float
) -> ResultTable:
    config = grid_config_for("nn", fast, scale=execution.scale)
    return run_gridworld_anomaly_mitigation(
        config, grid_ber_sweep(execution.scale), margin=margin, execution=execution
    )


@register_experiment(
    "fig10.drone",
    description="Fig. 10b — drone flight distance under weight faults with "
    "and without range-based anomaly detection",
    params=(FAST_PARAM, _MARGIN_PARAM),
    batched=True,
)
def _drone_anomaly_spec(
    execution: ExecutionConfig, *, fast: bool, margin: float
) -> ResultTable:
    config = drone_config_for(fast, scale=execution.scale)
    return run_drone_anomaly_mitigation(
        config, drone_ber_sweep(execution.scale), margin=margin, execution=execution
    )
