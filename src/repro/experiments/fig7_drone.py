"""Fig. 7 — fault characterization on the drone navigation task.

Panel (a): faults during *online fine-tuning* of the pre-trained policy
(transient bit-flips at different steps / BERs, plus stuck-at faults held
throughout), measured as the fine-tuned policy's Mean Safe Flight distance.

Panels (b)-(e): faults during *inference* of the trained policy —
(b) the two environments, (c) fault location (input buffer / weight buffer /
activations transient / activations permanent), (d) per-layer sensitivity
(conv1..fc2), and (e) fixed-point data type (Q(1,4,11) / Q(1,7,8) / Q(1,10,5)).

The inference panels implement the batched-execution protocol
(``run_batch``): under a batched runner each batch of trials becomes policy
*replicas* evaluated through stacked quantized buffers and the replica-axis
vectorized drone environment (:class:`~repro.envs.drone.DroneNavEnvBatch`),
bit-identical to serial execution (``tests/test_batched_parity.py``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.api.execution import ExecutionConfig, resolve_execution
from repro.core.campaign import Campaign, TrialOutcome
from repro.core.evaluator import BatchedEvaluator
from repro.core.fault_models import FaultModel, StuckAtFault, TransientBitFlip
from repro.core.injector import (
    ActivationFaultInjector,
    InputFaultInjector,
    PermanentTrainingFaultHook,
    ReplicaFanoutHook,
    TransientTrainingFaultHook,
    inject_weight_faults,
)
from repro.core.sites import BufferSelector
from repro.envs.batched import BatchedEnv, EnvPool
from repro.envs.drone import make_drone_env
from repro.experiments.common import (
    DronePolicyBundle,
    build_drone_bundle,
    evaluate_drone_msf,
    run_campaign,
)
from repro.experiments.config import (
    FAST_PARAM,
    DroneConfig,
    drone_ber_sweep,
    drone_config_for,
)
from repro.experiments.registry import register_experiment
from repro.io.results import ResultTable
from repro.nn.buffers import QuantizedExecutor
from repro.policies.c3f2 import C3F2_LAYER_NAMES
from repro.quant.qformat import Q16_MID, Q16_NARROW, Q16_WIDE, QFormat
from repro.rl import DecayingEpsilonGreedy, DoubleDQNAgent, train_agent
from repro.rl.evaluation import evaluate_mean_metrics

__all__ = [
    "executor_policy",
    "run_drone_training_faults",
    "run_environment_comparison",
    "run_fault_location_sweep",
    "run_layer_sweep",
    "run_datatype_sweep",
]


def executor_policy(executor: QuantizedExecutor) -> Callable[[np.ndarray], int]:
    """Greedy policy reading Q-values through the quantized executor."""
    return lambda state: int(np.argmax(executor.forward(state[None])[0]))


# --------------------------------------------------------------------------- #
# Inference-side sweeps (Fig. 7b-e)
# --------------------------------------------------------------------------- #
def _msf_with_faults(
    bundle: DronePolicyBundle,
    env_name: str,
    rng: np.random.Generator,
    qformat: Optional[QFormat] = None,
    weight_fault: Optional[FaultModel] = None,
    weight_selector: Optional[BufferSelector] = None,
    activation_injector: Optional[ActivationFaultInjector] = None,
    input_injector: Optional[InputFaultInjector] = None,
) -> float:
    """MSF of the bundle's policy with the given fault configuration applied."""
    config = bundle.config
    executor = bundle.make_executor(qformat)
    if weight_fault is not None and weight_fault.bit_error_rate > 0:
        inject_weight_faults(executor, weight_fault, selector=weight_selector, rng=rng)
    if activation_injector is not None:
        executor.activation_hooks.append(activation_injector)
    if input_injector is not None:
        executor.input_hooks.append(input_injector)
    try:
        return evaluate_drone_msf(
            executor_policy(executor),
            bundle.env(env_name),
            trials=config.eval_trials,
            max_steps=config.max_eval_steps,
        )
    finally:
        executor.restore_clean_weights()


class _DroneMSFTrial:
    """One Fig. 7b-e campaign trial: the drone policy's MSF under faults.

    Scalar execution (``__call__``) reproduces the original per-trial path:
    a fresh :class:`~repro.nn.buffers.QuantizedExecutor`, static weight
    faults, per-forward activation/input hooks, and
    ``config.eval_trials`` scalar episodes.  Batched execution
    (``run_batch``) evaluates the whole batch of trials as policy replicas:
    weight-fault patterns apply to stacked quantized buffers in one
    vectorized bit operation, activation/input injectors fan out per
    replica via :class:`~repro.core.injector.ReplicaFanoutHook`, and the
    episodes run against the replica-axis vectorized
    :class:`~repro.envs.drone.DroneNavEnvBatch` (or, with
    ``env_backend="pool"``, against an :class:`~repro.envs.batched.EnvPool`
    of scalar drone environments — the fallback the guardrail benchmark
    measures the native batch against).  Both paths are bit-identical for
    the same trial RNGs.
    """

    def __init__(
        self,
        bundle: DronePolicyBundle,
        env_name: str,
        *,
        qformat: Optional[QFormat] = None,
        weight_fault: Optional[FaultModel] = None,
        weight_selector: Optional[BufferSelector] = None,
        activation_fault: Optional[FaultModel] = None,
        activation_mode: str = "transient",
        input_fault: Optional[FaultModel] = None,
        env_backend: str = "batch",
    ) -> None:
        if env_backend not in ("batch", "pool"):
            raise ValueError(f"env_backend must be 'batch' or 'pool', got {env_backend!r}")
        self.bundle = bundle
        self.env_name = env_name
        self.qformat = qformat
        self.weight_fault = weight_fault
        self.weight_selector = weight_selector
        self.activation_fault = activation_fault
        self.activation_mode = activation_mode
        self.input_fault = input_fault
        self.env_backend = env_backend
        # Per-batch-size caches: campaigns call run_batch once per batch,
        # and rebuilding the stacked evaluator (re-encoding every weight
        # buffer) and the environments each time is pure fixed overhead.
        # Reuse is exact: the evaluator is restored to its clean pre-fault
        # state between batches and every rollout starts with reset_all().
        self._evaluators: Dict[int, BatchedEvaluator] = {}
        self._envs: Dict[int, BatchedEnv] = {}

    def __call__(self, rng: np.random.Generator) -> TrialOutcome:
        activation = None
        input_inj = None
        if self.activation_fault is not None:
            activation = ActivationFaultInjector(
                self.activation_fault, mode=self.activation_mode, rng=rng
            )
        if self.input_fault is not None:
            input_inj = InputFaultInjector(self.input_fault, rng=rng)
        msf = _msf_with_faults(
            self.bundle,
            self.env_name,
            rng,
            qformat=self.qformat,
            weight_fault=self.weight_fault,
            weight_selector=self.weight_selector,
            activation_injector=activation,
            input_injector=input_inj,
        )
        return TrialOutcome(metric=msf)

    def run_batch(self, rngs: Sequence[np.random.Generator]) -> List[TrialOutcome]:
        n = len(rngs)
        config = self.bundle.config
        self.bundle.restore_clean()
        evaluator = self._evaluators.get(n)
        if evaluator is None:
            evaluator = BatchedEvaluator(
                self.bundle.network, self.qformat or config.qformat, n
            )
            self._evaluators[n] = evaluator
        else:
            evaluator.restore_clean_weights()
            evaluator.executor.input_hooks.clear()
            evaluator.executor.activation_hooks.clear()
        if self.weight_fault is not None and self.weight_fault.bit_error_rate > 0:
            # The scalar path's inject_weight_faults defaults to
            # all_weights(); the evaluator's default selector matches
            # everything by name, so pass the scalar default explicitly.
            evaluator.inject_weight_faults(
                self.weight_fault,
                rngs,
                selector=self.weight_selector or BufferSelector.all_weights(),
            )
        fanouts: List[ReplicaFanoutHook] = []
        if self.activation_fault is not None:
            fanout = ReplicaFanoutHook(
                [
                    ActivationFaultInjector(
                        self.activation_fault, mode=self.activation_mode, rng=rng
                    )
                    for rng in rngs
                ]
            )
            evaluator.executor.activation_hooks.append(fanout)
            fanouts.append(fanout)
        if self.input_fault is not None:
            fanout = ReplicaFanoutHook(
                [InputFaultInjector(self.input_fault, rng=rng) for rng in rngs]
            )
            evaluator.executor.input_hooks.append(fanout)
            fanouts.append(fanout)

        def policy(step: int, indices: np.ndarray, states: List[object]) -> List[int]:
            for fanout in fanouts:
                fanout.set_replicas(indices)
            stacked = np.stack(states)[:, None]
            greedy = evaluator.greedy_actions(stacked, replicas=indices)
            return [int(action) for action in greedy]

        msfs = evaluate_mean_metrics(
            policy,
            self._batched_env(n),
            "flight_distance",
            trials=config.eval_trials,
            max_steps=config.max_eval_steps,
        )
        return [TrialOutcome(metric=msf) for msf in msfs]

    def _batched_env(self, n: int) -> BatchedEnv:
        env = self._envs.get(n)
        if env is None:
            if self.env_backend == "pool":
                image_size = self.bundle.config.image_size
                env = EnvPool.from_factory(
                    lambda: make_drone_env(self.env_name, image_size=image_size), n
                )
            else:
                env = self.bundle.env(self.env_name).batched(n)
            self._envs[n] = env
        return env


def run_environment_comparison(
    config: DroneConfig,
    bit_error_rates: Sequence[float],
    environments: Sequence[str] = ("indoor-long", "indoor-vanleer"),
    seed: Optional[int] = None,
    repetitions: Optional[int] = None,
    workers: Optional[int] = None,
    checkpoint_dir=None,
    resume: bool = False,
    *,
    batch_size: Optional[int] = None,
    execution: Optional[ExecutionConfig] = None,
) -> ResultTable:
    """Fig. 7b — MSF vs BER for transient weight faults in each environment."""
    execution = resolve_execution(
        execution,
        seed=seed,
        repetitions=repetitions,
        workers=workers,
        batch_size=batch_size,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )
    seed = execution.seed
    repetitions = execution.resolve_repetitions(config.repetitions)
    bundle = build_drone_bundle(config, seed=seed)
    table = ResultTable(title="Fig7b drone inference: environment comparison")
    for env_name in environments:
        for ber in bit_error_rates:
            trial = _DroneMSFTrial(
                bundle, env_name, weight_fault=TransientBitFlip(ber)
            )
            result = run_campaign(
                Campaign(f"fig7b-{env_name}-ber{ber}", repetitions, seed=seed + 1),
                trial,
                execution=execution,
            )
            table.add(
                environment=env_name,
                bit_error_rate=ber,
                mean_safe_flight=result.mean_metric,
                repetitions=repetitions,
            )
    return table


def run_fault_location_sweep(
    config: DroneConfig,
    bit_error_rates: Sequence[float],
    seed: Optional[int] = None,
    repetitions: Optional[int] = None,
    workers: Optional[int] = None,
    checkpoint_dir=None,
    resume: bool = False,
    *,
    batch_size: Optional[int] = None,
    execution: Optional[ExecutionConfig] = None,
) -> ResultTable:
    """Fig. 7c — MSF vs BER per fault location (input / weight / act-T / act-P)."""
    execution = resolve_execution(
        execution,
        seed=seed,
        repetitions=repetitions,
        workers=workers,
        batch_size=batch_size,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )
    seed = execution.seed
    repetitions = execution.resolve_repetitions(config.repetitions)
    bundle = build_drone_bundle(config, seed=seed)
    table = ResultTable(title="Fig7c drone inference: fault location")
    locations = ("input", "weight", "activation-transient", "activation-permanent")
    for location in locations:
        for ber in bit_error_rates:
            weight_fault = None
            activation_fault = None
            activation_mode = "transient"
            input_fault = None
            if ber > 0:
                if location == "weight":
                    weight_fault = TransientBitFlip(ber)
                elif location == "input":
                    input_fault = TransientBitFlip(ber)
                elif location == "activation-transient":
                    activation_fault = TransientBitFlip(ber)
                else:
                    activation_fault = StuckAtFault(ber, stuck_value=1)
                    activation_mode = "permanent"
            trial = _DroneMSFTrial(
                bundle,
                config.environment,
                weight_fault=weight_fault,
                activation_fault=activation_fault,
                activation_mode=activation_mode,
                input_fault=input_fault,
            )
            result = run_campaign(
                Campaign(f"fig7c-{location}-ber{ber}", repetitions, seed=seed + 2),
                trial,
                execution=execution,
            )
            table.add(
                location=location,
                bit_error_rate=ber,
                mean_safe_flight=result.mean_metric,
                repetitions=repetitions,
            )
    return table


def run_layer_sweep(
    config: DroneConfig,
    bit_error_rates: Sequence[float],
    layers: Sequence[str] = C3F2_LAYER_NAMES,
    seed: Optional[int] = None,
    repetitions: Optional[int] = None,
    workers: Optional[int] = None,
    checkpoint_dir=None,
    resume: bool = False,
    *,
    batch_size: Optional[int] = None,
    execution: Optional[ExecutionConfig] = None,
) -> ResultTable:
    """Fig. 7d — MSF vs BER with transient weight faults confined to one layer."""
    execution = resolve_execution(
        execution,
        seed=seed,
        repetitions=repetitions,
        workers=workers,
        batch_size=batch_size,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )
    seed = execution.seed
    repetitions = execution.resolve_repetitions(config.repetitions)
    bundle = build_drone_bundle(config, seed=seed)
    table = ResultTable(title="Fig7d drone inference: per-layer sensitivity")
    for layer in layers:
        for ber in bit_error_rates:
            trial = _DroneMSFTrial(
                bundle,
                config.environment,
                weight_fault=TransientBitFlip(ber),
                weight_selector=BufferSelector.for_layer(layer),
            )
            result = run_campaign(
                Campaign(f"fig7d-{layer}-ber{ber}", repetitions, seed=seed + 3),
                trial,
                execution=execution,
            )
            table.add(
                layer=layer,
                bit_error_rate=ber,
                mean_safe_flight=result.mean_metric,
                repetitions=repetitions,
            )
    return table


def run_datatype_sweep(
    config: DroneConfig,
    bit_error_rates: Sequence[float],
    qformats: Sequence[QFormat] = (Q16_NARROW, Q16_MID, Q16_WIDE),
    seed: Optional[int] = None,
    repetitions: Optional[int] = None,
    workers: Optional[int] = None,
    checkpoint_dir=None,
    resume: bool = False,
    *,
    batch_size: Optional[int] = None,
    execution: Optional[ExecutionConfig] = None,
) -> ResultTable:
    """Fig. 7e — MSF vs BER for each fixed-point weight data type."""
    execution = resolve_execution(
        execution,
        seed=seed,
        repetitions=repetitions,
        workers=workers,
        batch_size=batch_size,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )
    seed = execution.seed
    repetitions = execution.resolve_repetitions(config.repetitions)
    bundle = build_drone_bundle(config, seed=seed)
    table = ResultTable(title="Fig7e drone inference: data type")
    for qformat in qformats:
        for ber in bit_error_rates:
            trial = _DroneMSFTrial(
                bundle,
                config.environment,
                qformat=qformat,
                weight_fault=TransientBitFlip(ber),
            )
            result = run_campaign(
                Campaign(f"fig7e-{qformat}-ber{ber}", repetitions, seed=seed + 4),
                trial,
                execution=execution,
            )
            table.add(
                qformat=str(qformat),
                bit_error_rate=ber,
                mean_safe_flight=result.mean_metric,
                repetitions=repetitions,
            )
    return table


# --------------------------------------------------------------------------- #
# Online fine-tuning faults (Fig. 7a)
# --------------------------------------------------------------------------- #
def _finetune_and_measure(
    bundle: DronePolicyBundle,
    rng: np.random.Generator,
    hooks,
) -> float:
    """Fine-tune the last two layers online under fault hooks, then measure MSF."""
    config = bundle.config
    bundle.restore_clean()
    env = bundle.env(config.environment)
    agent = DoubleDQNAgent(
        bundle.network,
        state_encoder=lambda state: state,
        n_actions=config.n_actions,
        gamma=0.95,
        learning_rate=1e-4,
        schedule=DecayingEpsilonGreedy(0.3, 0.05, 0.9),
        replay_capacity=500,
        batch_size=8,
        train_every=4,
        target_update_every=100,
        min_replay_size=16,
        weight_qformat=config.qformat,
        frozen_prefixes=["conv1", "conv2", "conv3"],
        rng=rng,
    )
    train_agent(
        agent,
        env,
        episodes=config.finetune_episodes,
        max_steps_per_episode=config.finetune_max_steps,
        hooks=hooks,
    )
    return evaluate_drone_msf(
        lambda state: agent.select_action(state, explore=False),
        env,
        trials=config.eval_trials,
        max_steps=config.max_eval_steps,
    )


def run_drone_training_faults(
    config: DroneConfig,
    bit_error_rates: Sequence[float],
    injection_episodes: Optional[Sequence[int]] = None,
    seed: Optional[int] = None,
    repetitions: Optional[int] = None,
    workers: Optional[int] = None,
    checkpoint_dir=None,
    resume: bool = False,
    *,
    batch_size: Optional[int] = None,
    execution: Optional[ExecutionConfig] = None,
) -> ResultTable:
    """Fig. 7a — MSF after online fine-tuning with transient / stuck-at faults."""
    execution = resolve_execution(
        execution,
        seed=seed,
        repetitions=repetitions,
        workers=workers,
        batch_size=batch_size,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )
    seed = execution.seed
    repetitions = execution.resolve_repetitions(config.repetitions)
    bundle = build_drone_bundle(config, seed=seed)
    if injection_episodes is None:
        injection_episodes = [0, max(0, config.finetune_episodes - 1)]
    table = ResultTable(title="Fig7a drone online-training faults")

    for ber in bit_error_rates:
        for episode in injection_episodes:
            def trial(rng: np.random.Generator, ber=ber, episode=episode) -> TrialOutcome:
                hooks = []
                if ber > 0:
                    hooks.append(
                        TransientTrainingFaultHook(
                            ber,
                            inject_episode=episode,
                            selector=BufferSelector.all_weights(),
                            rng=rng,
                        )
                    )
                msf = _finetune_and_measure(bundle, rng, hooks)
                return TrialOutcome(metric=msf)

            result = run_campaign(
                Campaign(f"fig7a-transient-ber{ber}-ep{episode}", repetitions, seed=seed + 5),
                trial,
                execution=execution,
            )
            table.add(
                fault_type="transient",
                bit_error_rate=ber,
                injection_episode=episode,
                mean_safe_flight=result.mean_metric,
                repetitions=repetitions,
            )

    for stuck_value in (0, 1):
        for ber in bit_error_rates:
            def trial(rng: np.random.Generator, ber=ber, stuck=stuck_value) -> TrialOutcome:
                hooks = []
                if ber > 0:
                    hooks.append(
                        PermanentTrainingFaultHook(
                            ber,
                            stuck_value=stuck,
                            selector=BufferSelector.all_weights(),
                            rng=rng,
                        )
                    )
                msf = _finetune_and_measure(bundle, rng, hooks)
                return TrialOutcome(metric=msf)

            result = run_campaign(
                Campaign(f"fig7a-sa{stuck_value}-ber{ber}", repetitions, seed=seed + 6),
                trial,
                execution=execution,
            )
            table.add(
                fault_type=f"stuck-at-{stuck_value}",
                bit_error_rate=ber,
                injection_episode=0,
                mean_safe_flight=result.mean_metric,
                repetitions=repetitions,
            )
    return table


# --------------------------------------------------------------------------- #
# Declarative specs
# --------------------------------------------------------------------------- #
@register_experiment(
    "fig7.training_faults",
    description="Fig. 7a — drone MSF after online fine-tuning under "
    "transient / stuck-at faults",
    params=(FAST_PARAM,),
)
def _training_faults_spec(execution: ExecutionConfig, *, fast: bool) -> ResultTable:
    config = drone_config_for(fast, scale=execution.scale)
    return run_drone_training_faults(
        config, drone_ber_sweep(execution.scale), execution=execution
    )


@register_experiment(
    "fig7.environments",
    description="Fig. 7b — drone inference MSF vs BER per environment",
    params=(FAST_PARAM,),
    batched=True,
)
def _environments_spec(execution: ExecutionConfig, *, fast: bool) -> ResultTable:
    config = drone_config_for(fast, scale=execution.scale)
    return run_environment_comparison(
        config, drone_ber_sweep(execution.scale), execution=execution
    )


@register_experiment(
    "fig7.locations",
    description="Fig. 7c — drone inference MSF vs BER per fault location",
    params=(FAST_PARAM,),
    batched=True,
)
def _locations_spec(execution: ExecutionConfig, *, fast: bool) -> ResultTable:
    config = drone_config_for(fast, scale=execution.scale)
    return run_fault_location_sweep(
        config, drone_ber_sweep(execution.scale), execution=execution
    )


@register_experiment(
    "fig7.layers",
    description="Fig. 7d — drone inference MSF vs BER per faulted layer",
    params=(FAST_PARAM,),
    batched=True,
)
def _layers_spec(execution: ExecutionConfig, *, fast: bool) -> ResultTable:
    config = drone_config_for(fast, scale=execution.scale)
    return run_layer_sweep(config, drone_ber_sweep(execution.scale), execution=execution)


@register_experiment(
    "fig7.datatypes",
    description="Fig. 7e — drone inference MSF vs BER per fixed-point data type",
    params=(FAST_PARAM,),
    batched=True,
)
def _datatypes_spec(execution: ExecutionConfig, *, fast: bool) -> ResultTable:
    config = drone_config_for(fast, scale=execution.scale)
    return run_datatype_sweep(
        config, drone_ber_sweep(execution.scale), execution=execution
    )
