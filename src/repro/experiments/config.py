"""Experiment configuration presets.

The paper's campaigns are large (1000 repetitions, 1000-6000 training
episodes, 10x11 heatmap grids).  To keep the reproduction runnable on a
laptop CPU the drivers are parameterized by these config dataclasses, whose
defaults produce the same *sweep structure* at reduced density, and which can
be scaled back up:

* ``REPRO_SCALE`` environment variable: ``"small"`` (default), ``"medium"``
  or ``"paper"`` — controls repetition counts and sweep densities.
* ``REPRO_CAMPAIGN_REPS``: overrides campaign repetitions everywhere.
* ``REPRO_CAMPAIGN_WORKERS``: campaign worker processes (``"auto"`` = one
  per CPU); every driver also accepts an explicit ``workers`` argument.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field
from typing import ClassVar, List, Optional, Tuple, Union

import numpy as np

from repro.core.campaign import default_repetitions
from repro.core.runner import WORKERS_ENV_VAR, default_workers
from repro.experiments.registry import ParamSpec
from repro.quant.qformat import Q8_GRID, Q16_NARROW, QFormat

__all__ = [
    "ExperimentScale",
    "get_scale",
    "GridTabularConfig",
    "GridNNConfig",
    "DroneConfig",
    "GRID_APPROACHES",
    "APPROACH_PARAM",
    "FAST_PARAM",
    "grid_config_for",
    "drone_config_for",
    "default_workers",
    "WORKERS_ENV_VAR",
]

#: Environment variable selecting the experiment scale preset.
SCALE_ENV_VAR = "REPRO_SCALE"


class ExperimentScale(str, enum.Enum):
    """How large the sweeps and campaigns are."""

    SMALL = "small"
    MEDIUM = "medium"
    PAPER = "paper"


def get_scale() -> ExperimentScale:
    """Read the scale preset from the environment (default: small)."""
    raw = os.environ.get(SCALE_ENV_VAR, ExperimentScale.SMALL.value).lower()
    try:
        return ExperimentScale(raw)
    except ValueError as exc:
        valid = [scale.value for scale in ExperimentScale]
        raise ValueError(f"{SCALE_ENV_VAR} must be one of {valid}, got {raw!r}") from exc


def _scaled(
    small: int,
    medium: int,
    paper: int,
    scale: Optional[Union[ExperimentScale, str]] = None,
) -> int:
    scale = ExperimentScale(scale) if scale is not None else get_scale()
    if scale is ExperimentScale.SMALL:
        return small
    if scale is ExperimentScale.MEDIUM:
        return medium
    return paper


@dataclass
class GridTabularConfig:
    """Grid World tabular Q-learning setup (paper-pure rewards)."""

    density: str = "middle"
    episodes: int = 1000
    max_steps: int = 100
    gamma: float = 0.95
    learning_rate: float = 0.3
    epsilon_start: float = 1.0
    epsilon_floor: float = 0.05
    epsilon_decay: float = 0.99
    qformat: QFormat = Q8_GRID
    value_scale: float = 7.5
    initial_q: float = 0.5
    eval_trials: int = 30
    #: (small, medium, paper) campaign repetition presets.
    REPS_PRESET: ClassVar[Tuple[int, int, int]] = (3, 10, 1000)
    repetitions: int = field(
        default_factory=lambda: default_repetitions(_scaled(*GridTabularConfig.REPS_PRESET))
    )

    @classmethod
    def fast(cls) -> "GridTabularConfig":
        """A heavily reduced preset for unit tests."""
        return cls(episodes=250, max_steps=60, eval_trials=10, repetitions=2)


@dataclass
class GridNNConfig:
    """Grid World NN-based Q-learning setup.

    Training uses exploring starts and a small step/bump penalty; both are
    training-protocol aids needed for reliable convergence of the numpy DQN
    (documented in DESIGN.md) and do not change the optimal navigation policy.
    """

    density: str = "middle"
    episodes: int = 600
    max_steps: int = 60
    gamma: float = 0.99
    learning_rate: float = 2e-3
    hidden_sizes: Tuple[int, ...] = (64,)
    epsilon_start: float = 1.0
    epsilon_floor: float = 0.05
    epsilon_decay: float = 0.992
    free_reward: float = -0.08
    bump_reward: float = -0.15
    replay_capacity: int = 5000
    batch_size: int = 64
    train_every: int = 1
    target_update_every: int = 100
    weight_qformat: QFormat = Q16_NARROW
    eval_trials: int = 30
    #: (small, medium, paper) campaign repetition presets.
    REPS_PRESET: ClassVar[Tuple[int, int, int]] = (2, 8, 1000)
    repetitions: int = field(
        default_factory=lambda: default_repetitions(_scaled(*GridNNConfig.REPS_PRESET))
    )

    @classmethod
    def fast(cls) -> "GridNNConfig":
        """A heavily reduced preset for unit tests."""
        return cls(episodes=150, max_steps=40, eval_trials=5, repetitions=1)


@dataclass
class DroneConfig:
    """Drone navigation setup (PEDRA substitute)."""

    environment: str = "indoor-long"
    image_size: int = 32
    n_actions: int = 25
    pretrain_samples: int = 400
    pretrain_extra_env_samples: int = 600
    pretrain_epochs: int = 40
    pretrain_learning_rate: float = 1.5e-3
    qformat: QFormat = Q16_NARROW
    eval_trials: int = 2
    max_eval_steps: int = 300
    finetune_episodes: int = 8
    finetune_max_steps: int = 60
    #: (small, medium, paper) campaign repetition presets.
    REPS_PRESET: ClassVar[Tuple[int, int, int]] = (2, 5, 100)
    repetitions: int = field(
        default_factory=lambda: default_repetitions(_scaled(*DroneConfig.REPS_PRESET))
    )

    @classmethod
    def fast(cls) -> "DroneConfig":
        """A heavily reduced preset for unit tests."""
        return cls(
            pretrain_samples=60,
            pretrain_extra_env_samples=60,
            pretrain_epochs=4,
            eval_trials=1,
            max_eval_steps=80,
            finetune_episodes=2,
            finetune_max_steps=20,
            repetitions=1,
        )


#: BER sweeps used across the Grid World experiments (fractions, not %).
GRID_BER_SWEEP_SMALL: List[float] = [0.0, 0.002, 0.005, 0.01]
GRID_BER_SWEEP_PAPER: List[float] = [0.0] + [round(0.001 * k, 4) for k in range(1, 11)]

#: BER sweeps used for the drone experiments.  The reproduction's C3F2 is two
#: orders of magnitude smaller than the paper's, so each bit flip matters more
#: and the interesting degradation happens at lower BER; the small sweep
#: therefore includes 1e-5 and 5e-5 points.
DRONE_BER_SWEEP_SMALL: List[float] = [0.0, 1e-5, 5e-5, 1e-4, 1e-3, 1e-2]
DRONE_BER_SWEEP_PAPER: List[float] = [0.0, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1]


def grid_ber_sweep(scale: Optional[Union[ExperimentScale, str]] = None) -> List[float]:
    """Grid World bit-error-rate sweep for the current scale."""
    scale = ExperimentScale(scale) if scale is not None else get_scale()
    return GRID_BER_SWEEP_PAPER if scale is not ExperimentScale.SMALL else GRID_BER_SWEEP_SMALL


def drone_ber_sweep(scale: Optional[Union[ExperimentScale, str]] = None) -> List[float]:
    """Drone bit-error-rate sweep for the current scale."""
    scale = ExperimentScale(scale) if scale is not None else get_scale()
    return DRONE_BER_SWEEP_PAPER if scale is not ExperimentScale.SMALL else DRONE_BER_SWEEP_SMALL


#: Valid ``approach`` values for the Grid World experiments.
GRID_APPROACHES: Tuple[str, ...] = ("tabular", "nn")

#: Shared spec parameters (every Grid World spec takes ``approach``; every
#: spec takes ``fast``).  Declared once so the registry and CLI stay aligned.
APPROACH_PARAM = ParamSpec(
    "approach",
    str,
    "tabular",
    help="Grid World agent approach",
    choices=GRID_APPROACHES,
)
FAST_PARAM = ParamSpec(
    "fast", bool, False, help="use the heavily reduced unit-test presets (smoke runs)"
)


def _preset(cls, fast: bool, scale: "Optional[Union[ExperimentScale, str]]"):
    """Build a config preset, optionally pinning the scale's repetition count."""
    if fast:
        return cls.fast()
    if scale is None:
        return cls()
    scale = ExperimentScale(scale)
    return cls(repetitions=default_repetitions(_scaled(*cls.REPS_PRESET, scale=scale)))


def grid_config_for(
    approach: str = "tabular",
    fast: bool = False,
    scale: Optional[Union[ExperimentScale, str]] = None,
) -> "Union[GridTabularConfig, GridNNConfig]":
    """Grid World config preset for an ``approach`` / ``fast`` selection.

    This is how the declarative specs (and the CLI's ``--approach`` /
    ``--fast`` flags) construct configs; ``scale`` pins the repetition
    preset explicitly instead of re-reading ``REPRO_SCALE``.
    """
    if approach not in GRID_APPROACHES:
        raise ValueError(f"approach must be one of {GRID_APPROACHES}, got {approach!r}")
    cls = GridNNConfig if approach == "nn" else GridTabularConfig
    return _preset(cls, fast, scale)


def drone_config_for(
    fast: bool = False, scale: Optional[Union[ExperimentScale, str]] = None
) -> DroneConfig:
    """Drone config preset (the CLI's ``--fast`` flag), like :func:`grid_config_for`."""
    return _preset(DroneConfig, fast, scale)


def injection_episodes(
    total_episodes: int, scale: Optional[Union[ExperimentScale, str]] = None
) -> List[int]:
    """Fault-injection episode grid (Fig. 2 x-axis) for the current scale."""
    scale = ExperimentScale(scale) if scale is not None else get_scale()
    points = _scaled(3, 6, 11, scale)
    return [int(round(e)) for e in np.linspace(0, total_episodes - 1, points)]
