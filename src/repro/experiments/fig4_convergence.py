"""Fig. 4 — long-term convergence after faults.

Panels (a)/(c): how many episodes the tabular / NN agent needs to converge
back (>95% success over a window) after a transient fault is injected late in
training, as a function of the bit error rate.  The paper finds both
converge, with the tabular agent needing roughly twice as many episodes.

Panels (b)/(d): the policy's success rate after training an *additional*
1000/2000 episodes under stuck-at-0 / stuck-at-1 faults — extra training does
not help once the BER passes a threshold.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.api.execution import ExecutionConfig, resolve_execution
from repro.core.campaign import Campaign, TrialOutcome
from repro.core.injector import PermanentTrainingFaultHook, TransientTrainingFaultHook
from repro.experiments.common import (
    evaluate_grid_policy,
    greedy_policy,
    run_campaign,
    train_grid_nn,
    train_tabular,
)
from repro.experiments.config import (
    APPROACH_PARAM,
    FAST_PARAM,
    GridNNConfig,
    GridTabularConfig,
    grid_ber_sweep,
    grid_config_for,
)
from repro.experiments.registry import register_experiment
from repro.io.results import ResultTable

__all__ = ["run_transient_convergence", "run_permanent_extra_training"]

GridConfig = Union[GridTabularConfig, GridNNConfig]


def _train(config: GridConfig, rng: np.random.Generator, hooks, episodes: int):
    if isinstance(config, GridNNConfig):
        return train_grid_nn(config, rng, hooks=hooks, episodes=episodes)
    return train_tabular(config, rng, hooks=hooks, episodes=episodes)


def run_transient_convergence(
    config: GridConfig,
    bit_error_rates: Sequence[float],
    injection_fraction: float = 0.9,
    extra_episodes: Optional[int] = None,
    convergence_window: int = 50,
    convergence_threshold: float = 0.9,
    seed: Optional[int] = None,
    repetitions: Optional[int] = None,
    workers: Optional[int] = None,
    checkpoint_dir=None,
    resume: bool = False,
    *,
    batch_size: Optional[int] = None,
    execution: Optional[ExecutionConfig] = None,
) -> ResultTable:
    """Episodes needed to converge back after a late transient fault (Fig. 4a/4c).

    The fault is injected at ``injection_fraction`` of the nominal training
    length; training then continues for ``extra_episodes`` more episodes and
    the convergence point is measured on the post-injection success history.
    """
    execution = resolve_execution(
        execution,
        seed=seed,
        repetitions=repetitions,
        workers=workers,
        batch_size=batch_size,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )
    seed = execution.seed
    approach = "nn" if isinstance(config, GridNNConfig) else "tabular"
    repetitions = execution.resolve_repetitions(config.repetitions)
    inject_episode = int(config.episodes * injection_fraction)
    extra = extra_episodes if extra_episodes is not None else config.episodes
    total_episodes = inject_episode + extra
    table = ResultTable(title=f"Fig4 transient convergence ({approach})")

    for ber in bit_error_rates:
        def trial(rng: np.random.Generator, ber=ber) -> TrialOutcome:
            hooks = []
            if ber > 0:
                hooks.append(
                    TransientTrainingFaultHook(ber, inject_episode=inject_episode, rng=rng)
                )
            _, _, history = _train(config, rng, hooks, total_episodes)
            successes = history.successes[inject_episode:]
            episodes_needed = _episodes_to_recover(
                successes, convergence_window, convergence_threshold
            )
            converged = episodes_needed is not None
            return TrialOutcome(
                success=converged,
                metric=float(episodes_needed if converged else len(successes)),
            )

        campaign = Campaign(f"fig4-{approach}-transient-ber{ber}", repetitions, seed=seed)
        result = run_campaign(campaign, trial, execution=execution)
        table.add(
            approach=approach,
            bit_error_rate=ber,
            episodes_to_converge=result.mean_metric,
            convergence_rate=result.success_rate,
            repetitions=repetitions,
        )
    return table


def _episodes_to_recover(
    successes: np.ndarray, window: int, threshold: float
) -> Optional[int]:
    """First index at which the windowed success rate reaches the threshold."""
    if successes.size == 0:
        return None
    window = min(window, successes.size)
    flags = successes.astype(np.float64)
    for end in range(window, flags.size + 1):
        if flags[end - window : end].mean() >= threshold:
            return end
    return None


def run_permanent_extra_training(
    config: GridConfig,
    bit_error_rates: Sequence[float],
    extra_episode_grid: Sequence[int] = (1000, 2000),
    seed: Optional[int] = None,
    repetitions: Optional[int] = None,
    workers: Optional[int] = None,
    checkpoint_dir=None,
    resume: bool = False,
    *,
    batch_size: Optional[int] = None,
    execution: Optional[ExecutionConfig] = None,
) -> ResultTable:
    """Success rate after extended training under stuck-at faults (Fig. 4b/4d)."""
    execution = resolve_execution(
        execution,
        seed=seed,
        repetitions=repetitions,
        workers=workers,
        batch_size=batch_size,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )
    seed = execution.seed
    approach = "nn" if isinstance(config, GridNNConfig) else "tabular"
    repetitions = execution.resolve_repetitions(config.repetitions)
    table = ResultTable(title=f"Fig4 permanent extra training ({approach})")

    for stuck_value in (0, 1):
        for extra in extra_episode_grid:
            for ber in bit_error_rates:
                def trial(rng: np.random.Generator, ber=ber, stuck=stuck_value, extra=extra) -> TrialOutcome:
                    hooks = []
                    if ber > 0:
                        hooks.append(
                            PermanentTrainingFaultHook(ber, stuck_value=stuck, rng=rng)
                        )
                    agent, eval_env, _ = _train(
                        config, rng, hooks, config.episodes + extra
                    )
                    rate = evaluate_grid_policy(
                        greedy_policy(agent),
                        eval_env,
                        config.eval_trials,
                        max_steps=config.max_steps,
                    )
                    return TrialOutcome(success=None, metric=rate)

                campaign = Campaign(
                    f"fig4-{approach}-sa{stuck_value}-extra{extra}-ber{ber}",
                    repetitions,
                    seed=seed,
                )
                result = run_campaign(campaign, trial, execution=execution)
                table.add(
                    approach=approach,
                    fault_type=f"stuck-at-{stuck_value}",
                    extra_episodes=extra,
                    bit_error_rate=ber,
                    success_rate=result.mean_metric,
                    repetitions=repetitions,
                )
    return table


# --------------------------------------------------------------------------- #
# Declarative specs
# --------------------------------------------------------------------------- #
@register_experiment(
    "fig4.transient_convergence",
    description="Fig. 4a/4c — episodes needed to converge back after a late "
    "transient training fault, per BER",
    params=(APPROACH_PARAM, FAST_PARAM),
)
def _transient_convergence_spec(
    execution: ExecutionConfig, *, approach: str, fast: bool
) -> ResultTable:
    config = grid_config_for(approach, fast, scale=execution.scale)
    return run_transient_convergence(
        config, grid_ber_sweep(execution.scale), execution=execution
    )


@register_experiment(
    "fig4.permanent_extra_training",
    description="Fig. 4b/4d — success rate after extended training under "
    "stuck-at faults",
    params=(APPROACH_PARAM, FAST_PARAM),
)
def _permanent_extra_training_spec(
    execution: ExecutionConfig, *, approach: str, fast: bool
) -> ResultTable:
    config = grid_config_for(approach, fast, scale=execution.scale)
    return run_permanent_extra_training(
        config, grid_ber_sweep(execution.scale), execution=execution
    )
