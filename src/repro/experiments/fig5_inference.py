"""Fig. 5 — impact of faults on Grid World inference.

Inference is a sequential decision process, so transient faults come in two
modes (Sec. 4.1.2):

* **Transient-1** — the fault hits a read register and corrupts only a single
  decision step; the following steps see clean values.
* **Transient-M** — the fault hits the memory holding the policy (Q table or
  weights) and therefore corrupts every remaining step of the episode.

Permanent stuck-at-0 / stuck-at-1 faults affect the whole episode as well.
The clean policy is trained once per configuration and the injection is then
repeated many times with independent fault sites.

Both trial families implement the batched-execution protocol
(``run_batch``): under a :class:`~repro.core.runner.BatchedRunner` each
batch of B trials becomes B policy *replicas* evaluated simultaneously —
fault patterns apply to stacked quantized buffers in one vectorized bit
operation, Q-values come from one stacked forward pass per step, and the
Grid World steps all replicas through vectorized integer math.  Every
replica samples its faults from its own trial RNG in the scalar sampling
order, so batched campaign outcomes are bit-identical to serial ones
(enforced by ``tests/test_batched_parity.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.api.execution import ExecutionConfig, resolve_execution
from repro.core.campaign import Campaign, TrialOutcome
from repro.core.evaluator import BatchedEvaluator
from repro.core.fault_models import FaultModel, StuckAtFault, TransientBitFlip
from repro.core.sites import apply_patterns_stacked
from repro.experiments.common import (
    greedy_policy,
    run_campaign,
    train_grid_nn,
    train_tabular,
)
from repro.experiments.config import (
    APPROACH_PARAM,
    FAST_PARAM,
    GridNNConfig,
    GridTabularConfig,
    grid_ber_sweep,
    grid_config_for,
)
from repro.experiments.registry import ParamSpec, register_experiment
from repro.io.results import ResultTable
from repro.nn.buffers import QuantizedExecutor
from repro.rl.dqn import DQNAgent
from repro.rl.evaluation import greedy_rollout, greedy_rollouts
from repro.rl.tabular import TabularQAgent

__all__ = ["INFERENCE_FAULT_MODES", "run_inference_fault_sweep"]

GridConfig = Union[GridTabularConfig, GridNNConfig]

#: The four fault modes plotted in Fig. 5.
INFERENCE_FAULT_MODES = ("transient-1", "transient-m", "stuck-at-0", "stuck-at-1")

#: Modes whose faults are injected into the policy memory before the episode.
_MEMORY_FAULT_MODES = ("transient-m", "stuck-at-0", "stuck-at-1")


def _memory_fault_model(mode: str, ber: float) -> FaultModel:
    if mode == "transient-m":
        return TransientBitFlip(ber)
    if mode == "stuck-at-0":
        return StuckAtFault(ber, stuck_value=0)
    return StuckAtFault(ber, stuck_value=1)


# --------------------------------------------------------------------------- #
# Tabular policy corruption
# --------------------------------------------------------------------------- #
def _tabular_episode(
    agent: TabularQAgent,
    env,
    mode: str,
    ber: float,
    rng: np.random.Generator,
    max_steps: int,
) -> bool:
    """Run one inference episode of the tabular policy under the given fault mode.

    ``agent`` is shared across every trial of the sweep, so all per-episode
    randomness — including the clones' RNGs — must come from the trial
    ``rng``.  Drawing from the shared agent's RNG here would make trial
    outcomes depend on execution order, breaking parallel/serial and
    checkpoint-resume reproducibility.
    """
    working = agent.clone(rng=np.random.default_rng(rng.integers(2**63)))
    table = working.memory_buffers()["qtable"]
    if mode in _MEMORY_FAULT_MODES:
        _memory_fault_model(mode, ber).inject(table, rng)

    fault_step = int(rng.integers(max_steps)) if mode == "transient-1" else -1
    state = env.reset()
    for step in range(max_steps):
        if step == fault_step and ber > 0:
            # Corrupt only this decision: flip bits in a scratch copy of the
            # table, pick the action from it, then continue with clean values.
            scratch = agent.clone(rng=np.random.default_rng(rng.integers(2**63)))
            TransientBitFlip(ber).inject(scratch.memory_buffers()["qtable"], rng)
            action = scratch.select_action(state, explore=False)
        else:
            action = working.select_action(state, explore=False)
        state, _, done, info = env.step(action)
        if done:
            return bool(info.get("success", False))
    return False


class _TabularInferenceTrial:
    """One Fig. 5 tabular campaign trial: N faulted inference episodes.

    Scalar execution (``__call__``) runs :func:`_tabular_episode` once per
    episode.  Batched execution (``run_batch``) evaluates the whole batch of
    trials as policy replicas: the Q table is replicated into a stacked
    buffer, all replicas' fault patterns apply in one vectorized bit
    operation, the stacked table is decoded once per episode (instead of
    once per step per trial), and the Grid World replicas step in lockstep.
    Tie-breaking draws still come from each replica's own derived generator
    in the scalar order, so both paths are bit-identical.
    """

    def __init__(
        self,
        agent: TabularQAgent,
        env,
        mode: str,
        ber: float,
        max_steps: int,
        episodes_per_trial: int,
    ) -> None:
        self.agent = agent
        self.env = env
        self.mode = mode
        self.ber = ber
        self.max_steps = max_steps
        self.episodes_per_trial = episodes_per_trial

    def __call__(self, rng: np.random.Generator) -> TrialOutcome:
        successes = [
            _tabular_episode(self.agent, self.env, self.mode, self.ber, rng, self.max_steps)
            for _ in range(self.episodes_per_trial)
        ]
        return TrialOutcome(success=None, metric=float(np.mean(successes)))

    def run_batch(self, rngs: Sequence[np.random.Generator]) -> List[TrialOutcome]:
        successes: List[List[bool]] = [[] for _ in rngs]
        for _ in range(self.episodes_per_trial):
            for replica, ok in enumerate(self._episode_batch(rngs)):
                successes[replica].append(ok)
        return [
            TrialOutcome(success=None, metric=float(np.mean(trial_successes)))
            for trial_successes in successes
        ]

    def _episode_batch(self, rngs: Sequence[np.random.Generator]) -> List[bool]:
        n = len(rngs)
        table = self.agent.memory_buffers()["qtable"]
        # Per-replica draw order matches the scalar episode: clone seed,
        # fault-site sampling, then (for transient-1) the fault step.
        working_rngs = [np.random.default_rng(rng.integers(2**63)) for rng in rngs]
        stacked = table.replicate(n)
        if self.mode in _MEMORY_FAULT_MODES:
            model = _memory_fault_model(self.mode, self.ber)
            patterns = [model.sample_pattern(table, rng) for rng in rngs]
            apply_patterns_stacked(patterns, stacked)
        fault_steps = [
            int(rng.integers(self.max_steps)) if self.mode == "transient-1" else -1
            for rng in rngs
        ]
        q_stack = stacked.values / self.agent.value_scale

        def policy(step: int, indices: np.ndarray, states: List[object]) -> List[int]:
            actions = []
            for j, replica in enumerate(indices):
                if step == fault_steps[replica] and self.ber > 0:
                    actions.append(self._transient1_action(rngs[replica], states[j]))
                else:
                    row = q_stack[replica, states[j]]
                    best = np.flatnonzero(row == row.max())
                    actions.append(int(working_rngs[replica].choice(best)))
            return actions

        rollouts = greedy_rollouts(policy, self.env.batched(n), max_steps=self.max_steps)
        return [rollout.success for rollout in rollouts]

    def _transient1_action(self, rng: np.random.Generator, state: int) -> int:
        # Mirrors the scalar scratch-clone: seed draw, fresh clean table,
        # transient injection, then a tie-broken greedy pick from the scratch
        # generator.
        scratch_rng = np.random.default_rng(rng.integers(2**63))
        scratch = self.agent.memory_buffers()["qtable"].copy()
        TransientBitFlip(self.ber).inject(scratch, rng)
        row = scratch.values[state] / self.agent.value_scale
        best = np.flatnonzero(row == row.max())
        return int(scratch_rng.choice(best))


# --------------------------------------------------------------------------- #
# NN policy corruption
# --------------------------------------------------------------------------- #
def _nn_episode(
    agent: DQNAgent,
    env,
    mode: str,
    ber: float,
    rng: np.random.Generator,
    max_steps: int,
    qformat,
) -> bool:
    """Run one inference episode of the NN policy under the given fault mode."""
    executor = QuantizedExecutor(agent.network, qformat)
    try:
        if mode in _MEMORY_FAULT_MODES and ber > 0:
            model = _memory_fault_model(mode, ber)
            executor.apply_weight_faults(
                lambda name, tensor: model.inject(tensor, rng)
            )

        fault_step = int(rng.integers(max_steps)) if mode == "transient-1" else -1
        state = env.reset()
        for step in range(max_steps):
            if step == fault_step and ber > 0:
                # Transient-1 hits a read register: only this one decision
                # sees the corrupted weights.  Query a one-off faulted
                # executor and restore the clean weights immediately, so the
                # remaining steps run clean instead of inheriting the faults
                # through the shared network.
                faulty_executor = QuantizedExecutor(agent.network, qformat)
                faulty_executor.apply_weight_faults(
                    lambda name, tensor: TransientBitFlip(ber).inject(tensor, rng)
                )
                q = faulty_executor.forward(agent.state_encoder(state)[None])[0]
                faulty_executor.restore_clean_weights()
            else:
                q = executor.forward(agent.state_encoder(state)[None])[0]
            action = int(np.argmax(q))
            state, _, done, info = env.step(action)
            if done:
                return bool(info.get("success", False))
        return False
    finally:
        executor.restore_clean_weights()


class _NNInferenceTrial:
    """One Fig. 5 NN campaign trial: N faulted quantized-inference episodes.

    Scalar execution (``__call__``) runs :func:`_nn_episode` per episode
    through the scalar :class:`~repro.nn.buffers.QuantizedExecutor`.
    Batched execution (``run_batch``) builds a
    :class:`~repro.core.evaluator.BatchedEvaluator` per episode: all trials'
    weight-fault patterns apply to stacked quantized buffers in one
    vectorized bit operation, and every environment step evaluates all still
    -running replicas through a single stacked forward pass.  Both paths are
    bit-identical for the same trial RNGs.
    """

    def __init__(
        self,
        agent: DQNAgent,
        env,
        mode: str,
        ber: float,
        max_steps: int,
        qformat,
        episodes_per_trial: int,
    ) -> None:
        self.agent = agent
        self.env = env
        self.mode = mode
        self.ber = ber
        self.max_steps = max_steps
        self.qformat = qformat
        self.episodes_per_trial = episodes_per_trial

    def __call__(self, rng: np.random.Generator) -> TrialOutcome:
        successes = [
            _nn_episode(
                self.agent, self.env, self.mode, self.ber, rng, self.max_steps, self.qformat
            )
            for _ in range(self.episodes_per_trial)
        ]
        return TrialOutcome(success=None, metric=float(np.mean(successes)))

    def run_batch(self, rngs: Sequence[np.random.Generator]) -> List[TrialOutcome]:
        successes: List[List[bool]] = [[] for _ in rngs]
        for _ in range(self.episodes_per_trial):
            for replica, ok in enumerate(self._episode_batch(rngs)):
                successes[replica].append(ok)
        return [
            TrialOutcome(success=None, metric=float(np.mean(trial_successes)))
            for trial_successes in successes
        ]

    def _episode_batch(self, rngs: Sequence[np.random.Generator]) -> List[bool]:
        n = len(rngs)
        evaluator = BatchedEvaluator(self.agent.network, self.qformat, n)
        if self.mode in _MEMORY_FAULT_MODES and self.ber > 0:
            evaluator.inject_weight_faults(
                _memory_fault_model(self.mode, self.ber), rngs
            )
        fault_steps = [
            int(rng.integers(self.max_steps)) if self.mode == "transient-1" else -1
            for rng in rngs
        ]
        encoder = self.agent.state_encoder

        def policy(step: int, indices: np.ndarray, states: List[object]) -> List[int]:
            encoded = np.stack([encoder(state) for state in states])[:, None, :]
            greedy = evaluator.greedy_actions(encoded, replicas=indices)
            actions = [int(action) for action in greedy]
            if self.ber > 0:
                for j, replica in enumerate(indices):
                    if step == fault_steps[replica]:
                        actions[j] = self._transient1_action(rngs[replica], states[j])
            return actions

        rollouts = greedy_rollouts(policy, self.env.batched(n), max_steps=self.max_steps)
        return [rollout.success for rollout in rollouts]

    def _transient1_action(self, rng: np.random.Generator, state: object) -> int:
        # One-replica faulted evaluator, sampled from the trial generator in
        # the scalar buffer order — the batched analogue of the scalar
        # "faulty executor for a single decision step".
        evaluator = BatchedEvaluator(self.agent.network, self.qformat, 1)
        evaluator.inject_weight_faults(TransientBitFlip(self.ber), [rng])
        q = evaluator.forward(self.agent.state_encoder(state)[None][None])
        return int(np.argmax(q[0]))


# --------------------------------------------------------------------------- #
# Sweep driver
# --------------------------------------------------------------------------- #
def run_inference_fault_sweep(
    config: GridConfig,
    bit_error_rates: Sequence[float],
    fault_modes: Sequence[str] = INFERENCE_FAULT_MODES,
    seed: Optional[int] = None,
    repetitions: Optional[int] = None,
    episodes_per_trial: int = 5,
    workers: Optional[int] = None,
    batch_size: Optional[int] = None,
    checkpoint_dir=None,
    resume: bool = False,
    *,
    execution: Optional[ExecutionConfig] = None,
) -> ResultTable:
    """Success rate vs BER for each inference fault mode (Fig. 5a / 5b).

    ``batch_size > 1`` (or ``REPRO_CAMPAIGN_BATCH``) selects the batched
    campaign engine, which evaluates that many fault-injected policy
    replicas per vectorized step; combined with ``workers`` the batches fan
    out over a process pool.  All engine combinations produce bit-identical
    tables for the same seed.
    """
    execution = resolve_execution(
        execution,
        seed=seed,
        repetitions=repetitions,
        workers=workers,
        batch_size=batch_size,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )
    seed = execution.seed
    for mode in fault_modes:
        if mode not in INFERENCE_FAULT_MODES:
            raise ValueError(f"unknown fault mode {mode!r}; choose from {INFERENCE_FAULT_MODES}")
    approach = "nn" if isinstance(config, GridNNConfig) else "tabular"
    repetitions = execution.resolve_repetitions(config.repetitions)

    rng = np.random.default_rng(seed)
    if approach == "nn":
        agent, eval_env, _ = train_grid_nn(config, rng)
    else:
        agent, eval_env, _ = train_tabular(config, rng)
    baseline = greedy_rollout(greedy_policy(agent), eval_env, max_steps=config.max_steps)

    table = ResultTable(title=f"Fig5 inference faults ({approach})")
    table.add(
        approach=approach,
        fault_mode="baseline",
        bit_error_rate=0.0,
        success_rate=float(baseline.success),
        repetitions=1,
    )

    for mode in fault_modes:
        for ber in bit_error_rates:
            if approach == "nn":
                trial = _NNInferenceTrial(
                    agent, eval_env, mode, ber, config.max_steps,
                    config.weight_qformat, episodes_per_trial,
                )
            else:
                trial = _TabularInferenceTrial(
                    agent, eval_env, mode, ber, config.max_steps, episodes_per_trial
                )

            campaign = Campaign(
                f"fig5-{approach}-{mode}-ber{ber}", repetitions, seed=seed + 1
            )
            result = run_campaign(campaign, trial, execution=execution)
            table.add(
                approach=approach,
                fault_mode=mode,
                bit_error_rate=ber,
                success_rate=result.mean_metric,
                repetitions=repetitions,
            )
    return table


# --------------------------------------------------------------------------- #
# Declarative specs
# --------------------------------------------------------------------------- #
@register_experiment(
    "fig5.inference",
    description="Fig. 5a/5b — success rate vs BER per inference fault mode "
    "(transient-1 / transient-M / stuck-at-0 / stuck-at-1)",
    params=(
        APPROACH_PARAM,
        FAST_PARAM,
        ParamSpec(
            "episodes_per_trial",
            int,
            5,
            help="inference episodes evaluated per campaign trial",
            minimum=1,
        ),
    ),
    batched=True,
)
def _inference_spec(
    execution: ExecutionConfig, *, approach: str, fast: bool, episodes_per_trial: int
) -> ResultTable:
    config = grid_config_for(approach, fast, scale=execution.scale)
    return run_inference_fault_sweep(
        config,
        grid_ber_sweep(execution.scale),
        episodes_per_trial=episodes_per_trial,
        execution=execution,
    )
