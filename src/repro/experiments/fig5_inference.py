"""Fig. 5 — impact of faults on Grid World inference.

Inference is a sequential decision process, so transient faults come in two
modes (Sec. 4.1.2):

* **Transient-1** — the fault hits a read register and corrupts only a single
  decision step; the following steps see clean values.
* **Transient-M** — the fault hits the memory holding the policy (Q table or
  weights) and therefore corrupts every remaining step of the episode.

Permanent stuck-at-0 / stuck-at-1 faults affect the whole episode as well.
The clean policy is trained once per configuration and the injection is then
repeated many times with independent fault sites.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.core.campaign import Campaign, TrialOutcome
from repro.core.fault_models import StuckAtFault, TransientBitFlip
from repro.core.runner import make_runner
from repro.experiments.common import (
    greedy_policy,
    run_campaign,
    train_grid_nn,
    train_tabular,
)
from repro.experiments.config import GridNNConfig, GridTabularConfig
from repro.io.results import ResultTable
from repro.nn.buffers import QuantizedExecutor
from repro.rl.dqn import DQNAgent
from repro.rl.evaluation import greedy_rollout
from repro.rl.tabular import TabularQAgent

__all__ = ["INFERENCE_FAULT_MODES", "run_inference_fault_sweep"]

GridConfig = Union[GridTabularConfig, GridNNConfig]

#: The four fault modes plotted in Fig. 5.
INFERENCE_FAULT_MODES = ("transient-1", "transient-m", "stuck-at-0", "stuck-at-1")


# --------------------------------------------------------------------------- #
# Tabular policy corruption
# --------------------------------------------------------------------------- #
def _tabular_episode(
    agent: TabularQAgent,
    env,
    mode: str,
    ber: float,
    rng: np.random.Generator,
    max_steps: int,
) -> bool:
    """Run one inference episode of the tabular policy under the given fault mode.

    ``agent`` is shared across every trial of the sweep, so all per-episode
    randomness — including the clones' RNGs — must come from the trial
    ``rng``.  Drawing from the shared agent's RNG here would make trial
    outcomes depend on execution order, breaking parallel/serial and
    checkpoint-resume reproducibility.
    """
    working = agent.clone(rng=np.random.default_rng(rng.integers(2**63)))
    table = working.memory_buffers()["qtable"]
    if mode == "transient-m":
        TransientBitFlip(ber).inject(table, rng)
    elif mode == "stuck-at-0":
        StuckAtFault(ber, stuck_value=0).inject(table, rng)
    elif mode == "stuck-at-1":
        StuckAtFault(ber, stuck_value=1).inject(table, rng)

    fault_step = int(rng.integers(max_steps)) if mode == "transient-1" else -1
    state = env.reset()
    for step in range(max_steps):
        if step == fault_step and ber > 0:
            # Corrupt only this decision: flip bits in a scratch copy of the
            # table, pick the action from it, then continue with clean values.
            scratch = agent.clone(rng=np.random.default_rng(rng.integers(2**63)))
            TransientBitFlip(ber).inject(scratch.memory_buffers()["qtable"], rng)
            action = scratch.select_action(state, explore=False)
        else:
            action = working.select_action(state, explore=False)
        state, _, done, info = env.step(action)
        if done:
            return bool(info.get("success", False))
    return False


# --------------------------------------------------------------------------- #
# NN policy corruption
# --------------------------------------------------------------------------- #
def _nn_episode(
    agent: DQNAgent,
    env,
    mode: str,
    ber: float,
    rng: np.random.Generator,
    max_steps: int,
    qformat,
) -> bool:
    """Run one inference episode of the NN policy under the given fault mode."""
    executor = QuantizedExecutor(agent.network, qformat)
    faulty_executor: Optional[QuantizedExecutor] = None
    try:
        if mode == "transient-m" and ber > 0:
            executor.apply_weight_faults(
                lambda name, tensor: TransientBitFlip(ber).inject(tensor, rng)
            )
        elif mode == "stuck-at-0" and ber > 0:
            executor.apply_weight_faults(
                lambda name, tensor: StuckAtFault(ber, 0).inject(tensor, rng)
            )
        elif mode == "stuck-at-1" and ber > 0:
            executor.apply_weight_faults(
                lambda name, tensor: StuckAtFault(ber, 1).inject(tensor, rng)
            )

        fault_step = int(rng.integers(max_steps)) if mode == "transient-1" else -1
        state = env.reset()
        for step in range(max_steps):
            if step == fault_step and ber > 0:
                if faulty_executor is None:
                    faulty_executor = QuantizedExecutor(agent.network, qformat)
                    faulty_executor.apply_weight_faults(
                        lambda name, tensor: TransientBitFlip(ber).inject(tensor, rng)
                    )
                q = faulty_executor.forward(agent.state_encoder(state)[None])[0]
            else:
                q = executor.forward(agent.state_encoder(state)[None])[0]
            action = int(np.argmax(q))
            state, _, done, info = env.step(action)
            if done:
                return bool(info.get("success", False))
        return False
    finally:
        executor.restore_clean_weights()
        if faulty_executor is not None:
            faulty_executor.restore_clean_weights()


# --------------------------------------------------------------------------- #
# Sweep driver
# --------------------------------------------------------------------------- #
def run_inference_fault_sweep(
    config: GridConfig,
    bit_error_rates: Sequence[float],
    fault_modes: Sequence[str] = INFERENCE_FAULT_MODES,
    seed: int = 0,
    repetitions: Optional[int] = None,
    episodes_per_trial: int = 5,
    workers: Optional[int] = None,
    checkpoint_dir=None,
    resume: bool = False,
) -> ResultTable:
    """Success rate vs BER for each inference fault mode (Fig. 5a / 5b)."""
    for mode in fault_modes:
        if mode not in INFERENCE_FAULT_MODES:
            raise ValueError(f"unknown fault mode {mode!r}; choose from {INFERENCE_FAULT_MODES}")
    approach = "nn" if isinstance(config, GridNNConfig) else "tabular"
    repetitions = repetitions or config.repetitions
    runner = make_runner(workers)

    rng = np.random.default_rng(seed)
    if approach == "nn":
        agent, eval_env, _ = train_grid_nn(config, rng)
    else:
        agent, eval_env, _ = train_tabular(config, rng)
    baseline = greedy_rollout(greedy_policy(agent), eval_env, max_steps=config.max_steps)

    table = ResultTable(title=f"Fig5 inference faults ({approach})")
    table.add(
        approach=approach,
        fault_mode="baseline",
        bit_error_rate=0.0,
        success_rate=float(baseline.success),
        repetitions=1,
    )

    for mode in fault_modes:
        for ber in bit_error_rates:
            def trial(rng: np.random.Generator, mode=mode, ber=ber) -> TrialOutcome:
                successes = []
                for _ in range(episodes_per_trial):
                    if approach == "nn":
                        ok = _nn_episode(
                            agent, eval_env, mode, ber, rng, config.max_steps,
                            config.weight_qformat,
                        )
                    else:
                        ok = _tabular_episode(
                            agent, eval_env, mode, ber, rng, config.max_steps
                        )
                    successes.append(ok)
                return TrialOutcome(success=None, metric=float(np.mean(successes)))

            campaign = Campaign(
                f"fig5-{approach}-{mode}-ber{ber}", repetitions, seed=seed + 1
            )
            result = run_campaign(
                campaign, trial, runner=runner, checkpoint_dir=checkpoint_dir, resume=resume
            )
            table.add(
                approach=approach,
                fault_mode=mode,
                bit_error_rate=ber,
                success_rate=result.mean_metric,
                repetitions=repetitions,
            )
    return table
