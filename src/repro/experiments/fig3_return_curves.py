"""Fig. 3 — example cumulative-return curves under transient and permanent faults.

The paper plots the per-episode cumulative return of single training runs
with (a) transient bit-flips at example (BER, injection-episode) pairs and
(b) stuck-at faults present throughout, for both the tabular and NN-based
approaches.  The takeaway is the *recovery* behaviour: the NN agent's return
dips after a transient fault but recovers within a few episodes, while the
tabular agent takes much longer or fails to recover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.api.execution import ExecutionConfig, resolve_execution
from repro.core.injector import PermanentTrainingFaultHook, TransientTrainingFaultHook
from repro.experiments.common import train_grid_nn, train_tabular
from repro.experiments.config import (
    APPROACH_PARAM,
    FAST_PARAM,
    GridNNConfig,
    GridTabularConfig,
    grid_config_for,
)
from repro.experiments.registry import register_experiment
from repro.io.results import SeriesResult
from repro.rl.trainer import TrainingHooks

__all__ = ["FaultScenario", "default_scenarios", "run_return_curves", "recovery_episodes"]

GridConfig = Union[GridTabularConfig, GridNNConfig]


@dataclass(frozen=True)
class FaultScenario:
    """One curve of Fig. 3: a fault type, BER and (for transient) injection episode."""

    label: str
    fault_type: str  # "transient", "stuck-at-0" or "stuck-at-1"
    bit_error_rate: float
    injection_episode: Optional[int] = None

    def hooks(self, rng: np.random.Generator) -> List[TrainingHooks]:
        if self.bit_error_rate <= 0:
            return []
        if self.fault_type == "transient":
            if self.injection_episode is None:
                raise ValueError("transient scenarios need an injection_episode")
            return [
                TransientTrainingFaultHook(
                    self.bit_error_rate, inject_episode=self.injection_episode, rng=rng
                )
            ]
        stuck_value = 1 if self.fault_type.endswith("1") else 0
        return [
            PermanentTrainingFaultHook(self.bit_error_rate, stuck_value=stuck_value, rng=rng)
        ]


def default_scenarios(total_episodes: int, approach: str) -> List[FaultScenario]:
    """The example scenarios plotted in Fig. 3 (episode indices scaled to the run length)."""
    quarter = total_episodes // 4
    late = int(total_episodes * 0.8)
    if approach == "tabular":
        return [
            FaultScenario("fault-free", "transient", 0.0, None),
            FaultScenario("transient BER=0.6% early", "transient", 0.006, quarter),
            FaultScenario("transient BER=0.6% late", "transient", 0.006, late),
            FaultScenario("stuck-at-0 BER=0.2%", "stuck-at-0", 0.002),
            FaultScenario("stuck-at-1 BER=0.3%", "stuck-at-1", 0.003),
        ]
    return [
        FaultScenario("fault-free", "transient", 0.0, None),
        FaultScenario("transient BER=0.8% late", "transient", 0.008, late),
        FaultScenario("transient BER=0.6% mid", "transient", 0.006, total_episodes // 2),
        FaultScenario("stuck-at-0 BER=0.3%", "stuck-at-0", 0.003),
        FaultScenario("stuck-at-1 BER=0.2%", "stuck-at-1", 0.002),
    ]


def run_return_curves(
    config: GridConfig,
    scenarios: Optional[Sequence[FaultScenario]] = None,
    seed: Optional[int] = None,
    smoothing_window: int = 25,
    *,
    execution: Optional[ExecutionConfig] = None,
) -> SeriesResult:
    """Train once per scenario and return the smoothed cumulative-return curves.

    There is no campaign here (one training run per scenario), so only the
    ``seed`` of an :class:`~repro.api.execution.ExecutionConfig` is used.
    """
    execution = resolve_execution(execution, seed=seed)
    seed = execution.seed
    approach = "nn" if isinstance(config, GridNNConfig) else "tabular"
    scenarios = list(
        scenarios if scenarios is not None else default_scenarios(config.episodes, approach)
    )
    result = SeriesResult(
        title=f"Fig3 cumulative return curves ({approach})", x_label="episode"
    )
    for scenario in scenarios:
        rng = np.random.default_rng(seed)
        hooks = scenario.hooks(rng)
        if approach == "nn":
            _, _, history = train_grid_nn(config, rng, hooks=hooks)
        else:
            _, _, history = train_tabular(config, rng, hooks=hooks)
        smoothed = history.moving_average_reward(window=smoothing_window)
        if not result.x_values:
            result.x_values = list(range(len(smoothed)))
        # All runs have the same episode count, so the smoothed lengths match.
        result.add_series(scenario.label, smoothed.tolist())
    return result


# --------------------------------------------------------------------------- #
# Declarative specs
# --------------------------------------------------------------------------- #
@register_experiment(
    "fig3.return_curves",
    description="Fig. 3 — per-episode cumulative-return curves under example "
    "transient and stuck-at fault scenarios",
    params=(APPROACH_PARAM, FAST_PARAM),
)
def _return_curves_spec(
    execution: ExecutionConfig, *, approach: str, fast: bool
) -> SeriesResult:
    config = grid_config_for(approach, fast, scale=execution.scale)
    return run_return_curves(config, execution=execution)


def recovery_episodes(
    curve: Sequence[float],
    injection_episode: int,
    recovery_fraction: float = 0.9,
) -> Optional[int]:
    """Episodes needed after an injection for the return to regain its pre-fault level.

    Returns None if the curve never recovers to ``recovery_fraction`` of its
    pre-injection value (the tabular agent's failure mode in Fig. 3a).
    """
    curve = np.asarray(curve, dtype=np.float64)
    if not 0 <= injection_episode < curve.size:
        raise ValueError(
            f"injection_episode {injection_episode} outside the curve of length {curve.size}"
        )
    baseline = curve[:injection_episode].max() if injection_episode else curve[0]
    target = recovery_fraction * baseline
    for offset, value in enumerate(curve[injection_episode:]):
        if value >= target:
            return offset
    return None
