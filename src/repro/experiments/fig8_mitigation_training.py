"""Fig. 8 — effect of the adaptive exploration-rate adjustment on training.

Repeats the Fig. 2 training-fault campaigns with the
:class:`~repro.core.mitigation.exploration.AdaptiveExplorationController`
hooked into training.  The paper finds that with mitigation almost all
transient faults injected before ~80% of training become benign, the impact
of late faults is greatly reduced, and permanent-fault impact is relieved by
about 10%.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.api.execution import ExecutionConfig, resolve_execution
from repro.core.campaign import Campaign, TrialOutcome
from repro.core.injector import PermanentTrainingFaultHook, TransientTrainingFaultHook
from repro.core.mitigation.exploration import AdaptiveExplorationController
from repro.experiments.common import (
    evaluate_grid_policy,
    greedy_policy,
    run_campaign,
    train_grid_nn,
    train_tabular,
)
from repro.experiments.config import (
    APPROACH_PARAM,
    FAST_PARAM,
    GridNNConfig,
    GridTabularConfig,
    grid_ber_sweep,
    grid_config_for,
    injection_episodes as injection_episode_grid,
)
from repro.experiments.registry import ParamSpec, register_experiment
from repro.io.results import ResultTable
from repro.rl.trainer import TrainingHooks

__all__ = ["make_controller", "run_mitigated_transient_heatmap", "run_mitigated_permanent_sweep"]

GridConfig = Union[GridTabularConfig, GridNNConfig]

#: Paper adjustment coefficients: 0.8 for tabular, 0.4 for the (self-healing) NN.
TABULAR_ALPHA = 0.8
NN_ALPHA = 0.4


def make_controller(config: GridConfig) -> AdaptiveExplorationController:
    """Controller with the paper's parameters for the given approach."""
    is_nn = isinstance(config, GridNNConfig)
    return AdaptiveExplorationController(
        alpha=NN_ALPHA if is_nn else TABULAR_ALPHA,
        drop_threshold=0.25,
        drop_window=50,
        steady_episodes=100,
    )


def _train_and_evaluate(
    config: GridConfig, rng: np.random.Generator, hooks: List[TrainingHooks]
) -> float:
    if isinstance(config, GridNNConfig):
        agent, eval_env, _ = train_grid_nn(config, rng, hooks=hooks)
    else:
        agent, eval_env, _ = train_tabular(config, rng, hooks=hooks)
    return evaluate_grid_policy(
        greedy_policy(agent), eval_env, config.eval_trials, max_steps=config.max_steps
    )


def run_mitigated_transient_heatmap(
    config: GridConfig,
    bit_error_rates: Sequence[float],
    injection_episodes: Sequence[int],
    mitigation: bool = True,
    seed: Optional[int] = None,
    repetitions: Optional[int] = None,
    workers: Optional[int] = None,
    checkpoint_dir=None,
    resume: bool = False,
    *,
    batch_size: Optional[int] = None,
    execution: Optional[ExecutionConfig] = None,
) -> ResultTable:
    """Fig. 8 transient heatmap, with or without the mitigation controller."""
    execution = resolve_execution(
        execution,
        seed=seed,
        repetitions=repetitions,
        workers=workers,
        batch_size=batch_size,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )
    seed = execution.seed
    approach = "nn" if isinstance(config, GridNNConfig) else "tabular"
    repetitions = execution.resolve_repetitions(config.repetitions)
    label = "mitigated" if mitigation else "unmitigated"
    table = ResultTable(title=f"Fig8 transient training with mitigation ({approach}, {label})")
    for ber in bit_error_rates:
        for episode in injection_episodes:
            def trial(rng: np.random.Generator, ber=ber, episode=episode) -> TrialOutcome:
                hooks: List[TrainingHooks] = []
                if ber > 0:
                    hooks.append(
                        TransientTrainingFaultHook(ber, inject_episode=episode, rng=rng)
                    )
                if mitigation:
                    hooks.append(make_controller(config))
                rate = _train_and_evaluate(config, rng, hooks)
                return TrialOutcome(metric=rate)

            result = run_campaign(
                Campaign(
                    f"fig8-{approach}-{label}-ber{ber}-ep{episode}", repetitions, seed=seed
                ),
                trial,
                execution=execution,
            )
            table.add(
                approach=approach,
                mitigation=mitigation,
                fault_type="transient",
                bit_error_rate=ber,
                injection_episode=episode,
                success_rate=result.mean_metric,
                repetitions=repetitions,
            )
    return table


def run_mitigated_permanent_sweep(
    config: GridConfig,
    bit_error_rates: Sequence[float],
    mitigation: bool = True,
    seed: Optional[int] = None,
    repetitions: Optional[int] = None,
    workers: Optional[int] = None,
    checkpoint_dir=None,
    resume: bool = False,
    *,
    batch_size: Optional[int] = None,
    execution: Optional[ExecutionConfig] = None,
) -> ResultTable:
    """Fig. 8 stuck-at columns, with or without the mitigation controller."""
    execution = resolve_execution(
        execution,
        seed=seed,
        repetitions=repetitions,
        workers=workers,
        batch_size=batch_size,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )
    seed = execution.seed
    approach = "nn" if isinstance(config, GridNNConfig) else "tabular"
    repetitions = execution.resolve_repetitions(config.repetitions)
    label = "mitigated" if mitigation else "unmitigated"
    table = ResultTable(title=f"Fig8 permanent training with mitigation ({approach}, {label})")
    for stuck_value in (0, 1):
        for ber in bit_error_rates:
            def trial(rng: np.random.Generator, ber=ber, stuck=stuck_value) -> TrialOutcome:
                hooks: List[TrainingHooks] = []
                if ber > 0:
                    hooks.append(
                        PermanentTrainingFaultHook(ber, stuck_value=stuck, rng=rng)
                    )
                if mitigation:
                    hooks.append(make_controller(config))
                rate = _train_and_evaluate(config, rng, hooks)
                return TrialOutcome(metric=rate)

            result = run_campaign(
                Campaign(
                    f"fig8-{approach}-{label}-sa{stuck_value}-ber{ber}", repetitions, seed=seed
                ),
                trial,
                execution=execution,
            )
            table.add(
                approach=approach,
                mitigation=mitigation,
                fault_type=f"stuck-at-{stuck_value}",
                bit_error_rate=ber,
                success_rate=result.mean_metric,
                repetitions=repetitions,
            )
    return table


# --------------------------------------------------------------------------- #
# Declarative specs
# --------------------------------------------------------------------------- #
_MITIGATION_PARAM = ParamSpec(
    "mitigation",
    bool,
    True,
    help="run with the adaptive exploration controller hooked into training",
)


@register_experiment(
    "fig8.transient_heatmap",
    description="Fig. 8 — Fig. 2 transient heatmap repeated with the adaptive "
    "exploration mitigation",
    params=(APPROACH_PARAM, FAST_PARAM, _MITIGATION_PARAM),
)
def _mitigated_transient_spec(
    execution: ExecutionConfig, *, approach: str, fast: bool, mitigation: bool
) -> ResultTable:
    config = grid_config_for(approach, fast, scale=execution.scale)
    return run_mitigated_transient_heatmap(
        config,
        grid_ber_sweep(execution.scale),
        injection_episode_grid(config.episodes, execution.scale),
        mitigation=mitigation,
        execution=execution,
    )


@register_experiment(
    "fig8.permanent_sweep",
    description="Fig. 8 stuck-at columns with the adaptive exploration mitigation",
    params=(APPROACH_PARAM, FAST_PARAM, _MITIGATION_PARAM),
)
def _mitigated_permanent_spec(
    execution: ExecutionConfig, *, approach: str, fast: bool, mitigation: bool
) -> ResultTable:
    config = grid_config_for(approach, fast, scale=execution.scale)
    return run_mitigated_permanent_sweep(
        config,
        grid_ber_sweep(execution.scale),
        mitigation=mitigation,
        execution=execution,
    )
