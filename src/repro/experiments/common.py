"""Shared building blocks for the experiment drivers.

These helpers construct environments and agents from the config presets,
train clean baseline policies, and wrap them as greedy evaluation policies.
The drone policy is pre-trained once per process and cached, because every
drone experiment (Fig. 7b-e, Fig. 10b) starts from the same clean policy.

:func:`run_campaign` is the single entry point the drivers use to execute a
campaign: it resolves the execution engine (serial by default, a process
pool when ``workers`` / ``REPRO_CAMPAIGN_WORKERS`` asks for one) and wires
up a per-campaign JSONL checkpoint under ``checkpoint_dir`` so interrupted
sweeps can be resumed with ``resume=True``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Dict, Iterable, Optional, Tuple, Union

import numpy as np

from repro.core.campaign import Campaign, CampaignResult, ProgressFn, TrialFn

if TYPE_CHECKING:  # pragma: no cover - typing-only (api imports experiments)
    from repro.api.execution import ExecutionConfig
from repro.core.runner import CampaignRunner, make_runner
from repro.io.results import CampaignCheckpoint

from repro.envs.drone import DroneNavEnv, make_drone_env
from repro.envs.drone.expert import GreedyDepthExpert, collect_dataset
from repro.envs.gridworld import GridWorld, make_gridworld
from repro.experiments.config import DroneConfig, GridNNConfig, GridTabularConfig
from repro.nn.buffers import LayerRangeProfile, QuantizedExecutor
from repro.nn.network import Sequential
from repro.policies import build_grid_q_network, small_c3f2
from repro.rl import (
    DecayingEpsilonGreedy,
    DoubleDQNAgent,
    DQNAgent,
    TabularQAgent,
    TrainingHooks,
    TrainingResult,
    evaluate_success_rate,
    train_agent,
)
from repro.rl.evaluation import evaluate_mean_metric
from repro.rl.imitation import behaviour_clone

__all__ = [
    "run_campaign",
    "campaign_checkpoint_path",
    "build_tabular_agent",
    "build_nn_agent",
    "make_train_eval_envs",
    "train_tabular",
    "train_grid_nn",
    "greedy_policy",
    "evaluate_grid_policy",
    "DronePolicyBundle",
    "build_drone_bundle",
    "clear_drone_cache",
    "evaluate_drone_msf",
]

Policy = Callable[[object], int]


# --------------------------------------------------------------------------- #
# Campaign execution
# --------------------------------------------------------------------------- #
def campaign_checkpoint_path(campaign_name: str, checkpoint_dir: Union[str, Path]) -> Path:
    """Checkpoint file for one named campaign (name sanitized for filesystems)."""
    safe = re.sub(r"[^\w.+-]+", "_", campaign_name)
    return Path(checkpoint_dir) / f"{safe}.jsonl"


def run_campaign(
    campaign: Campaign,
    trial_fn: TrialFn,
    *,
    execution: Optional["ExecutionConfig"] = None,
    runner: Optional[CampaignRunner] = None,
    workers: Optional[int] = None,
    batch_size: Optional[int] = None,
    checkpoint_dir: Union[str, Path, None] = None,
    resume: bool = False,
    progress: Optional[ProgressFn] = None,
) -> CampaignResult:
    """Execute a campaign with the experiment-level runner / checkpoint knobs.

    ``execution`` (an :class:`~repro.api.execution.ExecutionConfig`) is the
    declarative form and supplies engine, checkpoint directory and resume
    behaviour in one object; mixing it with the individual knobs raises.
    Otherwise ``runner`` wins over ``workers`` / ``batch_size``; with
    neither, the engine comes from ``REPRO_CAMPAIGN_WORKERS`` /
    ``REPRO_CAMPAIGN_BATCH`` (serial by default).  ``batch_size > 1``
    selects the batched engine, which vectorizes trial functions
    implementing ``run_batch`` and falls back to scalar execution
    otherwise.  When ``checkpoint_dir`` is given, outcomes stream to
    ``<checkpoint_dir>/<campaign name>.jsonl`` and ``resume=True`` skips
    trials already recorded there.
    """
    if execution is not None:
        if runner is not None or workers is not None or batch_size is not None \
                or checkpoint_dir is not None or resume:
            raise TypeError(
                "run_campaign: pass either execution= or the individual "
                "runner/workers/batch_size/checkpoint_dir/resume knobs, not both"
            )
        runner = execution.make_runner()
        checkpoint_dir = execution.checkpoint_dir
        resume = execution.resume
    if runner is None:
        runner = make_runner(workers, batch_size)
    checkpoint = None
    if checkpoint_dir is not None:
        checkpoint = CampaignCheckpoint(
            campaign_checkpoint_path(campaign.name, checkpoint_dir)
        )
    return campaign.run(
        trial_fn, runner=runner, progress=progress, checkpoint=checkpoint, resume=resume
    )


# --------------------------------------------------------------------------- #
# Grid World
# --------------------------------------------------------------------------- #
def build_tabular_agent(
    config: GridTabularConfig, env: GridWorld, rng: np.random.Generator
) -> TabularQAgent:
    """Construct the tabular Q-learning agent described by ``config``."""
    return TabularQAgent(
        env.n_states,
        env.n_actions,
        gamma=config.gamma,
        learning_rate=config.learning_rate,
        schedule=DecayingEpsilonGreedy(
            config.epsilon_start, config.epsilon_floor, config.epsilon_decay
        ),
        qformat=config.qformat,
        value_scale=config.value_scale,
        initial_q=config.initial_q,
        rng=rng,
    )


def build_nn_agent(
    config: GridNNConfig, env: GridWorld, rng: np.random.Generator
) -> DoubleDQNAgent:
    """Construct the NN-based (Double DQN) Grid World agent."""
    network = build_grid_q_network(
        env.n_states, env.n_actions, hidden_sizes=config.hidden_sizes, rng=rng
    )
    return DoubleDQNAgent(
        network,
        env.one_hot,
        env.n_actions,
        gamma=config.gamma,
        learning_rate=config.learning_rate,
        schedule=DecayingEpsilonGreedy(
            config.epsilon_start, config.epsilon_floor, config.epsilon_decay
        ),
        replay_capacity=config.replay_capacity,
        batch_size=config.batch_size,
        train_every=config.train_every,
        target_update_every=config.target_update_every,
        weight_qformat=config.weight_qformat,
        rng=rng,
    )


def make_train_eval_envs(
    config, rng: np.random.Generator
) -> Tuple[GridWorld, GridWorld]:
    """Training and evaluation Grid World environments for a config.

    The NN config trains with exploring starts and shaped rewards; evaluation
    always starts from the source cell so the reported success rate matches
    the paper's definition.
    """
    if isinstance(config, GridNNConfig):
        train_env = make_gridworld(
            config.density,
            random_start=True,
            free_reward=config.free_reward,
            bump_reward=config.bump_reward,
            rng=rng,
        )
        eval_env = make_gridworld(
            config.density,
            free_reward=config.free_reward,
            bump_reward=config.bump_reward,
        )
    else:
        train_env = make_gridworld(config.density, rng=rng)
        eval_env = make_gridworld(config.density)
    return train_env, eval_env


def train_tabular(
    config: GridTabularConfig,
    rng: np.random.Generator,
    hooks: Iterable[TrainingHooks] = (),
    episodes: Optional[int] = None,
) -> Tuple[TabularQAgent, GridWorld, TrainingResult]:
    """Train a tabular agent from scratch; returns (agent, eval_env, history)."""
    train_env, eval_env = make_train_eval_envs(config, rng)
    agent = build_tabular_agent(config, train_env, rng)
    result = train_agent(
        agent,
        train_env,
        episodes=episodes or config.episodes,
        max_steps_per_episode=config.max_steps,
        hooks=hooks,
    )
    return agent, eval_env, result


def train_grid_nn(
    config: GridNNConfig,
    rng: np.random.Generator,
    hooks: Iterable[TrainingHooks] = (),
    episodes: Optional[int] = None,
) -> Tuple[DoubleDQNAgent, GridWorld, TrainingResult]:
    """Train the NN-based Grid World agent; returns (agent, eval_env, history)."""
    train_env, eval_env = make_train_eval_envs(config, rng)
    agent = build_nn_agent(config, train_env, rng)
    result = train_agent(
        agent,
        train_env,
        episodes=episodes or config.episodes,
        max_steps_per_episode=config.max_steps,
        hooks=hooks,
    )
    return agent, eval_env, result


def greedy_policy(agent) -> Policy:
    """Wrap an agent as a greedy (exploitation-only) policy callable."""
    return lambda state: agent.select_action(state, explore=False)


def evaluate_grid_policy(policy: Policy, env: GridWorld, trials: int, max_steps: int = 100) -> float:
    """Success rate of a policy on the Grid World evaluation environment."""
    return evaluate_success_rate(policy, env, trials=trials, max_steps=max_steps)


# --------------------------------------------------------------------------- #
# Drone
# --------------------------------------------------------------------------- #
@dataclass
class DronePolicyBundle:
    """A pre-trained drone policy plus its environments and range profile."""

    config: DroneConfig
    network: Sequential
    envs: Dict[str, DroneNavEnv]
    clean_state: Dict[str, np.ndarray]
    range_profile: LayerRangeProfile

    def env(self, name: Optional[str] = None) -> DroneNavEnv:
        return self.envs[name or self.config.environment]

    def make_executor(self, qformat=None) -> QuantizedExecutor:
        """Fresh quantized executor over a clean copy of the policy."""
        self.network.load_state_dict(self.clean_state)
        return QuantizedExecutor(self.network, qformat or self.config.qformat)

    def restore_clean(self) -> None:
        self.network.load_state_dict(self.clean_state)


_DRONE_CACHE: Dict[Tuple, DronePolicyBundle] = {}


def clear_drone_cache() -> None:
    """Drop cached pre-trained drone policies (mainly for tests)."""
    _DRONE_CACHE.clear()


def _drone_cache_key(config: DroneConfig, seed: int) -> Tuple:
    return (
        config.image_size,
        config.n_actions,
        config.pretrain_samples,
        config.pretrain_extra_env_samples,
        config.pretrain_epochs,
        round(config.pretrain_learning_rate, 8),
        seed,
    )


def build_drone_bundle(config: DroneConfig, seed: int = 0) -> DronePolicyBundle:
    """Pre-train (or fetch the cached) drone policy for a config.

    The policy is trained against the privileged depth expert with samples
    drawn from *both* environments, so the same network can be evaluated on
    ``indoor-long`` and ``indoor-vanleer`` (Fig. 7b).
    """
    key = _drone_cache_key(config, seed)
    cached = _DRONE_CACHE.get(key)
    if cached is not None:
        cached.restore_clean()
        return cached

    rng = np.random.default_rng(seed)
    envs = {
        "indoor-long": make_drone_env("indoor-long", image_size=config.image_size),
        "indoor-vanleer": make_drone_env("indoor-vanleer", image_size=config.image_size),
    }
    images = []
    targets = []
    sample_plan = {
        "indoor-long": config.pretrain_samples,
        "indoor-vanleer": config.pretrain_extra_env_samples,
    }
    for name, env in envs.items():
        n_samples = sample_plan[name]
        if n_samples <= 0:
            continue
        expert = GreedyDepthExpert(env)
        imgs, tgts = collect_dataset(env, expert, n_samples, rng)
        images.append(imgs)
        targets.append(tgts)
    images = np.concatenate(images)
    targets = np.concatenate(targets)

    network = small_c3f2(config.image_size, n_actions=config.n_actions, rng=rng)
    behaviour_clone(
        network,
        images,
        targets,
        epochs=config.pretrain_epochs,
        learning_rate=config.pretrain_learning_rate,
        rng=rng,
    )

    executor = QuantizedExecutor(network, config.qformat)
    calibration = images[:: max(1, len(images) // 32)]
    profile = executor.profile_ranges(calibration)

    bundle = DronePolicyBundle(
        config=config,
        network=network,
        envs=envs,
        clean_state=network.state_dict(),
        range_profile=profile,
    )
    _DRONE_CACHE[key] = bundle
    return bundle


def evaluate_drone_msf(
    policy: Policy,
    env: DroneNavEnv,
    trials: int,
    max_steps: int,
) -> float:
    """Mean Safe Flight distance of a policy in metres."""
    return evaluate_mean_metric(
        policy, env, "flight_distance", trials=trials, max_steps=max_steps
    )
