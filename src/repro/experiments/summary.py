"""Headline numbers of Sec. 5.2.

Derives the paper's three headline claims from the Fig. 10 sweeps plus the
analytical overhead model:

* up to ~2x success-rate improvement in Grid World inference,
* ~39% quality-of-flight (MSF) improvement in drone inference,
* <3% runtime overhead for the range detector, with no redundant bits.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.api.execution import ExecutionConfig, resolve_execution
from repro.core.mitigation.anomaly import estimate_runtime_overhead
from repro.experiments.config import (
    FAST_PARAM,
    DroneConfig,
    GridNNConfig,
    drone_config_for,
    grid_config_for,
)
from repro.experiments.fig10_anomaly import (
    run_drone_anomaly_mitigation,
    run_gridworld_anomaly_mitigation,
)
from repro.experiments.registry import register_experiment
from repro.io.results import ResultTable
from repro.metrics.navigation import quality_of_flight_improvement

__all__ = ["summarize_mitigation_gains", "run_headline_summary"]


def summarize_mitigation_gains(
    table: ResultTable, value_column: str, ber_column: str = "bit_error_rate"
) -> ResultTable:
    """Per-BER improvement factor of mitigated over unmitigated results."""
    summary = ResultTable(title=f"{table.title} — improvement factors")
    unmitigated = {
        row[ber_column]: row[value_column] for row in table.filter(mitigation=False).rows
    }
    for row in table.filter(mitigation=True).rows:
        ber = row[ber_column]
        base = unmitigated.get(ber)
        if base is None:
            continue
        improved = row[value_column]
        factor = improved / base if base > 0 else float("inf") if improved > 0 else 1.0
        summary.add(
            **{
                ber_column: ber,
                "unmitigated": base,
                "mitigated": improved,
                "improvement_factor": factor,
                "relative_improvement": quality_of_flight_improvement(base, improved)
                if base > 0
                else float("inf"),
            }
        )
    return summary


def run_headline_summary(
    grid_config: Optional[GridNNConfig] = None,
    drone_config: Optional[DroneConfig] = None,
    grid_bers: Sequence[float] = (0.0, 0.005, 0.01),
    drone_bers: Sequence[float] = (0.0, 1e-3, 1e-2),
    seed: Optional[int] = None,
    workers: Optional[int] = None,
    checkpoint_dir=None,
    resume: bool = False,
    *,
    batch_size: Optional[int] = None,
    execution: Optional[ExecutionConfig] = None,
) -> ResultTable:
    """End-to-end headline summary (Sec. 5.2): 2x, +39%, <3% overhead."""
    execution = resolve_execution(
        execution,
        seed=seed,
        workers=workers,
        batch_size=batch_size,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )
    grid_config = grid_config or GridNNConfig()
    drone_config = drone_config or DroneConfig()

    grid_table = run_gridworld_anomaly_mitigation(
        grid_config, grid_bers, execution=execution
    )
    drone_table = run_drone_anomaly_mitigation(
        drone_config, drone_bers, execution=execution
    )
    grid_gains = summarize_mitigation_gains(grid_table, "success_rate")
    drone_gains = summarize_mitigation_gains(drone_table, "mean_safe_flight")

    best_grid = max(
        (row["improvement_factor"] for row in grid_gains.rows if row["unmitigated"] > 0),
        default=1.0,
    )
    best_drone = max(
        (row["relative_improvement"] for row in drone_gains.rows if row["unmitigated"] > 0),
        default=0.0,
    )
    overhead = estimate_runtime_overhead(
        qformat_total_bits=drone_config.qformat.total_bits,
        sign_integer_bits=drone_config.qformat.sign_bits + drone_config.qformat.integer_bits,
    )

    summary = ResultTable(title="Headline summary (paper Sec. 5.2)")
    summary.add(
        claim="Grid World success-rate improvement (paper: ~2x)",
        measured=best_grid,
    )
    summary.add(
        claim="Drone quality-of-flight improvement (paper: ~+39%)",
        measured=best_drone,
    )
    summary.add(
        claim="Detector runtime overhead (paper: <3%)",
        measured=overhead,
    )
    return summary


# --------------------------------------------------------------------------- #
# Declarative specs
# --------------------------------------------------------------------------- #
@register_experiment(
    "summary.headline",
    description="Sec. 5.2 headline claims — ~2x Grid World success, ~+39% "
    "drone flight quality, <3% detector overhead",
    params=(FAST_PARAM,),
)
def _headline_spec(execution: ExecutionConfig, *, fast: bool) -> ResultTable:
    return run_headline_summary(
        grid_config=grid_config_for("nn", fast, scale=execution.scale),
        drone_config=drone_config_for(fast, scale=execution.scale),
        execution=execution,
    )
