"""The declarative experiment registry.

Every paper-figure experiment is registered as an :class:`ExperimentSpec`: a
named, introspectable description of the experiment (its typed sweep
parameters and a run function taking an
:class:`~repro.api.execution.ExecutionConfig`).  Specs are declared next to
the drivers they wrap with the :func:`register_experiment` decorator::

    @register_experiment(
        "fig5.inference",
        description="Success rate vs BER per inference fault mode",
        params=(
            ParamSpec("approach", str, "tabular", choices=("tabular", "nn")),
            ParamSpec("fast", bool, False),
        ),
        batched=True,
    )
    def _inference_spec(execution: ExecutionConfig, *, approach, fast):
        ...

The registry is what makes experiments *data*: :func:`repro.api.run` looks
specs up by name, the CLI (``python -m repro``) generates its subcommands,
flags and ``list`` output from it, and future scenario packs register new
specs without touching the CLI at all.  Spec modules are imported by
:func:`load_all_specs` on first registry access (not when this module or
:mod:`repro.api` is imported), so using :class:`ExecutionConfig` or the
result containers alone never pulls in the full experiment stack.
"""

from __future__ import annotations

import importlib
import operator
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "ParamSpec",
    "ExperimentSpec",
    "register_experiment",
    "get_spec",
    "list_specs",
    "spec_names",
    "figures",
    "specs_for_figure",
    "load_all_specs",
]

#: Modules that declare experiment specs (imported by :func:`load_all_specs`).
SPEC_MODULES: Tuple[str, ...] = (
    "repro.experiments.fig2_training",
    "repro.experiments.fig3_return_curves",
    "repro.experiments.fig4_convergence",
    "repro.experiments.fig5_inference",
    "repro.experiments.fig7_drone",
    "repro.experiments.fig8_mitigation_training",
    "repro.experiments.fig9_exploration",
    "repro.experiments.fig10_anomaly",
    "repro.experiments.summary",
)

_TYPE_NAMES = {int: "int", float: "float", str: "str", bool: "bool"}


@dataclass(frozen=True)
class ParamSpec:
    """One typed, introspectable experiment parameter.

    ``type`` must be one of ``int`` / ``float`` / ``str`` / ``bool`` — the
    CLI derives argparse flags from it (``bool`` parameters become on/off
    switches), and :meth:`ExperimentSpec.resolve_params` uses it to validate
    programmatic values.
    """

    name: str
    type: type
    default: Any
    help: str = ""
    choices: Optional[Tuple[Any, ...]] = None
    minimum: Optional[Any] = None

    def __post_init__(self) -> None:
        if self.type not in _TYPE_NAMES:
            raise TypeError(
                f"parameter {self.name!r}: type must be one of "
                f"{sorted(t.__name__ for t in _TYPE_NAMES)}, got {self.type!r}"
            )
        if self.choices is not None:
            object.__setattr__(self, "choices", tuple(self.choices))

    def validate(self, value: Any) -> Any:
        """Coerce/validate one value for this parameter.

        Strings coerce through the declared type (the CLI's view of the
        world), but numeric values must be lossless: an int parameter
        rejects ``2.7`` (and bools) instead of silently truncating, the
        same contract :class:`~repro.api.execution.ExecutionConfig` applies
        to its seed.
        """
        if self.type is bool:
            if not isinstance(value, bool):
                raise TypeError(f"parameter {self.name!r} must be a bool, got {value!r}")
        elif isinstance(value, bool):
            # bool subclasses int; a flag passed where a number belongs is a
            # transposition mistake, not a value.
            raise TypeError(
                f"parameter {self.name!r} must be {_TYPE_NAMES[self.type]}, got {value!r}"
            )
        elif self.type is int and not isinstance(value, str):
            try:
                value = operator.index(value)
            except TypeError as exc:
                raise TypeError(
                    f"parameter {self.name!r} must be int, got {value!r}"
                ) from exc
        else:
            try:
                value = self.type(value)
            except (TypeError, ValueError) as exc:
                raise TypeError(
                    f"parameter {self.name!r} must be {_TYPE_NAMES[self.type]}, "
                    f"got {value!r}"
                ) from exc
        if self.choices is not None and value not in self.choices:
            raise ValueError(
                f"parameter {self.name!r} must be one of {list(self.choices)}, "
                f"got {value!r}"
            )
        if self.minimum is not None and value < self.minimum:
            raise ValueError(
                f"parameter {self.name!r} must be >= {self.minimum}, got {value!r}"
            )
        return value

    def describe(self) -> str:
        """Compact one-line rendering for ``python -m repro list``."""
        if self.choices is not None:
            kind = "{" + ",".join(str(c) for c in self.choices) + "}"
        else:
            kind = _TYPE_NAMES[self.type]
        return f"{self.name}: {kind} = {self.default}"

    def to_json_dict(self) -> Dict[str, Any]:
        """Machine-readable schema entry (``python -m repro list --json``)."""
        return {
            "name": self.name,
            "type": _TYPE_NAMES[self.type],
            "default": self.default,
            "help": self.help,
            "choices": None if self.choices is None else list(self.choices),
            "minimum": self.minimum,
        }


@dataclass(frozen=True)
class ExperimentSpec:
    """A registered experiment: name, typed parameters and a run function.

    ``run_fn`` is called as ``run_fn(execution, **params)`` and returns a
    :class:`~repro.io.results.ResultTable` or
    :class:`~repro.io.results.SeriesResult`.  ``name`` is dotted
    ``<figure>.<experiment>`` (e.g. ``"fig5.inference"``); the figure prefix
    groups specs into CLI subcommands.
    """

    name: str
    description: str
    run_fn: Callable[..., Any]
    params: Tuple[ParamSpec, ...] = field(default_factory=tuple)
    batched: bool = False

    @property
    def figure(self) -> str:
        """The CLI subcommand this spec belongs to (``"fig5.inference"`` → ``"fig5"``)."""
        return self.name.split(".", 1)[0]

    def param(self, name: str) -> ParamSpec:
        """Look one declared parameter up by name (``KeyError`` for typos)."""
        for param in self.params:
            if param.name == name:
                return param
        valid = [param.name for param in self.params] or ["<none>"]
        raise KeyError(f"spec {self.name!r} has no parameter {name!r} (valid: {valid})")

    def to_json_dict(self) -> Dict[str, Any]:
        """Machine-readable spec description (``python -m repro list --json``)."""
        return {
            "name": self.name,
            "figure": self.figure,
            "description": self.description,
            "batched": self.batched,
            "params": [param.to_json_dict() for param in self.params],
        }

    def resolve_params(self, overrides: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
        """Defaults merged with ``overrides``, validated against the schema.

        Unknown parameter names raise ``TypeError`` (listing the valid
        names), so typos fail loudly instead of silently running the default
        sweep.
        """
        overrides = dict(overrides or {})
        resolved: Dict[str, Any] = {}
        for param in self.params:
            if param.name in overrides:
                resolved[param.name] = param.validate(overrides.pop(param.name))
            else:
                resolved[param.name] = param.default
        if overrides:
            valid = [param.name for param in self.params] or ["<none>"]
            raise TypeError(
                f"unknown parameter(s) for {self.name!r}: "
                f"{sorted(overrides)} (valid: {valid})"
            )
        return resolved


_REGISTRY: Dict[str, ExperimentSpec] = {}
_LOADED = False


def register_experiment(
    name: str,
    *,
    description: str,
    params: Sequence[ParamSpec] = (),
    batched: bool = False,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Class-of-one decorator registering a run function as an experiment spec.

    The decorated function is returned unchanged (with the spec attached as
    ``fn.spec``), so modules can still call it directly.
    """
    if "." not in name:
        raise ValueError(
            f"experiment name must be dotted '<figure>.<experiment>', got {name!r}"
        )
    seen = set()
    for param in params:
        if param.name in seen:
            raise ValueError(f"duplicate parameter {param.name!r} in spec {name!r}")
        seen.add(param.name)

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        existing = _REGISTRY.get(name)
        if existing is not None and not _same_declaration(existing.run_fn, fn):
            raise ValueError(
                f"experiment {name!r} is already registered by "
                f"{existing.run_fn.__module__}.{existing.run_fn.__qualname__}"
            )
        spec = ExperimentSpec(
            name=name,
            description=description,
            run_fn=fn,
            params=tuple(params),
            batched=batched,
        )
        _REGISTRY[name] = spec
        fn.spec = spec
        return fn

    return decorate


def _same_declaration(existing: Callable[..., Any], candidate: Callable[..., Any]) -> bool:
    """Whether two run functions are the same declaration.

    Identity covers ordinary repeat decoration; module+qualname equality
    additionally lets ``importlib.reload`` of a spec module re-register its
    own specs (replacing them) instead of crashing, while still rejecting a
    *different* experiment claiming an existing name.
    """
    if existing is candidate:
        return True
    return (existing.__module__, existing.__qualname__) == (
        candidate.__module__,
        candidate.__qualname__,
    )


def load_all_specs() -> None:
    """Import every spec module so the registry is fully populated."""
    global _LOADED
    if _LOADED:
        return
    for module in SPEC_MODULES:
        importlib.import_module(module)
    _LOADED = True


def get_spec(name: str) -> ExperimentSpec:
    """Look an experiment spec up by its registered name."""
    load_all_specs()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(spec_names())
        raise KeyError(f"unknown experiment {name!r}; registered specs: {known}") from None


def list_specs() -> List[ExperimentSpec]:
    """Every registered spec, ordered by figure then name."""
    load_all_specs()
    return sorted(_REGISTRY.values(), key=lambda spec: (_figure_key(spec.figure), spec.name))


def spec_names() -> List[str]:
    return [spec.name for spec in list_specs()]


def figures() -> List[str]:
    """The distinct figure prefixes, in natural (fig2 < fig10) order."""
    ordered: Dict[str, None] = {}
    for spec in list_specs():
        ordered.setdefault(spec.figure, None)
    return list(ordered)


def specs_for_figure(figure: str) -> List[ExperimentSpec]:
    """All specs grouped under one CLI subcommand, in registration order."""
    load_all_specs()
    specs = [spec for spec in _REGISTRY.values() if spec.figure == figure]
    if not specs:
        raise KeyError(f"no experiments registered for figure {figure!r}")
    return specs


def _figure_key(figure: str) -> Tuple[int, Any]:
    """Natural sort: fig2 < fig10, named groups (summary) after figures."""
    if figure.startswith("fig") and figure[3:].isdigit():
        return (0, int(figure[3:]))
    return (1, figure)
