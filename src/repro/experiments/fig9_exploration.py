"""Fig. 9 — how the mitigation scheme adjusts exploration.

Panel (a)/(b): for each bit error rate and fault type, the exploration ratio
the controller adjusts to (transient: higher with more faults) and the number
of episodes taken before the schedule returns to steady exploitation
(permanent: longer with more faults, because the decay speed is slowed).

Panel (c): the correlation between the adjusted exploration ratio and the
recovery time — adjusting to a higher exploration rate costs more episodes to
converge back, which is the trade-off the controller navigates dynamically.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.api.execution import ExecutionConfig, resolve_execution
from repro.core.campaign import Campaign, TrialOutcome
from repro.core.injector import PermanentTrainingFaultHook, TransientTrainingFaultHook
from repro.experiments.common import run_campaign, train_grid_nn, train_tabular
from repro.experiments.config import (
    APPROACH_PARAM,
    FAST_PARAM,
    GridNNConfig,
    GridTabularConfig,
    grid_ber_sweep,
    grid_config_for,
)
from repro.experiments.fig8_mitigation_training import make_controller
from repro.experiments.registry import register_experiment
from repro.io.results import ResultTable

__all__ = ["run_exploration_adjustment_sweep", "run_recovery_speed_correlation"]

GridConfig = Union[GridTabularConfig, GridNNConfig]


def _train(config: GridConfig, rng: np.random.Generator, hooks):
    if isinstance(config, GridNNConfig):
        return train_grid_nn(config, rng, hooks=hooks)
    return train_tabular(config, rng, hooks=hooks)


def run_exploration_adjustment_sweep(
    config: GridConfig,
    bit_error_rates: Sequence[float],
    fault_types: Sequence[str] = ("transient", "stuck-at-0", "stuck-at-1"),
    seed: Optional[int] = None,
    repetitions: Optional[int] = None,
    workers: Optional[int] = None,
    batch_size: Optional[int] = None,
    checkpoint_dir=None,
    resume: bool = False,
    *,
    execution: Optional[ExecutionConfig] = None,
) -> ResultTable:
    """Fig. 9a/9b — adjusted exploration ratio and episodes to steady exploitation.

    ``batch_size`` selects the batched campaign engine; the training trials
    here have no vectorized implementation, so batches fall back to scalar
    execution (outcomes are unchanged either way).
    """
    execution = resolve_execution(
        execution,
        seed=seed,
        repetitions=repetitions,
        workers=workers,
        batch_size=batch_size,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )
    seed = execution.seed
    approach = "nn" if isinstance(config, GridNNConfig) else "tabular"
    repetitions = execution.resolve_repetitions(config.repetitions)
    inject_episode = config.episodes // 2
    table = ResultTable(title=f"Fig9 exploration adjustment ({approach})")

    for fault_type in fault_types:
        for ber in bit_error_rates:
            def trial(rng: np.random.Generator, fault_type=fault_type, ber=ber) -> TrialOutcome:
                hooks = []
                if ber > 0:
                    if fault_type == "transient":
                        hooks.append(
                            TransientTrainingFaultHook(
                                ber, inject_episode=inject_episode, rng=rng
                            )
                        )
                    else:
                        stuck = 1 if fault_type.endswith("1") else 0
                        hooks.append(
                            PermanentTrainingFaultHook(ber, stuck_value=stuck, rng=rng)
                        )
                controller = make_controller(config)
                hooks.append(controller)
                agent, _, history = _train(config, rng, hooks)

                peak_rate = (
                    max(a.new_rate for a in controller.adjustments)
                    if controller.adjustments
                    else 0.0
                )
                episodes_to_steady = _episodes_to_steady(history.exploration_rates, config)
                return TrialOutcome(
                    metric=peak_rate,
                    extras={
                        "episodes_to_steady": float(episodes_to_steady),
                        "transient_detections": float(controller.transient_detections),
                        "permanent_detections": float(controller.permanent_detections),
                    },
                )

            result = run_campaign(
                Campaign(f"fig9-{approach}-{fault_type}-ber{ber}", repetitions, seed=seed),
                trial,
                execution=execution,
            )
            table.add(
                approach=approach,
                fault_type=fault_type,
                bit_error_rate=ber,
                adjusted_exploration_ratio=result.mean_metric,
                episodes_to_steady=result.extras_mean("episodes_to_steady"),
                transient_detections=result.extras_mean("transient_detections"),
                permanent_detections=result.extras_mean("permanent_detections"),
                repetitions=repetitions,
            )
    return table


def _episodes_to_steady(exploration_rates: np.ndarray, config: GridConfig) -> int:
    """Last episode at which exploration was still above the steady floor."""
    floor = config.epsilon_floor + 1e-9
    above = np.flatnonzero(exploration_rates > floor)
    return int(above[-1] + 1) if above.size else 0


def run_recovery_speed_correlation(
    config: GridConfig,
    exploration_boosts: Sequence[float] = (0.25, 0.5, 0.75),
    bit_error_rate: float = 0.006,
    seed: Optional[int] = None,
    repetitions: Optional[int] = None,
    recovery_threshold: float = 0.8,
    recovery_window: int = 25,
    workers: Optional[int] = None,
    batch_size: Optional[int] = None,
    checkpoint_dir=None,
    resume: bool = False,
    *,
    execution: Optional[ExecutionConfig] = None,
) -> ResultTable:
    """Fig. 9c — recovery time as a function of the (forced) exploration boost.

    A transient fault is injected mid-training, the exploration rate is then
    forced to each boost level, and the number of episodes until the windowed
    success rate recovers is measured.
    """
    execution = resolve_execution(
        execution,
        seed=seed,
        repetitions=repetitions,
        workers=workers,
        batch_size=batch_size,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )
    seed = execution.seed
    approach = "nn" if isinstance(config, GridNNConfig) else "tabular"
    repetitions = execution.resolve_repetitions(config.repetitions)
    inject_episode = config.episodes // 2
    table = ResultTable(title=f"Fig9c recovery speed vs exploration ratio ({approach})")

    for boost in exploration_boosts:
        def trial(rng: np.random.Generator, boost=boost) -> TrialOutcome:
            fault_hook = TransientTrainingFaultHook(
                bit_error_rate, inject_episode=inject_episode, rng=rng
            )
            booster = _ForcedBoostHook(inject_episode, boost)
            _, _, history = _train(config, rng, [fault_hook, booster])
            successes = history.successes[inject_episode:]
            recovery = _episodes_to_recover(successes, recovery_window, recovery_threshold)
            recovered = recovery is not None
            return TrialOutcome(
                success=recovered,
                metric=float(recovery if recovered else len(successes)),
            )

        result = run_campaign(
            Campaign(f"fig9c-{approach}-boost{boost}", repetitions, seed=seed + 7),
            trial,
            execution=execution,
        )
        table.add(
            approach=approach,
            exploration_ratio=boost,
            recovery_episodes=result.mean_metric,
            recovery_rate=result.success_rate,
            repetitions=repetitions,
        )
    return table


# --------------------------------------------------------------------------- #
# Declarative specs
# --------------------------------------------------------------------------- #
@register_experiment(
    "fig9.exploration_adjustment",
    description="Fig. 9a/9b — adjusted exploration ratio and episodes to "
    "steady exploitation per fault type and BER",
    params=(APPROACH_PARAM, FAST_PARAM),
    batched=True,
)
def _exploration_adjustment_spec(
    execution: ExecutionConfig, *, approach: str, fast: bool
) -> ResultTable:
    config = grid_config_for(approach, fast, scale=execution.scale)
    return run_exploration_adjustment_sweep(
        config, grid_ber_sweep(execution.scale), execution=execution
    )


@register_experiment(
    "fig9.recovery_correlation",
    description="Fig. 9c — recovery time vs forced exploration boost after a "
    "mid-training transient fault",
    params=(APPROACH_PARAM, FAST_PARAM),
    batched=True,
)
def _recovery_correlation_spec(
    execution: ExecutionConfig, *, approach: str, fast: bool
) -> ResultTable:
    config = grid_config_for(approach, fast, scale=execution.scale)
    return run_recovery_speed_correlation(config, execution=execution)


def _episodes_to_recover(successes: np.ndarray, window: int, threshold: float) -> Optional[int]:
    if successes.size == 0:
        return None
    window = min(window, successes.size)
    flags = successes.astype(np.float64)
    for end in range(window, flags.size + 1):
        if flags[end - window : end].mean() >= threshold:
            return end
    return None


class _ForcedBoostHook:
    """Training hook that forces a fixed exploration boost at a given episode."""

    def __init__(self, episode: int, boost: float) -> None:
        self.episode = episode
        self.boost = boost

    def on_training_start(self, agent, env) -> None:  # pragma: no cover - trivial
        pass

    def on_episode_start(self, episode: int, agent, env) -> None:
        if episode == self.episode and hasattr(agent.schedule, "boost"):
            agent.schedule.boost(self.boost)

    def on_step(self, episode, step, agent, env, transition) -> None:  # pragma: no cover
        pass

    def on_episode_end(self, episode, agent, env, record) -> None:  # pragma: no cover
        pass

    def on_training_end(self, agent, env, result) -> None:  # pragma: no cover - trivial
        pass
