"""Batched environment stepping.

The batched inference-campaign engine evaluates B fault-injected policy
replicas simultaneously, which requires stepping B *independent* episodes in
lockstep.  :class:`BatchedEnv` is the interface the batched rollout engine
(:func:`repro.rl.evaluation.greedy_rollouts`) drives:

* :meth:`BatchedEnv.reset_all` starts a fresh episode in every replica;
* :meth:`BatchedEnv.step_many` applies one action per *active* replica —
  replicas finish independently, so the rollout engine passes the indices
  of the episodes still running.

Three implementations exist: :class:`~repro.envs.gridworld.GridWorldBatch`
steps all Grid World replicas through vectorized integer math,
:class:`~repro.envs.drone.DroneNavEnvBatch` steps drone replicas through
replica-axis numpy ray casting, and :class:`EnvPool` wraps any collection
of scalar environments behind the same interface as the generic fallback
for environments without a native batch.  All are exact: replica ``r`` of
a batched run visits the same states, rewards and ``info`` dictionaries as
a scalar environment stepped with the same actions.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.envs.base import Environment

__all__ = ["BatchedEnv", "EnvPool"]


class BatchedEnv:
    """B independent episodic environments stepped together.

    Subclasses must implement :meth:`reset_all` and :meth:`step_many`.
    """

    #: Number of discrete actions (shared by every replica).
    n_actions: int

    #: Number of independent replicas.
    n_replicas: int

    def reset_all(self) -> List[Any]:
        """Start a new episode in every replica; return the initial states."""
        raise NotImplementedError

    def step_many(
        self, actions: Sequence[int], indices: Sequence[int]
    ) -> Tuple[List[Any], np.ndarray, np.ndarray, List[Dict[str, Any]]]:
        """Apply ``actions[j]`` to replica ``indices[j]``.

        Returns ``(next_states, rewards, dones, infos)``, each aligned with
        ``indices`` (length ``len(indices)``, *not* ``n_replicas``).  Every
        replica behaves exactly like a scalar environment stepped with the
        same action sequence.
        """
        raise NotImplementedError

    def _check_actions(self, actions: np.ndarray) -> None:
        if actions.size and (actions.min() < 0 or actions.max() >= self.n_actions):
            raise ValueError(
                f"actions must lie in [0, {self.n_actions}), got range "
                f"[{actions.min()}, {actions.max()}]"
            )


class EnvPool(BatchedEnv):
    """Scalar fallback: independent scalar environments behind the batched API.

    Used for environments without a native vectorized stepping mode; each
    replica owns one scalar environment instance, so batched campaigns
    remain bit-identical even where only the policy side is vectorized.
    (The drone simulator now has a native batch, ``DroneNavEnvBatch``; the
    pool remains as the generic fallback and as the reference baseline the
    batched-env guardrail benchmark measures against.)
    """

    def __init__(self, envs: Sequence[Environment]) -> None:
        envs = list(envs)
        if not envs:
            raise ValueError("EnvPool needs at least one environment")
        actions = {env.n_actions for env in envs}
        if len(actions) != 1:
            raise ValueError(f"pool environments disagree on n_actions: {sorted(actions)}")
        self.envs = envs
        self.n_actions = envs[0].n_actions
        self.n_replicas = len(envs)

    @classmethod
    def from_factory(
        cls, factory: Callable[[], Environment], n_replicas: int
    ) -> "EnvPool":
        """Build a pool of ``n_replicas`` environments from a factory."""
        if n_replicas <= 0:
            raise ValueError(f"n_replicas must be positive, got {n_replicas}")
        return cls([factory() for _ in range(n_replicas)])

    def reset_all(self) -> List[Any]:
        return [env.reset() for env in self.envs]

    def step_many(
        self, actions: Sequence[int], indices: Sequence[int]
    ) -> Tuple[List[Any], np.ndarray, np.ndarray, List[Dict[str, Any]]]:
        states: List[Any] = []
        rewards = np.empty(len(indices), dtype=np.float64)
        dones = np.zeros(len(indices), dtype=bool)
        infos: List[Dict[str, Any]] = []
        for j, (action, index) in enumerate(zip(actions, indices)):
            state, reward, done, info = self.envs[index].step(int(action))
            states.append(state)
            rewards[j] = reward
            dones[j] = done
            infos.append(info)
        return states, rewards, dones, infos
