"""Privileged geometric expert for the drone task.

The paper pre-trains its drone policy offline (Double DQN in PEDRA) before
fine-tuning online.  Offline pre-training of a CNN by RL is far too slow in
pure numpy, so the reproduction substitutes *supervised pre-training against
a privileged expert*: for any drone pose the expert scores each of the 25
actions by the free-space distance along that action's heading (which it
reads directly from the world geometry).  The C3F2 network is then trained
to predict these per-action clearance scores from the camera image alone
(see :func:`repro.rl.imitation.pretrain_drone_policy`), which yields the same
kind of "turn toward open space" policy the paper's RL training produces.
The substitution is documented in DESIGN.md.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.envs.drone.env import DroneNavEnv

__all__ = ["GreedyDepthExpert", "collect_dataset"]


class GreedyDepthExpert:
    """Scores each action by simulating it against the world geometry.

    The score of an action combines three terms, all computed with privileged
    access to the floor plan:

    * 0 if executing the action (yaw change plus forward step, in sub-steps)
      would collide,
    * otherwise the free distance looking ahead from the post-action pose
      (normalized by ``lookahead``),
    * plus ``clearance_weight`` times the all-around clearance at the
      post-action pose, which makes the expert start weaving *before* it is
      boxed in,
    * plus a small straight-ahead bonus to break ties without dithering.
    """

    def __init__(
        self,
        env: DroneNavEnv,
        lookahead: float = 12.0,
        clearance_weight: float = 0.3,
        straight_bonus: float = 0.03,
    ) -> None:
        if lookahead <= 0:
            raise ValueError(f"lookahead must be positive, got {lookahead}")
        if clearance_weight < 0:
            raise ValueError(f"clearance_weight must be non-negative, got {clearance_weight}")
        self.env = env
        self.lookahead = lookahead
        self.clearance_weight = clearance_weight
        self.straight_bonus = straight_bonus

    def _simulate_action(
        self, x: float, y: float, heading: float, action: int
    ) -> Optional[Tuple[float, float, float]]:
        """Post-action pose, or None if the move collides."""
        yaw_offset, forward = self.env.actions.command(action)
        new_heading = heading + yaw_offset
        margin = self.env.collision_radius + 0.05
        step = forward / self.env.substeps
        for _ in range(self.env.substeps):
            x = x + step * float(np.cos(new_heading))
            y = y + step * float(np.sin(new_heading))
            if not self.env.world.is_free(x, y, margin=margin):
                return None
        return x, y, new_heading

    def action_scores(self, pose: Optional[Tuple[float, float, float]] = None) -> np.ndarray:
        """Score in [0, ~1.5] for each action; higher is safer/more open."""
        x, y, heading = pose if pose is not None else self.env.pose
        world = self.env.world
        scores = np.zeros(self.env.actions.n_actions, dtype=np.float64)
        for action in range(self.env.actions.n_actions):
            outcome = self._simulate_action(x, y, heading, action)
            if outcome is None:
                continue
            nx, ny, nheading = outcome
            ahead = world.ray_distance(nx, ny, nheading, self.lookahead) / self.lookahead
            clearance = min(world.clearance(nx, ny), 3.0) / 3.0
            scores[action] = ahead + self.clearance_weight * clearance
        scores[self.env.actions.straight_action] += self.straight_bonus
        return scores

    def select_action(self, state: np.ndarray = None) -> int:
        """Best action for the environment's *current* pose (state is ignored)."""
        return int(np.argmax(self.action_scores()))


def collect_dataset(
    env: DroneNavEnv,
    expert: GreedyDepthExpert,
    num_samples: int,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample (image, per-action clearance score) pairs from random free poses.

    Poses are drawn uniformly over the free space of the environment's world
    with random headings, which covers the states the policy will encounter
    far better than on-policy rollouts of an untrained network.
    """
    if num_samples <= 0:
        raise ValueError(f"num_samples must be positive, got {num_samples}")
    images: List[np.ndarray] = []
    targets: List[np.ndarray] = []
    world = env.world
    while len(images) < num_samples:
        x = rng.uniform(0.0, world.length)
        y = rng.uniform(0.0, world.width)
        if not world.is_free(x, y, margin=env.collision_radius):
            continue
        heading = rng.uniform(-np.pi, np.pi)
        images.append(env.camera.render(world, x, y, heading))
        targets.append(expert.action_scores((x, y, heading)))
    return np.stack(images), np.stack(targets)
