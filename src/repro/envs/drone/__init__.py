"""Drone autonomous-navigation simulator (PEDRA substitute).

The paper trains and evaluates its drone policy in PEDRA, a drone RL platform
built on Unreal Engine with photorealistic indoor environments.  That stack
is not available offline, so this package provides a procedural substitute
that preserves the properties the fault study depends on:

* the state is a monocular camera image produced from the drone's pose by
  ray-casting against the environment geometry (depth-like intensity image),
* the action space is a 25-way perception-based set of heading/step commands,
* the reward encourages staying away from obstacles, and
* the quality-of-flight metric is Mean Safe Flight (MSF): average distance
  travelled before collision.

Two layouts, ``indoor-long`` and ``indoor-vanleer``, mirror the relative
difficulty of the two PEDRA maps used in Fig. 7b.
"""

from repro.envs.drone.world import (
    CorridorWorld,
    Rect,
    indoor_long,
    indoor_vanleer,
    wrap_angle,
)
from repro.envs.drone.camera import DepthCamera
from repro.envs.drone.actions import ActionSpace25
from repro.envs.drone.env import DroneNavEnv, make_drone_env
from repro.envs.drone.batch import DroneNavEnvBatch

__all__ = [
    "CorridorWorld",
    "Rect",
    "indoor_long",
    "indoor_vanleer",
    "wrap_angle",
    "DepthCamera",
    "ActionSpace25",
    "DroneNavEnv",
    "DroneNavEnvBatch",
    "make_drone_env",
]
