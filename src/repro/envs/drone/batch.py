"""Replica-axis vectorized drone environment.

:class:`DroneNavEnvBatch` steps B independent drone episodes in lockstep,
replacing B scalar :class:`~repro.envs.drone.env.DroneNavEnv` instances with
flat numpy state arrays (positions, headings, flight distances) and batched
geometry queries (:meth:`CorridorWorld.ray_distances`,
:meth:`DepthCamera.render_batch`).  This removes the per-ray / per-column
Python loops that dominate the fig7 hot path when the batched campaign
engine stacks fault-injected replicas.

The batch is *exact*: replica ``r`` visits bit-identical states, rewards and
``info`` dictionaries to a scalar environment stepped with the same action
sequence.  Every floating-point operation in the step (heading wrap, substep
advance, collision test, stall bookkeeping, clearance reward) is performed
with the same arithmetic in the same per-element order as the scalar code;
the differential suite in ``tests/test_batched_parity.py`` enforces this.

Stall detection intentionally stays a small per-replica Python loop over the
recent-position deques — it is O(B) per step with trivial constants and
mirrors the scalar bookkeeping (including the flight-distance rollback)
literally instead of re-deriving it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.envs.batched import BatchedEnv
from repro.envs.drone.env import DroneNavEnv
from repro.envs.drone.world import _radial_fan, wrap_angle

#: Clearance-check defaults shared with ``CorridorWorld.clearance`` (the
#: scalar step calls it with its default arguments).
_CLEARANCE_RAYS = 16
_CLEARANCE_RANGE = 10.0

__all__ = ["DroneNavEnvBatch"]


class DroneNavEnvBatch(BatchedEnv):
    """B lockstep replicas of one drone environment, stepped with numpy.

    Parameters
    ----------
    template:
        The scalar environment whose world, camera and dynamics parameters
        every replica shares.  The template itself is not stepped or mutated.
    n_replicas:
        Number of independent episodes to run in lockstep.
    """

    def __init__(self, template: DroneNavEnv, n_replicas: int) -> None:
        if n_replicas <= 0:
            raise ValueError(f"n_replicas must be positive, got {n_replicas}")
        self.template = template
        self.world = template.world
        self.camera = template.camera
        self.n_actions = template.n_actions
        self.n_replicas = n_replicas
        self.collision_radius = template.collision_radius
        self.clearance_reward_scale = template.clearance_reward_scale
        self.collision_penalty = template.collision_penalty
        self.max_flight_distance = template.max_flight_distance
        self.substeps = template.substeps
        self.stall_window = template.stall_window
        self.stall_distance = template.stall_distance
        # Per-action commands as lookup arrays, so one fancy index replaces
        # n per-replica command() calls.
        commands = [template.actions.command(a) for a in range(self.n_actions)]
        self._yaw_offsets = np.array([c[0] for c in commands], dtype=np.float64)
        self._forwards = np.array([c[1] for c in commands], dtype=np.float64)

        # Start-pose state without rendering: every rollout begins with its
        # own reset_all() call, which produces the initial observations.
        sx, sy, sh = self.world.start_pose
        self._xs = np.full(n_replicas, sx, dtype=np.float64)
        self._ys = np.full(n_replicas, sy, dtype=np.float64)
        self._headings = np.full(n_replicas, sh, dtype=np.float64)
        self._flight = np.zeros(n_replicas, dtype=np.float64)
        # Mirrors DroneNavEnv._recent_positions, one list per replica.
        self._recent: List[List[Tuple[float, float, float]]] = [
            [(sx, sy, 0.0)] for _ in range(n_replicas)
        ]

    # ------------------------------------------------------------------ #
    # BatchedEnv interface
    # ------------------------------------------------------------------ #
    def reset_all(self) -> List[np.ndarray]:
        sx, sy, sh = self.world.start_pose
        self._xs.fill(sx)
        self._ys.fill(sy)
        self._headings.fill(sh)
        self._flight.fill(0.0)
        self._recent = [[(sx, sy, 0.0)] for _ in range(self.n_replicas)]
        images = self.camera.render_batch(self.world, self._xs, self._ys, self._headings)
        return [images[r] for r in range(self.n_replicas)]

    def step_many(
        self, actions: Sequence[int], indices: Sequence[int]
    ) -> Tuple[List[np.ndarray], np.ndarray, np.ndarray, List[Dict[str, Any]]]:
        idx = np.asarray(indices, dtype=np.intp)
        acts = np.asarray(actions, dtype=np.intp)
        if acts.shape != idx.shape:
            raise ValueError(
                f"got {acts.size} actions for {idx.size} active replicas"
            )
        self._check_actions(acts)
        k = idx.size

        headings = wrap_angle(self._headings[idx] + self._yaw_offsets[acts])
        # The heading is constant across substeps, so the scalar per-substep
        # cos/sin calls always recompute the same value — hoist them.
        cos_h = np.cos(headings)
        sin_h = np.sin(headings)
        step_length = self._forwards[acts] / self.substeps

        # Candidate positions for every substep, accumulated exactly like the
        # scalar loop (x += step*cos each substep, so the partial sums match
        # bit for bit), then ONE collision query over all of them.  A lane
        # stops at its first blocked candidate — the scalar loop breaks
        # there, so the later candidates it never computes are simply
        # discarded here.
        dx = step_length * cos_h
        dy = step_length * sin_h
        cand_x = np.empty((self.substeps + 1, k), dtype=np.float64)
        cand_y = np.empty((self.substeps + 1, k), dtype=np.float64)
        cand_f = np.empty((self.substeps + 1, k), dtype=np.float64)
        cand_x[0] = self._xs[idx]
        cand_y[0] = self._ys[idx]
        cand_f[0] = self._flight[idx]
        for i in range(1, self.substeps + 1):
            cand_x[i] = cand_x[i - 1] + dx
            cand_y[i] = cand_y[i - 1] + dy
            cand_f[i] = cand_f[i - 1] + step_length
        blocked = ~self.world.free_mask(
            cand_x[1:], cand_y[1:], margin=self.collision_radius
        )
        collided = blocked.any(axis=0)
        # Substeps completed before freezing: index of the first blocked
        # candidate, or all of them for lanes that never collide.
        taken = np.where(collided, np.argmax(blocked, axis=0), self.substeps)
        lanes = np.arange(k)
        xs = cand_x[taken, lanes]
        ys = cand_y[taken, lanes]
        flight = cand_f[taken, lanes]

        # Stall bookkeeping: literal per-replica mirror of _is_stalled(),
        # including the trim and the flight-distance rollback.  Collided
        # replicas skip it — the scalar step returns before the stall check.
        stalled = np.zeros(k, dtype=bool)
        for j in range(k):
            if collided[j]:
                continue
            rec = self._recent[idx[j]]
            rec.append((float(xs[j]), float(ys[j]), float(flight[j])))
            if len(rec) <= self.stall_window:
                continue
            rec[:] = rec[-(self.stall_window + 1) :]
            old_x, old_y, old_distance = rec[0]
            displacement = float(np.hypot(xs[j] - old_x, ys[j] - old_y))
            if displacement < self.stall_distance:
                flight[j] = old_distance
                stalled[j] = True

        self._xs[idx] = xs
        self._ys[idx] = ys
        self._headings[idx] = headings
        self._flight[idx] = flight

        # Observations are rendered for every stepped replica, terminal or
        # not, exactly like the scalar env.  The camera columns and the
        # radial clearance fan are cast in ONE ray_distances pass — the
        # per-call dispatch overhead of the vectorized caster is what
        # dominates at small batch sizes, not the rays themselves.  Clamping
        # each group to its own max range afterwards gives the same result
        # as two separate casts because min(min(d, M), m) == min(d, m)
        # whenever m <= M.
        width = self.camera.width
        angles = np.concatenate(
            [
                headings[:, None] + self.camera._offsets,
                np.broadcast_to(
                    _radial_fan(_CLEARANCE_RAYS), (k, _CLEARANCE_RAYS)
                ),
            ],
            axis=1,
        )
        combined_range = max(self.camera.max_range, _CLEARANCE_RANGE)
        distances = self.world.ray_distances(
            xs[:, None], ys[:, None], angles, combined_range
        )
        depths = np.minimum(distances[:, :width], self.camera.max_range)
        images = self.camera.images_from_depths(depths)
        states = [images[j] for j in range(k)]

        rewards = np.empty(k, dtype=np.float64)
        dones = np.zeros(k, dtype=bool)
        rewards[collided] = self.collision_penalty
        dones[collided] = True
        rewards[stalled] = self.collision_penalty / 2.0
        dones[stalled] = True
        alive = ~(collided | stalled)
        success = np.zeros(k, dtype=bool)
        if alive.any():
            clearance = np.min(
                np.minimum(distances[alive, width:], _CLEARANCE_RANGE), axis=-1
            )
            rewards[alive] = (
                0.1 + self.clearance_reward_scale * np.minimum(clearance, 3.0) / 3.0
            )
            reached = alive & (flight >= self.max_flight_distance)
            dones |= reached
            success |= reached

        infos: List[Dict[str, Any]] = [
            {"flight_distance": float(flight[j]), "success": bool(success[j])}
            for j in range(k)
        ]
        return states, rewards, dones, infos
