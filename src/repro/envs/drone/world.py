"""2-D plan-view geometry of the indoor drone environments.

The drone flies at a fixed altitude, so the world is modelled as a 2-D floor
plan: an outer rectangular boundary plus axis-aligned rectangular obstacles
(columns, furniture, wall stubs).  The camera ray-casts against this geometry
to produce depth images, and the environment checks the drone's clearance
against it for collision detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["Rect", "CorridorWorld", "indoor_long", "indoor_vanleer"]


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle ``[x0, x1] x [y0, y1]`` (an obstacle footprint)."""

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if self.x1 <= self.x0 or self.y1 <= self.y0:
            raise ValueError(f"degenerate rectangle {self}")

    def contains(self, x: float, y: float, margin: float = 0.0) -> bool:
        """Whether the point lies inside the rectangle grown by ``margin``."""
        return (
            self.x0 - margin <= x <= self.x1 + margin
            and self.y0 - margin <= y <= self.y1 + margin
        )

    def ray_intersection(
        self, ox: float, oy: float, dx: float, dy: float
    ) -> Optional[float]:
        """Distance along the ray to the rectangle, or None if it misses.

        Standard slab method; only intersections in front of the origin
        (positive distance) count.
        """
        t_min, t_max = -np.inf, np.inf
        for origin, direction, lo, hi in (
            (ox, dx, self.x0, self.x1),
            (oy, dy, self.y0, self.y1),
        ):
            if abs(direction) < 1e-12:
                if origin < lo or origin > hi:
                    return None
                continue
            t1 = (lo - origin) / direction
            t2 = (hi - origin) / direction
            if t1 > t2:
                t1, t2 = t2, t1
            t_min = max(t_min, t1)
            t_max = min(t_max, t2)
            if t_min > t_max:
                return None
        if t_max < 0:
            return None
        return float(max(t_min, 0.0))


class CorridorWorld:
    """An indoor floor plan: outer boundary plus rectangular obstacles."""

    def __init__(
        self,
        length: float,
        width: float,
        obstacles: List[Rect],
        start_pose: Tuple[float, float, float],
        name: str = "corridor",
    ) -> None:
        if length <= 0 or width <= 0:
            raise ValueError("world length and width must be positive")
        self.length = length
        self.width = width
        self.obstacles = list(obstacles)
        self.start_pose = start_pose
        self.name = name
        sx, sy, _ = start_pose
        if not self.is_free(sx, sy, margin=0.0):
            raise ValueError(f"start pose {start_pose} is inside an obstacle or wall")

    # ------------------------------------------------------------------ #
    # Occupancy queries
    # ------------------------------------------------------------------ #
    def in_bounds(self, x: float, y: float, margin: float = 0.0) -> bool:
        """Whether a point is inside the outer boundary (shrunk by ``margin``)."""
        return margin <= x <= self.length - margin and margin <= y <= self.width - margin

    def is_free(self, x: float, y: float, margin: float = 0.0) -> bool:
        """Whether a point (with clearance ``margin``) is collision-free."""
        if not self.in_bounds(x, y, margin):
            return False
        return not any(rect.contains(x, y, margin) for rect in self.obstacles)

    def clearance(self, x: float, y: float, num_rays: int = 16, max_range: float = 10.0) -> float:
        """Approximate distance to the nearest surface, by radial ray casting."""
        angles = np.linspace(0.0, 2.0 * np.pi, num_rays, endpoint=False)
        distances = [self.ray_distance(x, y, a, max_range) for a in angles]
        return float(min(distances))

    # ------------------------------------------------------------------ #
    # Ray casting
    # ------------------------------------------------------------------ #
    def ray_distance(self, x: float, y: float, angle: float, max_range: float = 30.0) -> float:
        """Distance from (x, y) along ``angle`` to the first surface."""
        dx, dy = float(np.cos(angle)), float(np.sin(angle))
        best = self._boundary_distance(x, y, dx, dy)
        for rect in self.obstacles:
            hit = rect.ray_intersection(x, y, dx, dy)
            if hit is not None and hit < best:
                best = hit
        return float(min(best, max_range))

    def _boundary_distance(self, x: float, y: float, dx: float, dy: float) -> float:
        """Distance to the outer walls along a ray starting inside the world."""
        candidates = []
        if dx > 1e-12:
            candidates.append((self.length - x) / dx)
        elif dx < -1e-12:
            candidates.append(-x / dx)
        if dy > 1e-12:
            candidates.append((self.width - y) / dy)
        elif dy < -1e-12:
            candidates.append(-y / dy)
        positive = [c for c in candidates if c >= 0]
        return float(min(positive)) if positive else float("inf")


def indoor_long(name: str = "indoor-long") -> CorridorWorld:
    """A long straight corridor with sparse columns (the easier map).

    Analogue of PEDRA's ``indoor-long``: the fault-free policy can fly far,
    so there is headroom for faults to reduce the safe flight distance.
    """
    obstacles = [
        Rect(12.0, 0.0, 13.0, 2.2),
        Rect(20.0, 3.8, 21.0, 6.0),
        Rect(30.0, 0.0, 31.0, 2.5),
        Rect(38.0, 3.5, 39.0, 6.0),
        Rect(48.0, 0.0, 49.0, 2.2),
        Rect(56.0, 3.8, 57.0, 6.0),
        Rect(66.0, 0.0, 67.0, 2.5),
        Rect(74.0, 3.5, 75.0, 6.0),
        Rect(84.0, 0.0, 85.0, 2.2),
        Rect(92.0, 3.8, 93.0, 6.0),
    ]
    return CorridorWorld(
        length=100.0,
        width=6.0,
        obstacles=obstacles,
        start_pose=(2.0, 3.0, 0.0),
        name=name,
    )


def indoor_vanleer(name: str = "indoor-vanleer") -> CorridorWorld:
    """A shorter, more cluttered corridor with staggered obstacles (the harder map).

    Obstacles alternate between the bottom and top halves of the corridor
    every seven metres, so the drone has to weave continuously instead of
    flying a straight line — the map is denser than ``indoor-long`` but every
    gap is wide enough for a competent policy to thread.
    """
    obstacles = [
        Rect(9.0, 0.0, 10.0, 2.6),
        Rect(16.0, 3.4, 17.0, 6.0),
        Rect(23.0, 0.0, 24.0, 2.6),
        Rect(30.0, 3.4, 31.0, 6.0),
        Rect(37.0, 0.0, 38.0, 2.6),
        Rect(44.0, 3.4, 45.0, 6.0),
        Rect(51.0, 0.0, 52.0, 2.6),
        Rect(58.0, 3.4, 59.0, 6.0),
        Rect(65.0, 0.0, 66.0, 2.6),
    ]
    return CorridorWorld(
        length=70.0,
        width=6.0,
        obstacles=obstacles,
        start_pose=(2.0, 3.0, 0.0),
        name=name,
    )
