"""2-D plan-view geometry of the indoor drone environments.

The drone flies at a fixed altitude, so the world is modelled as a 2-D floor
plan: an outer rectangular boundary plus axis-aligned rectangular obstacles
(columns, furniture, wall stubs).  The camera ray-casts against this geometry
to produce depth images, and the environment checks the drone's clearance
against it for collision detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["Rect", "CorridorWorld", "indoor_long", "indoor_vanleer", "wrap_angle"]

#: Direction components smaller than this are treated as axis-parallel in the
#: slab intersection and the boundary distance (matches the scalar code).
_DIR_EPS = 1e-12


#: Radial ray fans by ray count.  The clearance check runs every simulation
#: step, so the fan angles are built once per ``num_rays`` instead of calling
#: ``np.linspace`` per query.  ``endpoint=False`` keeps 0 and 2π from both
#: appearing, so no ray is duplicated.
_FAN_CACHE: dict = {}


def _radial_fan(num_rays: int) -> np.ndarray:
    angles = _FAN_CACHE.get(num_rays)
    if angles is None:
        angles = np.linspace(0.0, 2.0 * np.pi, num_rays, endpoint=False)
        _FAN_CACHE[num_rays] = angles
    return angles


def wrap_angle(angle):
    """Wrap an angle (radians) into ``(-pi, pi]``.

    Works elementwise on scalars and arrays.  Angles already inside the
    interval are returned bit-unchanged, so wrapping only perturbs headings
    that have actually wound past ±π (where the perturbation is the point).
    """
    angle = np.asarray(angle, dtype=np.float64)
    two_pi = 2.0 * np.pi
    wrapped = np.pi - np.remainder(np.pi - angle, two_pi)
    return np.where((angle > np.pi) | (angle <= -np.pi), wrapped, angle)


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle ``[x0, x1] x [y0, y1]`` (an obstacle footprint)."""

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if self.x1 <= self.x0 or self.y1 <= self.y0:
            raise ValueError(f"degenerate rectangle {self}")

    def contains(self, x: float, y: float, margin: float = 0.0) -> bool:
        """Whether the point lies inside the rectangle grown by ``margin``."""
        return (
            self.x0 - margin <= x <= self.x1 + margin
            and self.y0 - margin <= y <= self.y1 + margin
        )

    def ray_intersection(
        self, ox: float, oy: float, dx: float, dy: float
    ) -> Optional[float]:
        """Distance along the ray to the rectangle, or None if it misses.

        Standard slab method; only intersections in front of the origin
        (positive distance) count.
        """
        t_min, t_max = -np.inf, np.inf
        for origin, direction, lo, hi in (
            (ox, dx, self.x0, self.x1),
            (oy, dy, self.y0, self.y1),
        ):
            if abs(direction) < 1e-12:
                if origin < lo or origin > hi:
                    return None
                continue
            t1 = (lo - origin) / direction
            t2 = (hi - origin) / direction
            if t1 > t2:
                t1, t2 = t2, t1
            t_min = max(t_min, t1)
            t_max = min(t_max, t2)
            if t_min > t_max:
                return None
        if t_max < 0:
            return None
        return float(max(t_min, 0.0))


class CorridorWorld:
    """An indoor floor plan: outer boundary plus rectangular obstacles."""

    def __init__(
        self,
        length: float,
        width: float,
        obstacles: List[Rect],
        start_pose: Tuple[float, float, float],
        name: str = "corridor",
    ) -> None:
        if length <= 0 or width <= 0:
            raise ValueError("world length and width must be positive")
        self.length = length
        self.width = width
        self.obstacles = list(obstacles)
        self.start_pose = start_pose
        self.name = name
        # Rect bounds as (R,) arrays so the batched queries can broadcast over
        # all obstacles at once instead of looping Rect objects per ray.
        self._rect_x0 = np.array([r.x0 for r in self.obstacles], dtype=np.float64)
        self._rect_y0 = np.array([r.y0 for r in self.obstacles], dtype=np.float64)
        self._rect_x1 = np.array([r.x1 for r in self.obstacles], dtype=np.float64)
        self._rect_y1 = np.array([r.y1 for r in self.obstacles], dtype=np.float64)
        sx, sy, _ = start_pose
        if not self.is_free(sx, sy, margin=0.0):
            raise ValueError(f"start pose {start_pose} is inside an obstacle or wall")

    # ------------------------------------------------------------------ #
    # Occupancy queries
    # ------------------------------------------------------------------ #
    def in_bounds(self, x: float, y: float, margin: float = 0.0) -> bool:
        """Whether a point is inside the outer boundary (shrunk by ``margin``)."""
        return margin <= x <= self.length - margin and margin <= y <= self.width - margin

    def is_free(self, x: float, y: float, margin: float = 0.0) -> bool:
        """Whether a point (with clearance ``margin``) is collision-free."""
        if not self.in_bounds(x, y, margin):
            return False
        return not any(rect.contains(x, y, margin) for rect in self.obstacles)

    def free_mask(self, xs: np.ndarray, ys: np.ndarray, margin: float = 0.0) -> np.ndarray:
        """Vectorized :meth:`is_free`: a boolean array over point arrays."""
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        free = (
            (margin <= xs)
            & (xs <= self.length - margin)
            & (margin <= ys)
            & (ys <= self.width - margin)
        )
        if self.obstacles:
            px, py = xs[..., None], ys[..., None]
            inside = (
                (self._rect_x0 - margin <= px)
                & (px <= self._rect_x1 + margin)
                & (self._rect_y0 - margin <= py)
                & (py <= self._rect_y1 + margin)
            )
            free &= ~inside.any(axis=-1)
        return free

    def clearance(self, x: float, y: float, num_rays: int = 16, max_range: float = 10.0) -> float:
        """Approximate distance to the nearest surface, by radial ray casting."""
        angles = _radial_fan(num_rays)
        distances = [self.ray_distance(x, y, a, max_range) for a in angles]
        return float(min(distances))

    def clearances(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        num_rays: int = 16,
        max_range: float = 10.0,
    ) -> np.ndarray:
        """Vectorized :meth:`clearance` over point arrays (bit-identical)."""
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        angles = _radial_fan(num_rays)
        distances = self.ray_distances(xs[..., None], ys[..., None], angles, max_range)
        return np.min(distances, axis=-1)

    # ------------------------------------------------------------------ #
    # Ray casting
    # ------------------------------------------------------------------ #
    def ray_distance(self, x: float, y: float, angle: float, max_range: float = 30.0) -> float:
        """Distance from (x, y) along ``angle`` to the first surface."""
        dx, dy = float(np.cos(angle)), float(np.sin(angle))
        best = self._boundary_distance(x, y, dx, dy)
        for rect in self.obstacles:
            hit = rect.ray_intersection(x, y, dx, dy)
            if hit is not None and hit < best:
                best = hit
        return float(min(best, max_range))

    def ray_distances(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        angles: np.ndarray,
        max_range: float = 30.0,
    ) -> np.ndarray:
        """Vectorized :meth:`ray_distance` over arrays of origins and angles.

        Inputs broadcast against each other; the result has the broadcast
        shape.  One numpy pass handles every ray against every obstacle slab
        and the boundary planes, producing results bit-identical to the
        scalar path: the per-element arithmetic (subtract, divide, min, max,
        compare) is IEEE-exact and performed in the same order.
        """
        xs, ys, angles = np.broadcast_arrays(
            np.asarray(xs, dtype=np.float64),
            np.asarray(ys, dtype=np.float64),
            np.asarray(angles, dtype=np.float64),
        )
        dx = np.cos(angles)
        dy = np.sin(angles)
        best = self._boundary_distances(xs, ys, dx, dy)
        if self.obstacles:
            ox, oy = xs[..., None], ys[..., None]
            rdx, rdy = dx[..., None], dy[..., None]
            # Slab method with masks.  Divisions run for every lane (the
            # degenerate ones produce inf/nan under errstate) and np.where
            # then substitutes the open slab (-inf, +inf) for axis-parallel
            # rays, exactly as the scalar code skips those axes.
            with np.errstate(divide="ignore", invalid="ignore"):
                t1x = (self._rect_x0 - ox) / rdx
                t2x = (self._rect_x1 - ox) / rdx
                t1y = (self._rect_y0 - oy) / rdy
                t2y = (self._rect_y1 - oy) / rdy
            deg_x = np.abs(rdx) < _DIR_EPS
            deg_y = np.abs(rdy) < _DIR_EPS
            lo_x = np.where(deg_x, -np.inf, np.minimum(t1x, t2x))
            hi_x = np.where(deg_x, np.inf, np.maximum(t1x, t2x))
            lo_y = np.where(deg_y, -np.inf, np.minimum(t1y, t2y))
            hi_y = np.where(deg_y, np.inf, np.maximum(t1y, t2y))
            t_min = np.maximum(lo_x, lo_y)
            t_max = np.minimum(hi_x, hi_y)
            miss = (
                (deg_x & ((ox < self._rect_x0) | (ox > self._rect_x1)))
                | (deg_y & ((oy < self._rect_y0) | (oy > self._rect_y1)))
                | (t_min > t_max)
                | (t_max < 0)
            )
            hits = np.where(miss, np.inf, np.maximum(t_min, 0.0))
            best = np.minimum(best, np.min(hits, axis=-1))
        return np.minimum(best, max_range)

    def _boundary_distances(
        self, xs: np.ndarray, ys: np.ndarray, dx: np.ndarray, dy: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`_boundary_distance` over ray arrays."""
        with np.errstate(divide="ignore", invalid="ignore"):
            cx = np.where(
                dx > _DIR_EPS,
                (self.length - xs) / dx,
                np.where(dx < -_DIR_EPS, -xs / dx, np.inf),
            )
            cy = np.where(
                dy > _DIR_EPS,
                (self.width - ys) / dy,
                np.where(dy < -_DIR_EPS, -ys / dy, np.inf),
            )
        # The scalar code drops negative candidates; inf stands in for "no
        # candidate" so the final minimum matches min(positive) exactly.
        cx = np.where(cx >= 0, cx, np.inf)
        cy = np.where(cy >= 0, cy, np.inf)
        return np.minimum(cx, cy)

    def _boundary_distance(self, x: float, y: float, dx: float, dy: float) -> float:
        """Distance to the outer walls along a ray starting inside the world."""
        candidates = []
        if dx > 1e-12:
            candidates.append((self.length - x) / dx)
        elif dx < -1e-12:
            candidates.append(-x / dx)
        if dy > 1e-12:
            candidates.append((self.width - y) / dy)
        elif dy < -1e-12:
            candidates.append(-y / dy)
        positive = [c for c in candidates if c >= 0]
        return float(min(positive)) if positive else float("inf")


def indoor_long(name: str = "indoor-long") -> CorridorWorld:
    """A long straight corridor with sparse columns (the easier map).

    Analogue of PEDRA's ``indoor-long``: the fault-free policy can fly far,
    so there is headroom for faults to reduce the safe flight distance.
    """
    obstacles = [
        Rect(12.0, 0.0, 13.0, 2.2),
        Rect(20.0, 3.8, 21.0, 6.0),
        Rect(30.0, 0.0, 31.0, 2.5),
        Rect(38.0, 3.5, 39.0, 6.0),
        Rect(48.0, 0.0, 49.0, 2.2),
        Rect(56.0, 3.8, 57.0, 6.0),
        Rect(66.0, 0.0, 67.0, 2.5),
        Rect(74.0, 3.5, 75.0, 6.0),
        Rect(84.0, 0.0, 85.0, 2.2),
        Rect(92.0, 3.8, 93.0, 6.0),
    ]
    return CorridorWorld(
        length=100.0,
        width=6.0,
        obstacles=obstacles,
        start_pose=(2.0, 3.0, 0.0),
        name=name,
    )


def indoor_vanleer(name: str = "indoor-vanleer") -> CorridorWorld:
    """A shorter, more cluttered corridor with staggered obstacles (the harder map).

    Obstacles alternate between the bottom and top halves of the corridor
    every seven metres, so the drone has to weave continuously instead of
    flying a straight line — the map is denser than ``indoor-long`` but every
    gap is wide enough for a competent policy to thread.
    """
    obstacles = [
        Rect(9.0, 0.0, 10.0, 2.6),
        Rect(16.0, 3.4, 17.0, 6.0),
        Rect(23.0, 0.0, 24.0, 2.6),
        Rect(30.0, 3.4, 31.0, 6.0),
        Rect(37.0, 0.0, 38.0, 2.6),
        Rect(44.0, 3.4, 45.0, 6.0),
        Rect(51.0, 0.0, 52.0, 2.6),
        Rect(58.0, 3.4, 59.0, 6.0),
        Rect(65.0, 0.0, 66.0, 2.6),
    ]
    return CorridorWorld(
        length=70.0,
        width=6.0,
        obstacles=obstacles,
        start_pose=(2.0, 3.0, 0.0),
        name=name,
    )
