"""Perception-based 25-way action space.

The paper's drone policy selects among 25 actions derived from the camera's
field of view (Sec. 4.2).  Here each action is a (yaw offset, forward step)
pair: 25 yaw offsets spread across the field of view, each followed by a
fixed forward translation.  Action 12 (the centre) flies straight ahead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["ActionSpace25"]


@dataclass(frozen=True)
class ActionSpace25:
    """Discrete action set of 25 yaw-offset / forward-step commands."""

    n_actions: int = 25
    max_yaw_degrees: float = 60.0
    forward_step: float = 1.0

    def __post_init__(self) -> None:
        if self.n_actions < 2:
            raise ValueError("need at least 2 actions")
        if self.max_yaw_degrees <= 0 or self.max_yaw_degrees >= 180:
            raise ValueError(f"max_yaw_degrees must be in (0, 180), got {self.max_yaw_degrees}")
        if self.forward_step <= 0:
            raise ValueError(f"forward_step must be positive, got {self.forward_step}")

    @property
    def yaw_offsets(self) -> np.ndarray:
        """Yaw offset (radians) of every action, left-to-right."""
        return np.deg2rad(
            np.linspace(self.max_yaw_degrees, -self.max_yaw_degrees, self.n_actions)
        )

    @property
    def straight_action(self) -> int:
        """Index of the action that flies straight ahead."""
        return self.n_actions // 2

    def command(self, action: int) -> Tuple[float, float]:
        """Return (yaw_offset_radians, forward_distance) for an action index."""
        if not 0 <= action < self.n_actions:
            raise ValueError(f"action {action} outside [0, {self.n_actions})")
        return float(self.yaw_offsets[action]), self.forward_step
