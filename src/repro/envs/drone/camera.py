"""Synthetic monocular camera.

PEDRA feeds the policy a front-facing monocular image.  Here the camera
ray-casts against the 2-D floor plan across its horizontal field of view to
obtain a depth profile, then expands it into an (1, H, W) intensity image:
nearby surfaces appear bright and tall (filling more vertical extent), far
surfaces dim and short, with a floor/ceiling gradient.  The result is an
image-shaped tensor whose structure a small CNN can exploit for obstacle
avoidance — the same role the photorealistic render plays in the paper.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.envs.drone.world import CorridorWorld

__all__ = ["DepthCamera"]


class DepthCamera:
    """Ray-casting depth camera producing (1, height, width) images."""

    def __init__(
        self,
        width: int = 32,
        height: int = 32,
        fov_degrees: float = 90.0,
        max_range: float = 20.0,
    ) -> None:
        if width <= 1 or height <= 1:
            raise ValueError("camera width and height must be greater than 1")
        if not 0.0 < fov_degrees < 180.0:
            raise ValueError(f"fov_degrees must be in (0, 180), got {fov_degrees}")
        if max_range <= 0:
            raise ValueError(f"max_range must be positive, got {max_range}")
        self.width = width
        self.height = height
        self.fov = np.deg2rad(fov_degrees)
        self.max_range = max_range
        # Pose-independent geometry, cached once: the batched renderer runs
        # every simulation step, so rebuilding these tiny arrays there would
        # dominate its cost at small image sizes.
        self._offsets = np.linspace(self.fov / 2.0, -self.fov / 2.0, self.width)
        rows = np.arange(self.height, dtype=np.float64)
        centre = (self.height - 1) / 2.0
        self._vertical = np.abs(rows - centre) / max(centre, 1.0)  # (H,)
        self._background = 0.1 * (1.0 - self._vertical)  # (H,)

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        """Shape of rendered images: (channels, height, width)."""
        return (1, self.height, self.width)

    def depth_profile(
        self, world: CorridorWorld, x: float, y: float, heading: float
    ) -> np.ndarray:
        """Per-column distance to the nearest surface, left-to-right."""
        angles = heading + self._offsets
        return np.array(
            [world.ray_distance(x, y, a, self.max_range) for a in angles],
            dtype=np.float64,
        )

    def render(
        self, world: CorridorWorld, x: float, y: float, heading: float
    ) -> np.ndarray:
        """Render the (1, H, W) intensity image for a drone pose.

        Intensity encodes inverse depth (closer = brighter).  Each column is
        filled from the vertical centre outward proportionally to the
        apparent height of the surface, so near obstacles occupy most of the
        column while distant walls leave visible floor/ceiling bands.
        """
        depth = self.depth_profile(world, x, y, heading)
        inverse = 1.0 - np.clip(depth / self.max_range, 0.0, 1.0)

        image = np.zeros((self.height, self.width), dtype=np.float64)
        # Distance of each row from the vertical centre, normalized to [0, 1].
        vertical = self._vertical
        for col in range(self.width):
            # Apparent half-height of the surface in this column: near
            # surfaces (inverse ~ 1) fill the column, far ones only the middle.
            apparent = 0.15 + 0.85 * inverse[col]
            filled = vertical <= apparent
            image[filled, col] = inverse[col]
            # Floor/ceiling gradient outside the surface extent gives the
            # network a weak horizon cue, like a rendered corridor image.
            image[~filled, col] = 0.1 * (1.0 - vertical[~filled])
        return image[None, :, :]

    def depth_profiles(
        self,
        world: CorridorWorld,
        xs: np.ndarray,
        ys: np.ndarray,
        headings: np.ndarray,
    ) -> np.ndarray:
        """Vectorized :meth:`depth_profile`: a (B, width) distance array."""
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        headings = np.asarray(headings, dtype=np.float64)
        angles = headings[:, None] + self._offsets
        return world.ray_distances(xs[:, None], ys[:, None], angles, self.max_range)

    def render_batch(
        self,
        world: CorridorWorld,
        xs: np.ndarray,
        ys: np.ndarray,
        headings: np.ndarray,
    ) -> np.ndarray:
        """Vectorized :meth:`render`: a (B, 1, H, W) image stack.

        One broadcast ``np.where`` replaces the per-column Python loop; the
        per-pixel arithmetic is identical to the scalar renderer, so images
        match :meth:`render` bit-for-bit.
        """
        return self.images_from_depths(self.depth_profiles(world, xs, ys, headings))

    def images_from_depths(self, depths: np.ndarray) -> np.ndarray:
        """Expand precomputed (B, width) depth profiles into (B, 1, H, W) images.

        Split out of :meth:`render_batch` so callers that already cast the
        camera rays (the batched environment fuses them with its clearance
        rays) can reuse the profile without a second ray-casting pass.
        """
        inverse = 1.0 - np.minimum(np.maximum(depths / self.max_range, 0.0), 1.0)
        vertical = self._vertical  # (H,)
        apparent = 0.15 + 0.85 * inverse  # (B, W)
        filled = vertical[None, :, None] <= apparent[:, None, :]  # (B, H, W)
        images = np.where(
            filled, inverse[:, None, :], self._background[None, :, None]
        )
        return images[:, None, :, :]
