"""Drone autonomous-navigation environment.

The drone starts at a fixed pose, observes a monocular camera image and picks
one of 25 heading/step actions.  There is no destination: the task is to fly
as far as possible without colliding (Sec. 4.2).  The reward encourages
staying away from obstacles, and ``info["flight_distance"]`` carries the
cumulative safe-flight distance used for the Mean Safe Flight (MSF) metric.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.envs.base import Environment
from repro.envs.drone.actions import ActionSpace25
from repro.envs.drone.camera import DepthCamera
from repro.envs.drone.world import CorridorWorld, indoor_long, indoor_vanleer, wrap_angle

__all__ = ["DroneNavEnv", "make_drone_env"]


class DroneNavEnv(Environment):
    """Episodic drone corridor-navigation MDP with image states.

    Parameters
    ----------
    world:
        Floor-plan geometry to fly through.
    camera:
        Monocular depth camera producing the state images.
    action_space:
        The 25-way heading/step action set.
    collision_radius:
        Clearance below which the drone is considered to have collided.
    clearance_reward_scale:
        Weight of the stay-away-from-obstacles reward shaping term.
    collision_penalty:
        Reward on the terminal collision step.
    max_flight_distance:
        Episodes also end (successfully) once this distance is covered,
        bounding episode length on the easy map.
    stall_window, stall_distance:
        If the drone's net displacement over the last ``stall_window`` steps
        falls below ``stall_distance`` metres, the episode ends as a failed
        flight.  This terminates degenerate circling/hovering behaviours
        (which a corrupted policy often produces) instead of letting them
        accumulate unbounded "safe" flight distance.
    """

    def __init__(
        self,
        world: Optional[CorridorWorld] = None,
        camera: Optional[DepthCamera] = None,
        action_space: Optional[ActionSpace25] = None,
        collision_radius: float = 0.4,
        clearance_reward_scale: float = 0.5,
        collision_penalty: float = -2.0,
        max_flight_distance: float = 200.0,
        substeps: int = 4,
        stall_window: int = 15,
        stall_distance: float = 2.0,
    ) -> None:
        self.world = world or indoor_long()
        self.camera = camera or DepthCamera()
        self.actions = action_space or ActionSpace25()
        self.n_actions = self.actions.n_actions
        if collision_radius <= 0:
            raise ValueError(f"collision_radius must be positive, got {collision_radius}")
        if substeps < 1:
            raise ValueError(f"substeps must be >= 1, got {substeps}")
        self.collision_radius = collision_radius
        self.clearance_reward_scale = clearance_reward_scale
        self.collision_penalty = collision_penalty
        self.max_flight_distance = max_flight_distance
        self.substeps = substeps
        if stall_window < 2:
            raise ValueError(f"stall_window must be >= 2, got {stall_window}")
        self.stall_window = stall_window
        self.stall_distance = stall_distance
        self._x, self._y, self._heading = self.world.start_pose
        self._flight_distance = 0.0
        self._recent_positions: list = []

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #
    @property
    def pose(self) -> Tuple[float, float, float]:
        """Current (x, y, heading) of the drone."""
        return self._x, self._y, self._heading

    @property
    def flight_distance(self) -> float:
        """Distance flown so far this episode."""
        return self._flight_distance

    @property
    def state_shape(self) -> Tuple[int, int, int]:
        return self.camera.image_shape

    def _observe(self) -> np.ndarray:
        return self.camera.render(self.world, self._x, self._y, self._heading)

    # ------------------------------------------------------------------ #
    # Episode dynamics
    # ------------------------------------------------------------------ #
    def reset(self) -> np.ndarray:
        self._x, self._y, self._heading = self.world.start_pose
        self._flight_distance = 0.0
        self._recent_positions = [(self._x, self._y, 0.0)]
        return self._observe()

    def _is_stalled(self) -> bool:
        """True when the drone has stopped making progress (circling/hovering).

        When a stall is detected the reported flight distance is rolled back
        to the point where progress stopped, so loitering does not inflate
        the Mean Safe Flight metric.
        """
        self._recent_positions.append((self._x, self._y, self._flight_distance))
        if len(self._recent_positions) <= self.stall_window:
            return False
        self._recent_positions = self._recent_positions[-(self.stall_window + 1) :]
        old_x, old_y, old_distance = self._recent_positions[0]
        displacement = float(np.hypot(self._x - old_x, self._y - old_y))
        if displacement < self.stall_distance:
            self._flight_distance = old_distance
            return True
        return False

    def step(self, action: int) -> Tuple[np.ndarray, float, bool, Dict[str, float]]:
        self._check_action(action)
        yaw_offset, forward = self.actions.command(action)
        # Keep the heading wrapped into (-pi, pi] so long episodes cannot
        # accumulate an unbounded angle (which slowly degrades trig accuracy).
        self._heading = float(wrap_angle(self._heading + yaw_offset))

        # Advance in sub-steps so the drone cannot tunnel through thin obstacles.
        step_length = forward / self.substeps
        collided = False
        for _ in range(self.substeps):
            new_x = self._x + step_length * float(np.cos(self._heading))
            new_y = self._y + step_length * float(np.sin(self._heading))
            if not self.world.is_free(new_x, new_y, margin=self.collision_radius):
                collided = True
                break
            self._x, self._y = new_x, new_y
            self._flight_distance += step_length

        observation = self._observe()
        info = {"flight_distance": self._flight_distance, "success": False}
        if collided:
            return observation, self.collision_penalty, True, info
        if self._is_stalled():
            # Circling or hovering in place: end the flight as a failure so
            # degenerate policies cannot accumulate unbounded safe distance.
            info["flight_distance"] = self._flight_distance
            return observation, self.collision_penalty / 2.0, True, info

        clearance = self.world.clearance(self._x, self._y)
        # Reward forward progress and distance from the nearest surface.
        reward = 0.1 + self.clearance_reward_scale * min(clearance, 3.0) / 3.0
        done = self._flight_distance >= self.max_flight_distance
        if done:
            info["success"] = True
        return observation, reward, done, info

    def batched(self, n_replicas: int) -> "BatchedEnv":
        """A :class:`DroneNavEnvBatch` stepping ``n_replicas`` copies of this
        environment in lockstep with replica-axis numpy geometry."""
        from repro.envs.drone.batch import DroneNavEnvBatch

        return DroneNavEnvBatch(self, n_replicas)


def make_drone_env(
    environment: str = "indoor-long",
    image_size: int = 32,
    **kwargs,
) -> DroneNavEnv:
    """Build a drone environment by name (``"indoor-long"`` or ``"indoor-vanleer"``)."""
    builders = {"indoor-long": indoor_long, "indoor-vanleer": indoor_vanleer}
    if environment not in builders:
        raise ValueError(
            f"unknown environment {environment!r}; choose from {sorted(builders)}"
        )
    camera = DepthCamera(width=image_size, height=image_size)
    return DroneNavEnv(world=builders[environment](), camera=camera, **kwargs)
