"""Navigation environments.

Two template problems from the paper:

* :mod:`repro.envs.gridworld` — the Grid World navigation task of Sec. 4.1
  (Fig. 1), with the three obstacle-density presets.
* :mod:`repro.envs.drone` — a procedural indoor-corridor drone navigation
  simulator standing in for the PEDRA / Unreal Engine environments of
  Sec. 4.2 (see DESIGN.md for the substitution rationale).
"""

from repro.envs.base import Environment
from repro.envs.batched import BatchedEnv, EnvPool
from repro.envs.gridworld import (
    GridWorld,
    GridWorldBatch,
    GridLayout,
    LOW_DENSITY,
    MIDDLE_DENSITY,
    HIGH_DENSITY,
    make_gridworld,
)
from repro.envs.drone import DroneNavEnv, DroneNavEnvBatch, make_drone_env

__all__ = [
    "Environment",
    "BatchedEnv",
    "EnvPool",
    "GridWorld",
    "GridWorldBatch",
    "GridLayout",
    "LOW_DENSITY",
    "MIDDLE_DENSITY",
    "HIGH_DENSITY",
    "make_gridworld",
    "DroneNavEnv",
    "DroneNavEnvBatch",
    "make_drone_env",
]
