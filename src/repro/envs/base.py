"""Minimal episodic environment interface.

A deliberately small protocol (reset / step) compatible with the classic gym
API shape, so agents and trainers can be tested against simple fakes.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

__all__ = ["Environment"]


class Environment:
    """Base class for episodic environments.

    Subclasses must implement :meth:`reset` and :meth:`step`.  ``info``
    dictionaries returned by :meth:`step` may carry a boolean ``"success"``
    entry (goal reached) and task-specific metrics such as
    ``"flight_distance"``.
    """

    #: Number of discrete actions.
    n_actions: int

    def reset(self) -> Any:
        """Start a new episode and return the initial state."""
        raise NotImplementedError

    def step(self, action: int) -> Tuple[Any, float, bool, Dict[str, Any]]:
        """Apply ``action``; return ``(next_state, reward, done, info)``."""
        raise NotImplementedError

    def _check_action(self, action: int) -> None:
        if not 0 <= action < self.n_actions:
            raise ValueError(f"action {action} outside [0, {self.n_actions})")
