"""Grid World navigation environment (paper Sec. 4.1, Fig. 1).

A 10x10 grid in which each cell is one of ``source``, ``goal``, ``hell``
(obstacle) or ``free``.  The agent starts at the source and must reach the
goal while avoiding hell cells.  Rewards are +1 (goal), -1 (hell) and 0
(free); reaching goal or hell ends the episode.  Three layouts with low,
middle and high obstacle density mirror Fig. 1a-c (the exact obstacle cells
of the figure are not published, so the layouts here are representative
placements at matching densities with a guaranteed path to the goal).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.envs.base import Environment
from repro.envs.batched import BatchedEnv

__all__ = [
    "GridLayout",
    "GridWorld",
    "GridWorldBatch",
    "LOW_DENSITY",
    "MIDDLE_DENSITY",
    "HIGH_DENSITY",
    "make_gridworld",
]

#: Cell symbols used in layout maps.
SOURCE, GOAL, HELL, FREE = "S", "G", "#", "."

#: Action indices: move-up, move-down, move-left, move-right (|A| = 4).
ACTION_DELTAS: Dict[int, Tuple[int, int]] = {
    0: (-1, 0),  # up
    1: (1, 0),  # down
    2: (0, -1),  # left
    3: (0, 1),  # right
}
ACTION_NAMES = ("up", "down", "left", "right")


@dataclass(frozen=True)
class GridLayout:
    """An immutable Grid World map."""

    name: str
    rows: Tuple[str, ...]

    def __post_init__(self) -> None:
        widths = {len(row) for row in self.rows}
        if len(widths) != 1:
            raise ValueError(f"layout {self.name!r} has ragged rows")
        flat = "".join(self.rows)
        if flat.count(SOURCE) != 1:
            raise ValueError(f"layout {self.name!r} must have exactly one source cell")
        if flat.count(GOAL) != 1:
            raise ValueError(f"layout {self.name!r} must have exactly one goal cell")
        invalid = set(flat) - {SOURCE, GOAL, HELL, FREE}
        if invalid:
            raise ValueError(f"layout {self.name!r} has invalid symbols {invalid}")

    @property
    def size(self) -> Tuple[int, int]:
        return len(self.rows), len(self.rows[0])

    @property
    def n_cells(self) -> int:
        height, width = self.size
        return height * width

    def cell(self, row: int, col: int) -> str:
        return self.rows[row][col]

    def find(self, symbol: str) -> Tuple[int, int]:
        """Coordinates of the first cell holding ``symbol``."""
        for r, row in enumerate(self.rows):
            c = row.find(symbol)
            if c >= 0:
                return r, c
        raise ValueError(f"symbol {symbol!r} not present in layout {self.name!r}")

    def obstacle_density(self) -> float:
        """Fraction of cells that are hell (obstacles)."""
        flat = "".join(self.rows)
        return flat.count(HELL) / len(flat)

    def obstacle_cells(self) -> List[Tuple[int, int]]:
        return [
            (r, c)
            for r, row in enumerate(self.rows)
            for c, symbol in enumerate(row)
            if symbol == HELL
        ]


#: Fig. 1a — low obstacle density (~8%).
LOW_DENSITY = GridLayout(
    name="low",
    rows=(
        "S.........",
        "..........",
        "...#......",
        "......#...",
        "..#.......",
        ".......#..",
        "...#......",
        ".....#....",
        "..#.......",
        ".........G",
    ),
)

#: Fig. 1b — middle obstacle density (~16%); the layout used for the paper's
#: reported Grid World numbers.
MIDDLE_DENSITY = GridLayout(
    name="middle",
    rows=(
        "S.........",
        "..#...#...",
        "....#....#",
        ".#...#....",
        "...#....#.",
        ".#...#....",
        "....#...#.",
        ".#....#...",
        "...#....#.",
        ".....#...G",
    ),
)

#: Fig. 1c — high obstacle density (~24%).
HIGH_DENSITY = GridLayout(
    name="high",
    rows=(
        "S..#....#.",
        "..#...#...",
        ".#..#....#",
        "...#..#...",
        ".#...#...#",
        "..#....#..",
        "#...#.....",
        "..#...#.#.",
        ".#..#.....",
        "...#..#..G",
    ),
)

_LAYOUTS = {layout.name: layout for layout in (LOW_DENSITY, MIDDLE_DENSITY, HIGH_DENSITY)}


class GridWorld(Environment):
    """Episodic Grid World MDP.

    States are flattened cell indices ``row * width + col`` (``|S| = n**2``);
    actions are the four cardinal moves.  Moving off the grid leaves the
    agent in place (reward 0).
    """

    def __init__(
        self,
        layout: GridLayout = MIDDLE_DENSITY,
        goal_reward: float = 1.0,
        hell_reward: float = -1.0,
        free_reward: float = 0.0,
        bump_reward: float = 0.0,
        random_start: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.layout = layout
        self.goal_reward = goal_reward
        self.hell_reward = hell_reward
        self.free_reward = free_reward
        #: Optional penalty for bumping into the boundary (the agent stays in
        #: place).  The paper's reward is {+1 goal, -1 hell, 0 free}; the NN
        #: training preset uses a small bump/step penalty to discourage
        #: degenerate wall-hugging policies under function approximation
        #: (see repro.experiments.config).
        self.bump_reward = bump_reward
        #: With ``random_start=True`` each episode begins at a random free
        #: cell instead of the source (exploring starts).  Used only while
        #: *training* the NN-based policy, whose function approximation needs
        #: broader state coverage than the tabular agent; evaluation always
        #: starts from the source cell.
        self.random_start = random_start
        self.rng = rng or np.random.default_rng()
        self.height, self.width = layout.size
        self.n_states = layout.n_cells
        self.n_actions = len(ACTION_DELTAS)
        self._source = layout.find(SOURCE)
        self._goal = layout.find(GOAL)
        self._position = self._source

    # ------------------------------------------------------------------ #
    # State helpers
    # ------------------------------------------------------------------ #
    def state_index(self, position: Tuple[int, int]) -> int:
        row, col = position
        return row * self.width + col

    def position_of(self, state: int) -> Tuple[int, int]:
        if not 0 <= state < self.n_states:
            raise ValueError(f"state {state} outside [0, {self.n_states})")
        return divmod(state, self.width)

    def one_hot(self, state: int) -> np.ndarray:
        """One-hot feature encoding used by the NN-based policy."""
        encoded = np.zeros(self.n_states, dtype=np.float64)
        encoded[state] = 1.0
        return encoded

    @property
    def goal_state(self) -> int:
        return self.state_index(self._goal)

    @property
    def source_state(self) -> int:
        return self.state_index(self._source)

    # ------------------------------------------------------------------ #
    # Episode dynamics
    # ------------------------------------------------------------------ #
    def reset(self) -> int:
        if self.random_start:
            free_cells = [
                (r, c)
                for r in range(self.height)
                for c in range(self.width)
                if self.layout.cell(r, c) in (FREE, SOURCE)
            ]
            self._position = free_cells[int(self.rng.integers(len(free_cells)))]
        else:
            self._position = self._source
        return self.state_index(self._position)

    def step(self, action: int) -> Tuple[int, float, bool, Dict[str, bool]]:
        self._check_action(action)
        d_row, d_col = ACTION_DELTAS[action]
        row, col = self._position
        new_row, new_col = row + d_row, col + d_col
        bumped = False
        if not (0 <= new_row < self.height and 0 <= new_col < self.width):
            # Bumping into the boundary keeps the agent in place.
            new_row, new_col = row, col
            bumped = True
        self._position = (new_row, new_col)
        cell = self.layout.cell(new_row, new_col)
        if cell == GOAL:
            return self.state_index(self._position), self.goal_reward, True, {"success": True}
        if cell == HELL:
            return self.state_index(self._position), self.hell_reward, True, {"success": False}
        reward = self.bump_reward if bumped else self.free_reward
        return self.state_index(self._position), reward, False, {"success": False}

    # ------------------------------------------------------------------ #
    # Batched stepping
    # ------------------------------------------------------------------ #
    def batched(self, n_replicas: int) -> "GridWorldBatch":
        """A vectorized batch of ``n_replicas`` independent copies of this env.

        The batch shares this environment's layout and reward structure and
        steps all replicas through vectorized integer math; each replica's
        episode is bit-identical to stepping this environment scalar-ly with
        the same actions.  Only deterministic (source-cell) starts are
        supported — evaluation episodes always start from the source, and a
        ``random_start`` environment would need per-replica RNG plumbing
        that batched campaigns deliberately avoid.
        """
        if self.random_start:
            raise ValueError("batched stepping supports deterministic starts only")
        return GridWorldBatch(self, n_replicas)

    # ------------------------------------------------------------------ #
    # Analysis helpers
    # ------------------------------------------------------------------ #
    def shortest_path_length(self) -> int:
        """BFS shortest source->goal path length avoiding hell cells."""
        from collections import deque

        start = self._source
        goal = self._goal
        visited = {start}
        queue = deque([(start, 0)])
        while queue:
            (row, col), dist = queue.popleft()
            if (row, col) == goal:
                return dist
            for d_row, d_col in ACTION_DELTAS.values():
                nxt = (row + d_row, col + d_col)
                if not (0 <= nxt[0] < self.height and 0 <= nxt[1] < self.width):
                    continue
                if nxt in visited or self.layout.cell(*nxt) == HELL:
                    continue
                visited.add(nxt)
                queue.append((nxt, dist + 1))
        raise ValueError(f"layout {self.layout.name!r} has no path from source to goal")

    def render(self, agent_state: Optional[int] = None) -> str:
        """ASCII rendering with the agent marked ``A``."""
        position = self._position if agent_state is None else self.position_of(agent_state)
        lines = []
        for r, row in enumerate(self.layout.rows):
            chars = list(row)
            if (r, None) is not None and position[0] == r:
                chars[position[1]] = "A"
            lines.append("".join(chars))
        return "\n".join(lines)


#: Cell-type codes used by the vectorized stepping kernel.
_CELL_FREE, _CELL_GOAL, _CELL_HELL = 0, 1, 2

#: Action deltas as arrays indexed by action, for vectorized stepping.
_DELTA_ROW = np.array([ACTION_DELTAS[a][0] for a in range(len(ACTION_DELTAS))], dtype=np.int64)
_DELTA_COL = np.array([ACTION_DELTAS[a][1] for a in range(len(ACTION_DELTAS))], dtype=np.int64)


class GridWorldBatch(BatchedEnv):
    """Vectorized lockstep stepping of B independent Grid World episodes.

    This is the Grid World's batched-stepping mode (built through
    :meth:`GridWorld.batched`): replica positions live in one integer
    array, and :meth:`step_many` resolves moves, boundary bumps, rewards
    and termination for every active replica with a handful of vectorized
    operations instead of B Python-level ``step`` calls.  The dynamics are
    purely integer/table lookups, so each replica's trajectory is exactly
    the scalar :meth:`GridWorld.step` trajectory for the same actions.
    """

    def __init__(self, env: GridWorld, n_replicas: int) -> None:
        if n_replicas <= 0:
            raise ValueError(f"n_replicas must be positive, got {n_replicas}")
        self.layout = env.layout
        self.n_actions = env.n_actions
        self.n_replicas = n_replicas
        self.height, self.width = env.height, env.width
        self._source_state = env.source_state
        self._goal_reward = env.goal_reward
        self._hell_reward = env.hell_reward
        self._free_reward = env.free_reward
        self._bump_reward = env.bump_reward
        cells = np.full(self.layout.n_cells, _CELL_FREE, dtype=np.int64)
        for r, row in enumerate(self.layout.rows):
            for c, symbol in enumerate(row):
                if symbol == GOAL:
                    cells[r * self.width + c] = _CELL_GOAL
                elif symbol == HELL:
                    cells[r * self.width + c] = _CELL_HELL
        self._cell_types = cells
        self._states = np.full(n_replicas, self._source_state, dtype=np.int64)

    def reset_all(self) -> List[int]:
        self._states[:] = self._source_state
        return [int(s) for s in self._states]

    def step_many(
        self, actions: Sequence[int], indices: Sequence[int]
    ) -> Tuple[List[int], np.ndarray, np.ndarray, List[Dict[str, bool]]]:
        actions = np.asarray(actions, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if actions.shape != indices.shape:
            raise ValueError("actions and indices must have the same shape")
        self._check_actions(actions)
        rows, cols = np.divmod(self._states[indices], self.width)
        new_rows = rows + _DELTA_ROW[actions]
        new_cols = cols + _DELTA_COL[actions]
        bumped = (
            (new_rows < 0)
            | (new_rows >= self.height)
            | (new_cols < 0)
            | (new_cols >= self.width)
        )
        new_rows = np.where(bumped, rows, new_rows)
        new_cols = np.where(bumped, cols, new_cols)
        states = new_rows * self.width + new_cols
        self._states[indices] = states

        cell = self._cell_types[states]
        rewards = np.where(
            cell == _CELL_GOAL,
            self._goal_reward,
            np.where(
                cell == _CELL_HELL,
                self._hell_reward,
                np.where(bumped, self._bump_reward, self._free_reward),
            ),
        ).astype(np.float64)
        dones = cell != _CELL_FREE
        infos = [{"success": bool(c == _CELL_GOAL)} for c in cell]
        return [int(s) for s in states], rewards, dones, infos


def make_gridworld(density: str = "middle", **kwargs) -> GridWorld:
    """Build a GridWorld by density name: ``"low"``, ``"middle"`` or ``"high"``."""
    if density not in _LAYOUTS:
        raise ValueError(f"unknown density {density!r}; choose from {sorted(_LAYOUTS)}")
    return GridWorld(layout=_LAYOUTS[density], **kwargs)
