"""Command-line entry point: run any figure campaign from the shell.

``python -m repro <figure>`` reproduces one paper figure (or the headline
summary); every subcommand, its flags and its help text are generated from
the declarative experiment registry (:mod:`repro.experiments.registry`), so
registering a new :class:`~repro.experiments.registry.ExperimentSpec` is all
it takes to extend the CLI::

    python -m repro list                               # enumerate the specs
    python -m repro fig2 --approach tabular --workers 4
    python -m repro fig5 --fast --batch-size 4
    python -m repro fig7 --fast --workers auto
    python -m repro fig10 --checkpoint-dir runs/fig10 --resume
    python -m repro summary --out-dir results/

The shared execution flags map one-to-one onto
:class:`repro.api.ExecutionConfig`: ``--workers`` selects the parallel
campaign engine and ``--batch-size`` the batched-vectorized engine (both
bit-identical to serial runs for the same seed, and freely combinable);
``--checkpoint-dir`` streams every campaign's trial outcomes to JSONL files
so an interrupted sweep can be restarted with ``--resume``.
``REPRO_SCALE``, ``REPRO_CAMPAIGN_REPS``, ``REPRO_CAMPAIGN_WORKERS`` and
``REPRO_CAMPAIGN_BATCH`` keep working as environment-level defaults.
With ``--out-dir`` each experiment writes its full
:class:`~repro.api.ExperimentArtifact` (result + provenance) as JSON.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.experiments.registry import (
    ParamSpec,
    figures,
    list_specs,
    specs_for_figure,
)

__all__ = ["main", "build_parser"]


# --------------------------------------------------------------------------- #
# Parser generation
# --------------------------------------------------------------------------- #
def _add_execution_flags(parser: argparse.ArgumentParser) -> None:
    """The shared engine/checkpoint/seed flags (one per ExecutionConfig knob)."""
    group = parser.add_argument_group("execution")
    group.add_argument(
        "--workers",
        type=lambda v: None if v == "" else v,
        default=None,
        metavar="N",
        help="campaign worker processes ('auto' = one per CPU; default: "
        "REPRO_CAMPAIGN_WORKERS or serial)",
    )
    group.add_argument(
        "--batch-size",
        default=None,
        metavar="B",
        help="trials evaluated per vectorized batch (default: "
        "REPRO_CAMPAIGN_BATCH or serial; trial functions without a "
        "vectorized implementation fall back to scalar execution)",
    )
    group.add_argument(
        "--checkpoint-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="stream per-campaign trial outcomes to JSONL files in DIR",
    )
    group.add_argument(
        "--resume",
        action="store_true",
        help="skip trials already recorded under --checkpoint-dir",
    )
    group.add_argument("--seed", type=int, default=0, help="campaign seed (default: 0)")
    group.add_argument(
        "--reps",
        default=None,
        metavar="N",
        help="campaign repetitions (default: config / REPRO_CAMPAIGN_REPS)",
    )
    group.add_argument(
        "--out-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="write each experiment's artifact (result + provenance) as JSON into DIR",
    )


def _flag_name(param: ParamSpec) -> str:
    return "--" + param.name.replace("_", "-")


def _add_param_flag(parser: argparse.ArgumentParser, param: ParamSpec) -> None:
    """Derive one argparse flag from a typed spec parameter."""
    help_text = (param.help or param.name).replace("%", "%%")
    if param.type is bool:
        if param.default:
            # bool-default-true parameters become --no-<name> switches.
            parser.add_argument(
                "--no-" + param.name.replace("_", "-"),
                dest=param.name,
                action="store_false",
                help=f"disable: {help_text}",
            )
        else:
            parser.add_argument(_flag_name(param), action="store_true", help=help_text)
        parser.set_defaults(**{param.name: param.default})
        return
    parser.add_argument(
        _flag_name(param),
        type=param.type,
        default=param.default,
        choices=param.choices,
        help=f"{help_text} (default: {param.default})",
    )


def _figure_params(figure: str) -> List[ParamSpec]:
    """Union of a figure's spec parameters (deduplicated by name).

    Two specs may share a parameter name as long as the flag they generate
    is the same (type, default, choices); help text may differ — the first
    registration wins.  Genuinely conflicting declarations are a
    programming error and fail the parser build.
    """
    merged: Dict[str, ParamSpec] = {}
    for spec in specs_for_figure(figure):
        for param in spec.params:
            existing = merged.get(param.name)
            if existing is None:
                merged[param.name] = param
            elif (existing.type, existing.default, existing.choices) != (
                param.type,
                param.default,
                param.choices,
            ):
                raise ValueError(
                    f"figure {figure!r}: specs disagree on parameter {param.name!r}"
                )
    return list(merged.values())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run a fault-injection figure campaign from the DAC'21 "
        "reproduction.  Subcommands are generated from the experiment "
        "registry; see 'python -m repro list'.",
    )
    subparsers = parser.add_subparsers(dest="figure", metavar="figure", required=True)
    # figure -> subparser, so flag-validation errors can report the usage of
    # the subcommand actually invoked instead of the top-level synopsis.
    parser.figure_parsers = {}

    subparsers.add_parser(
        "list",
        help="list every registered experiment spec and its parameters",
        description="Enumerate the declarative experiment registry.",
    )

    for figure in figures():
        specs = specs_for_figure(figure)
        summary = "; ".join(spec.description for spec in specs)
        sub = subparsers.add_parser(
            figure,
            # argparse %-interpolates help strings, so literal % (e.g. "+39%")
            # must be escaped.
            help=summary.replace("%", "%%"),
            description=f"Runs: {'; '.join(spec.name for spec in specs)}.",
        )
        _add_execution_flags(sub)
        for param in _figure_params(figure):
            _add_param_flag(sub, param)
        parser.figure_parsers[figure] = sub
    return parser


# --------------------------------------------------------------------------- #
# Command implementations
# --------------------------------------------------------------------------- #
def _render_listing() -> str:
    lines = ["Registered experiment specs:", ""]
    for spec in list_specs():
        engine = " [batched]" if spec.batched else ""
        lines.append(f"{spec.name}{engine}")
        lines.append(f"    {spec.description}")
        if spec.params:
            rendered = "; ".join(param.describe() for param in spec.params)
            lines.append(f"    params: {rendered}")
    lines.append("")
    lines.append(
        "Run a figure with 'python -m repro <figure>', or any single spec "
        "programmatically via repro.api.run(name)."
    )
    return "\n".join(lines)


def _execution_from_args(args, parser: argparse.ArgumentParser):
    from repro.api import ExecutionConfig

    try:
        return ExecutionConfig(
            seed=args.seed,
            repetitions=args.reps,
            workers=args.workers,
            batch_size=args.batch_size,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
        )
    except ValueError as exc:
        reporter = getattr(parser, "figure_parsers", {}).get(args.figure, parser)
        reporter.error(str(exc))


def _artifact_slug(title: str) -> str:
    return "".join(c if c.isalnum() else "_" for c in title).strip("_")


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.figure == "list":
        print(_render_listing())
        return 0

    from repro import api
    from repro.io.tables import render_table

    execution = _execution_from_args(args, parser)
    for spec in specs_for_figure(args.figure):
        params = {param.name: getattr(args, param.name) for param in spec.params}
        try:
            params = spec.resolve_params(params)
        except (TypeError, ValueError) as exc:
            parser.figure_parsers[args.figure].error(str(exc))
        artifact = api.run(spec, params, execution=execution)
        print()
        print(render_table(artifact.as_table()))
        if args.out_dir is not None:
            args.out_dir.mkdir(parents=True, exist_ok=True)
            artifact.to_json(args.out_dir / f"{_artifact_slug(artifact.title)}.json")
    return 0


if __name__ == "__main__":
    sys.exit(main())
