"""Command-line entry point: run any figure campaign from the shell.

``python -m repro <figure>`` reproduces one paper figure (or the headline
summary); every subcommand, its flags and its help text are generated from
the declarative experiment registry (:mod:`repro.experiments.registry`), so
registering a new :class:`~repro.experiments.registry.ExperimentSpec` is all
it takes to extend the CLI::

    python -m repro list                               # enumerate the specs
    python -m repro list --json                        # machine-readable schema
    python -m repro fig2 --approach tabular --workers 4
    python -m repro fig5 --fast --batch-size 4
    python -m repro fig7 --fast --workers auto
    python -m repro fig10 --checkpoint-dir runs/fig10 --resume
    python -m repro summary --out-dir results/
    python -m repro sweep fig5.inference --grid episodes_per_trial=1,2,5 \
        --set fast=true --store runs/store     # cached parameter sweep
    python -m repro sweep fig5.inference --grid approach=tabular,nn \
        --reps auto --target-ci 0.05           # adaptive precision

``python -m repro sweep <spec>`` orchestrates many points of one registered
experiment: ``--grid`` / ``--zip`` / ``--random`` build the point set,
results are cached in a content-addressed artifact store (``--cache
reuse|refresh|off``, ``--store DIR``), ``--sweep-checkpoint`` +
``--resume`` restart interrupted sweeps, and ``--reps auto`` grows each
point's campaign until its success-rate CI half-width is below
``--target-ci``.

The shared execution flags map one-to-one onto
:class:`repro.api.ExecutionConfig`: ``--workers`` selects the parallel
campaign engine and ``--batch-size`` the batched-vectorized engine (both
bit-identical to serial runs for the same seed, and freely combinable);
``--checkpoint-dir`` streams every campaign's trial outcomes to JSONL files
so an interrupted sweep can be restarted with ``--resume``.
``REPRO_SCALE``, ``REPRO_CAMPAIGN_REPS``, ``REPRO_CAMPAIGN_WORKERS`` and
``REPRO_CAMPAIGN_BATCH`` keep working as environment-level defaults.
With ``--out-dir`` each experiment writes its full
:class:`~repro.api.ExperimentArtifact` (result + provenance) as JSON.

Every run/sweep subcommand also takes the observability flags: ``--trace
PATH`` (or ``REPRO_TRACE``) records every telemetry event as JSONL,
``--progress`` shows a live status line, ``--quiet`` silences progress
(result tables still print), and ``python -m repro trace summarize|validate
FILE`` post-processes a recorded trace.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from repro.experiments.registry import (
    ParamSpec,
    figures,
    list_specs,
    specs_for_figure,
)

__all__ = ["main", "build_parser"]

#: ``--reps`` spelling selecting the adaptive-precision mode (sweep only).
_AUTO_REPS = "auto"


# --------------------------------------------------------------------------- #
# Parser generation
# --------------------------------------------------------------------------- #
def _add_execution_flags(parser: argparse.ArgumentParser) -> None:
    """The shared engine/checkpoint/seed flags (one per ExecutionConfig knob)."""
    group = parser.add_argument_group("execution")
    group.add_argument(
        "--workers",
        type=lambda v: None if v == "" else v,
        default=None,
        metavar="N",
        help="campaign worker processes ('auto' = one per CPU; default: "
        "REPRO_CAMPAIGN_WORKERS or serial)",
    )
    group.add_argument(
        "--batch-size",
        default=None,
        metavar="B",
        help="trials evaluated per vectorized batch (default: "
        "REPRO_CAMPAIGN_BATCH or serial; trial functions without a "
        "vectorized implementation fall back to scalar execution)",
    )
    group.add_argument(
        "--kernel-backend",
        choices=("auto", "numpy", "numba"),
        default=None,
        metavar="NAME",
        help="compute-kernel backend for the quantization/injection hot path "
        "(auto/numpy/numba; default: REPRO_KERNEL_BACKEND or auto — numba "
        "when installed, else numpy; backends are bit-identical)",
    )
    group.add_argument(
        "--checkpoint-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="stream per-campaign trial outcomes to JSONL files in DIR",
    )
    group.add_argument(
        "--resume",
        action="store_true",
        help="skip trials already recorded under --checkpoint-dir",
    )
    group.add_argument("--seed", type=int, default=0, help="campaign seed (default: 0)")
    group.add_argument(
        "--reps",
        default=None,
        metavar="N",
        help="campaign repetitions (default: config / REPRO_CAMPAIGN_REPS)",
    )
    group.add_argument(
        "--out-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="write each experiment's artifact (result + provenance) as JSON into DIR",
    )
    observability = parser.add_argument_group("observability")
    observability.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="PATH",
        help="record every telemetry event as JSONL to PATH (default: "
        "REPRO_TRACE if set; summarize later with 'python -m repro trace "
        "summarize PATH')",
    )
    observability.add_argument(
        "--progress",
        action="store_true",
        help="show a live rewritten status line (trials, cache hits, CI "
        "half-width) on stderr instead of per-point progress lines",
    )
    observability.add_argument(
        "--quiet",
        action="store_true",
        help="suppress progress output (result tables still print)",
    )


def _add_sweep_flags(parser: argparse.ArgumentParser) -> None:
    """Flags of the ``sweep`` subcommand (axes, cache, adaptive precision)."""
    parser.add_argument(
        "experiment",
        metavar="spec",
        help="registered experiment spec to sweep (see 'python -m repro list')",
    )
    axes = parser.add_argument_group("sweep axes")
    axes.add_argument(
        "--grid",
        action="append",
        default=None,
        metavar="PARAM=V1,V2,...",
        help="sweep axis for the Cartesian-product mode (repeatable)",
    )
    axes.add_argument(
        "--zip",
        action="append",
        default=None,
        dest="zip_axes",
        metavar="PARAM=V1,V2,...",
        help="sweep axis advancing in lockstep with the other --zip axes "
        "(repeatable; all must have equal lengths)",
    )
    axes.add_argument(
        "--random",
        action="append",
        default=None,
        dest="random_axes",
        metavar="PARAM=V1,V2,...",
        help="sweep axis sampled uniformly per point (repeatable; needs --samples)",
    )
    axes.add_argument(
        "--samples",
        type=int,
        default=None,
        metavar="N",
        help="number of random-mode points to draw",
    )
    axes.add_argument(
        "--sample-seed",
        type=int,
        default=0,
        metavar="N",
        help="seed of the random-mode draw (default: 0; independent of --seed)",
    )
    axes.add_argument(
        "--set",
        action="append",
        default=None,
        dest="base_params",
        metavar="PARAM=VALUE",
        help="pin a non-swept parameter for every point (repeatable), "
        "e.g. --set fast=true",
    )
    _add_execution_flags(parser)
    adaptive = parser.add_argument_group("adaptive precision (--reps auto)")
    adaptive.add_argument(
        "--target-ci",
        type=float,
        default=0.05,
        metavar="W",
        help="target Wilson CI half-width of each point's headline "
        "success-rate metric (default: 0.05)",
    )
    adaptive.add_argument(
        "--initial-reps",
        type=int,
        default=4,
        metavar="N",
        help="campaign size of the first adaptive round (default: 4)",
    )
    adaptive.add_argument(
        "--growth",
        type=float,
        default=2.0,
        metavar="G",
        help="minimum per-round repetition growth factor (default: 2.0)",
    )
    adaptive.add_argument(
        "--max-reps",
        type=int,
        default=None,
        metavar="N",
        help="per-point repetition budget for adaptive mode (default: unbounded)",
    )
    cache = parser.add_argument_group("artifact cache")
    cache.add_argument(
        "--cache",
        choices=("reuse", "refresh", "off"),
        default="reuse",
        help="artifact-store policy: reuse cached points (default), refresh "
        "(recompute and overwrite), or off",
    )
    cache.add_argument(
        "--store",
        type=Path,
        default=None,
        metavar="DIR",
        help="artifact store root (default: REPRO_STORE_DIR or .repro-store)",
    )
    cache.add_argument(
        "--sweep-checkpoint",
        type=Path,
        default=None,
        metavar="FILE",
        help="JSONL file recording completed sweep points; with --resume, "
        "points already recorded there are skipped",
    )
    distributed = parser.add_argument_group("distributed execution")
    distributed.add_argument(
        "--sweep-workers",
        default=None,
        metavar="N",
        help="shard the sweep's points across N worker processes pulling "
        "from a shared work-stealing queue ('auto' = one per CPU); results "
        "are bit-identical to the serial runner (default: "
        "REPRO_SWEEP_WORKERS or 1)",
    )


@contextlib.contextmanager
def _cli_telemetry(args, *, default_progress: bool = False) -> Iterator[None]:
    """Attach the trace sink / progress reporter the CLI flags ask for.

    ``--trace`` (or ``REPRO_TRACE``) subscribes a JSONL
    :class:`~repro.telemetry.TraceSink`; ``--progress`` a live status line;
    ``default_progress=True`` (the sweep subcommand) a per-point progress
    line unless ``--quiet``.  Everything is unsubscribed and closed on the
    way out, including on ``parser.error`` exits.
    """
    from repro.telemetry import TRACE_ENV_VAR, ProgressReporter, TraceSink, default_bus

    trace = args.trace
    if trace is None:
        env_trace = os.environ.get(TRACE_ENV_VAR, "")
        trace = Path(env_trace) if env_trace else None
    bus = default_bus()
    sink = reporter = None
    try:
        if trace is not None:
            sink = TraceSink(trace)
            bus.subscribe(sink)
        if not args.quiet:
            if args.progress:
                reporter = ProgressReporter(mode="live")
            elif default_progress:
                reporter = ProgressReporter(mode="lines")
            if reporter is not None:
                bus.subscribe(reporter)
        yield
    finally:
        if reporter is not None:
            bus.unsubscribe(reporter)
            reporter.close()
        if sink is not None:
            bus.unsubscribe(sink)
            sink.close()
            if not args.quiet:
                print(
                    f"trace written to {trace} ({sink.events_written} events)",
                    file=sys.stderr,
                )


def _flag_name(param: ParamSpec) -> str:
    return "--" + param.name.replace("_", "-")


def _add_param_flag(parser: argparse.ArgumentParser, param: ParamSpec) -> None:
    """Derive one argparse flag from a typed spec parameter."""
    help_text = (param.help or param.name).replace("%", "%%")
    if param.type is bool:
        if param.default:
            # bool-default-true parameters become --no-<name> switches.
            parser.add_argument(
                "--no-" + param.name.replace("_", "-"),
                dest=param.name,
                action="store_false",
                help=f"disable: {help_text}",
            )
        else:
            parser.add_argument(_flag_name(param), action="store_true", help=help_text)
        parser.set_defaults(**{param.name: param.default})
        return
    parser.add_argument(
        _flag_name(param),
        type=param.type,
        default=param.default,
        choices=param.choices,
        help=f"{help_text} (default: {param.default})",
    )


def _figure_params(figure: str) -> List[ParamSpec]:
    """Union of a figure's spec parameters (deduplicated by name).

    Two specs may share a parameter name as long as the flag they generate
    is the same (type, default, choices); help text may differ — the first
    registration wins.  Genuinely conflicting declarations are a
    programming error and fail the parser build.
    """
    merged: Dict[str, ParamSpec] = {}
    for spec in specs_for_figure(figure):
        for param in spec.params:
            existing = merged.get(param.name)
            if existing is None:
                merged[param.name] = param
            elif (existing.type, existing.default, existing.choices) != (
                param.type,
                param.default,
                param.choices,
            ):
                raise ValueError(
                    f"figure {figure!r}: specs disagree on parameter {param.name!r}"
                )
    return list(merged.values())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run a fault-injection figure campaign from the DAC'21 "
        "reproduction.  Subcommands are generated from the experiment "
        "registry; see 'python -m repro list'.",
    )
    subparsers = parser.add_subparsers(dest="figure", metavar="figure", required=True)
    # figure -> subparser, so flag-validation errors can report the usage of
    # the subcommand actually invoked instead of the top-level synopsis.
    parser.figure_parsers = {}

    list_parser = subparsers.add_parser(
        "list",
        help="list every registered experiment spec and its parameters",
        description="Enumerate the declarative experiment registry.",
    )
    list_parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the registry as machine-readable JSON (name, description, "
        "typed parameter schema per spec)",
    )

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="run a cached parameter sweep over one registered spec",
        description="Orchestrate many points of one experiment spec with "
        "content-addressed result caching, sweep checkpoint/resume and "
        "optional adaptive ('--reps auto') precision-driven sampling.",
    )
    _add_sweep_flags(sweep_parser)
    parser.figure_parsers["sweep"] = sweep_parser

    trace_parser = subparsers.add_parser(
        "trace",
        help="summarize or validate a JSONL telemetry trace",
        description="Work with traces recorded via --trace / REPRO_TRACE.",
    )
    trace_actions = trace_parser.add_subparsers(
        dest="trace_action", metavar="action", required=True
    )
    summarize_parser = trace_actions.add_parser(
        "summarize",
        help="fold a trace into a telemetry report (counters + phase timings)",
        description="Aggregate every event of a JSONL trace into counters and "
        "per-phase timing tables.",
    )
    summarize_parser.add_argument(
        "trace_file", type=Path, metavar="FILE", help="JSONL trace to summarize"
    )
    summarize_parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the report as machine-readable JSON",
    )
    validate_parser = trace_actions.add_parser(
        "validate",
        help="strictly parse a trace, failing on malformed or unknown events",
        description="Parse every line of a JSONL trace against the typed event "
        "schema; any malformed line or unknown event kind fails the check.",
    )
    validate_parser.add_argument(
        "trace_file", type=Path, metavar="FILE", help="JSONL trace to validate"
    )
    parser.figure_parsers["trace"] = trace_parser

    for figure in figures():
        specs = specs_for_figure(figure)
        summary = "; ".join(spec.description for spec in specs)
        sub = subparsers.add_parser(
            figure,
            # argparse %-interpolates help strings, so literal % (e.g. "+39%")
            # must be escaped.
            help=summary.replace("%", "%%"),
            description=f"Runs: {'; '.join(spec.name for spec in specs)}.",
        )
        _add_execution_flags(sub)
        for param in _figure_params(figure):
            _add_param_flag(sub, param)
        parser.figure_parsers[figure] = sub
    return parser


# --------------------------------------------------------------------------- #
# Command implementations
# --------------------------------------------------------------------------- #
def _render_listing_json() -> str:
    """The registry as machine-readable JSON (``python -m repro list --json``).

    Schema: a list of spec objects — ``name`` / ``figure`` / ``description``
    / ``batched`` / ``params`` (each with name, type, default, help, choices,
    minimum) — the contract sweep tooling and external runners build on.
    """
    return json.dumps([spec.to_json_dict() for spec in list_specs()], indent=2)


def _render_listing() -> str:
    lines = ["Registered experiment specs:", ""]
    for spec in list_specs():
        engine = " [batched]" if spec.batched else ""
        lines.append(f"{spec.name}{engine}")
        lines.append(f"    {spec.description}")
        if spec.params:
            rendered = "; ".join(param.describe() for param in spec.params)
            lines.append(f"    params: {rendered}")
    lines.append("")
    lines.append(
        "Run a figure with 'python -m repro <figure>', or any single spec "
        "programmatically via repro.api.run(name)."
    )
    return "\n".join(lines)


def _execution_from_args(args, parser: argparse.ArgumentParser):
    from repro.api import ExecutionConfig

    try:
        return ExecutionConfig(
            seed=args.seed,
            repetitions=args.reps,
            workers=args.workers,
            batch_size=args.batch_size,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
            kernel_backend=args.kernel_backend,
        )
    except ValueError as exc:
        reporter = getattr(parser, "figure_parsers", {}).get(args.figure, parser)
        reporter.error(str(exc))


def _artifact_slug(title: str) -> str:
    return "".join(c if c.isalnum() else "_" for c in title).strip("_")


def _parse_axis_arg(text: str, parser: argparse.ArgumentParser):
    """Split one ``PARAM=V1,V2,...`` axis flag into (name, raw value list)."""
    name, sep, values = text.partition("=")
    if not sep or not name or not values:
        parser.error(f"axis must look like param=v1,v2,..., got {text!r}")
    return name, [v for v in values.split(",") if v != ""]


def _run_trace(args, parser: argparse.ArgumentParser) -> int:
    """The ``trace`` subcommand: summarize / validate a JSONL trace."""
    from repro.telemetry import TelemetryReport, read_trace

    reporter = parser.figure_parsers["trace"]
    if not args.trace_file.is_file():
        reporter.error(f"no such trace file: {args.trace_file}")
    if args.trace_action == "validate":
        try:
            events = read_trace(args.trace_file, strict=True)
        except ValueError as exc:
            print(f"invalid trace {args.trace_file}: {exc}", file=sys.stderr)
            return 1
        print(f"{args.trace_file}: {len(events)} events, all valid")
        return 0
    report = TelemetryReport.from_trace(args.trace_file)
    if args.as_json:
        print(json.dumps(report.summary_dict(), indent=2, default=float))
    else:
        print(report.render())
    return 0


def _run_sweep(args, parser: argparse.ArgumentParser) -> int:
    from repro import api
    from repro.io.tables import render_table
    from repro.sweep import SweepSpec

    reporter = parser.figure_parsers["sweep"]
    groups = {
        "grid": args.grid,
        "zip": args.zip_axes,
        "random": args.random_axes,
    }
    used = [mode for mode, axes in groups.items() if axes]
    if len(used) != 1:
        reporter.error("pass axes with exactly one of --grid / --zip / --random")
    mode = used[0]
    axes = dict(_parse_axis_arg(text, reporter) for text in groups[mode])
    base_params = {}
    for text in args.base_params or []:
        name, values = _parse_axis_arg(text, reporter)
        if len(values) != 1:
            reporter.error(f"--set takes a single value, got {text!r}")
        base_params[name] = values[0]

    repetitions = args.reps
    if repetitions is not None and repetitions != _AUTO_REPS:
        repetitions = str(repetitions)
    try:
        execution = api.ExecutionConfig(
            seed=args.seed,
            workers=args.workers,
            batch_size=args.batch_size,
            checkpoint_dir=args.checkpoint_dir,
            resume=bool(args.resume and args.checkpoint_dir is not None),
            kernel_backend=args.kernel_backend,
        )
        sweep_spec = SweepSpec(
            experiment=args.experiment,
            axes=tuple((name, tuple(values)) for name, values in axes.items()),
            mode=mode,
            base_params=tuple(base_params.items()),
            samples=args.samples,
            sample_seed=args.sample_seed,
        )
    except (KeyError, ValueError, TypeError) as exc:
        reporter.error(str(exc))

    # Progress is no longer a hard-wired print: the sweep loop emits
    # telemetry events and _cli_telemetry decides what (if anything) gets
    # rendered — per-point lines by default, a live status line under
    # --progress, nothing under --quiet.
    try:
        with _cli_telemetry(args, default_progress=True):
            artifact = api.sweep(
                sweep_spec,
                execution=execution,
                repetitions=repetitions,
                target_ci=args.target_ci,
                initial_repetitions=args.initial_reps,
                growth=args.growth,
                max_repetitions=args.max_reps,
                cache=args.cache,
                store=args.store,
                checkpoint=args.sweep_checkpoint,
                sweep_workers=args.sweep_workers,
                # --resume means "resume whatever was checkpointed":
                # sweep-level resume only applies when a sweep checkpoint
                # exists (the campaign-level --checkpoint-dir resume is
                # handled by the ExecutionConfig built above).
                resume=bool(args.resume and args.sweep_checkpoint is not None),
            )
    except (KeyError, ValueError, TypeError) as exc:
        reporter.error(str(exc))

    print()
    print(render_table(artifact.summary_table()))
    print()
    print(render_table(artifact.table()))
    hits = artifact.cache_hits
    print(
        f"\n{len(artifact.points)} points, {hits} cache hit(s), "
        f"{artifact.executed_trials} trial(s) executed, "
        f"{artifact.wall_time_s:.2f}s"
    )
    if args.out_dir is not None:
        args.out_dir.mkdir(parents=True, exist_ok=True)
        out = args.out_dir / f"sweep_{args.experiment.replace('.', '_')}.json"
        artifact.to_json(out)
        print(f"sweep artifact written to {out}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.figure == "list":
        print(_render_listing_json() if args.as_json else _render_listing())
        return 0
    if args.figure == "sweep":
        return _run_sweep(args, parser)
    if args.figure == "trace":
        return _run_trace(args, parser)

    from repro import api
    from repro.io.tables import render_table

    execution = _execution_from_args(args, parser)
    with _cli_telemetry(args):
        for spec in specs_for_figure(args.figure):
            params = {param.name: getattr(args, param.name) for param in spec.params}
            try:
                params = spec.resolve_params(params)
            except (TypeError, ValueError) as exc:
                parser.figure_parsers[args.figure].error(str(exc))
            artifact = api.run(spec, params, execution=execution)
            print()
            print(render_table(artifact.as_table()))
            if args.out_dir is not None:
                args.out_dir.mkdir(parents=True, exist_ok=True)
                artifact.to_json(args.out_dir / f"{_artifact_slug(artifact.title)}.json")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pipe reader (e.g. `... | head`) closed early; not an
        # error.  Detach stdout so the interpreter's exit-time flush does
        # not raise a second time.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        sys.exit(0)
