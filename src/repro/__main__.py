"""Command-line entry point: run any figure campaign from the shell.

``python -m repro <figure>`` reproduces one paper figure (or the headline
summary) with the experiment-level knobs exposed as flags::

    python -m repro fig2 --approach tabular --workers 4
    python -m repro fig7 --fast --workers auto
    python -m repro fig10 --checkpoint-dir runs/fig10 --resume
    python -m repro summary --out-dir results/

``--workers`` selects the parallel campaign engine and ``--batch-size`` the
batched-vectorized engine (both bit-identical to serial runs for the same
seed, and freely combinable); ``--checkpoint-dir`` streams every campaign's
trial outcomes to JSONL files so an interrupted sweep can be restarted with
``--resume``.  ``REPRO_SCALE``, ``REPRO_CAMPAIGN_REPS``,
``REPRO_CAMPAIGN_WORKERS`` and ``REPRO_CAMPAIGN_BATCH`` keep working as
environment-level defaults.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.experiments.config import (
    DroneConfig,
    GridNNConfig,
    GridTabularConfig,
    drone_ber_sweep,
    grid_ber_sweep,
    injection_episodes,
)
from repro.io.results import ResultTable, SeriesResult
from repro.io.tables import render_table

__all__ = ["main"]


def _grid_config(args) -> "GridTabularConfig | GridNNConfig":
    cls = GridNNConfig if args.approach == "nn" else GridTabularConfig
    return cls.fast() if args.fast else cls()


def _nn_config(args) -> GridNNConfig:
    return GridNNConfig.fast() if args.fast else GridNNConfig()


def _drone_config(args) -> DroneConfig:
    return DroneConfig.fast() if args.fast else DroneConfig()


def _campaign_kwargs(args, batched: bool = False) -> dict:
    kwargs = {
        "seed": args.seed,
        "repetitions": args.reps,
        "workers": args.workers,
        "checkpoint_dir": args.checkpoint_dir,
        "resume": args.resume,
    }
    if batched:
        # Only the inference-campaign drivers expose the batch-size knob as
        # a keyword; every other driver still honours REPRO_CAMPAIGN_BATCH
        # through make_runner (falling back to scalar trials per batch).
        kwargs["batch_size"] = args.batch_size
    return kwargs


def _run_fig2(args) -> List[ResultTable]:
    from repro.experiments.fig2_training import (
        run_permanent_training_sweep,
        run_transient_training_heatmap,
    )

    config = _grid_config(args)
    bers = grid_ber_sweep()
    kwargs = _campaign_kwargs(args)
    return [
        run_transient_training_heatmap(
            config, bers, injection_episodes(config.episodes), **kwargs
        ),
        run_permanent_training_sweep(config, bers, **kwargs),
    ]


def _run_fig3(args) -> List[SeriesResult]:
    from repro.experiments.fig3_return_curves import run_return_curves

    return [run_return_curves(_grid_config(args), seed=args.seed)]


def _run_fig4(args) -> List[ResultTable]:
    from repro.experiments.fig4_convergence import (
        run_permanent_extra_training,
        run_transient_convergence,
    )

    config = _grid_config(args)
    bers = grid_ber_sweep()
    kwargs = _campaign_kwargs(args)
    return [
        run_transient_convergence(config, bers, **kwargs),
        run_permanent_extra_training(config, bers, **kwargs),
    ]


def _run_fig5(args) -> List[ResultTable]:
    from repro.experiments.fig5_inference import run_inference_fault_sweep

    return [
        run_inference_fault_sweep(
            _grid_config(args), grid_ber_sweep(), **_campaign_kwargs(args, batched=True)
        )
    ]


def _run_fig7(args) -> List[ResultTable]:
    from repro.experiments.fig7_drone import (
        run_datatype_sweep,
        run_drone_training_faults,
        run_environment_comparison,
        run_fault_location_sweep,
        run_layer_sweep,
    )

    config = _drone_config(args)
    bers = drone_ber_sweep()
    kwargs = _campaign_kwargs(args)
    return [
        run_drone_training_faults(config, bers, **kwargs),
        run_environment_comparison(config, bers, **kwargs),
        run_fault_location_sweep(config, bers, **kwargs),
        run_layer_sweep(config, bers, **kwargs),
        run_datatype_sweep(config, bers, **kwargs),
    ]


def _run_fig8(args) -> List[ResultTable]:
    from repro.experiments.fig8_mitigation_training import (
        run_mitigated_permanent_sweep,
        run_mitigated_transient_heatmap,
    )

    config = _grid_config(args)
    bers = grid_ber_sweep()
    kwargs = _campaign_kwargs(args)
    return [
        run_mitigated_transient_heatmap(
            config, bers, injection_episodes(config.episodes), **kwargs
        ),
        run_mitigated_permanent_sweep(config, bers, **kwargs),
    ]


def _run_fig9(args) -> List[ResultTable]:
    from repro.experiments.fig9_exploration import (
        run_exploration_adjustment_sweep,
        run_recovery_speed_correlation,
    )

    config = _grid_config(args)
    kwargs = _campaign_kwargs(args, batched=True)
    return [
        run_exploration_adjustment_sweep(config, grid_ber_sweep(), **kwargs),
        run_recovery_speed_correlation(config, **kwargs),
    ]


def _run_fig10(args) -> List[ResultTable]:
    from repro.experiments.fig10_anomaly import (
        run_drone_anomaly_mitigation,
        run_gridworld_anomaly_mitigation,
    )

    kwargs = _campaign_kwargs(args, batched=True)
    return [
        run_gridworld_anomaly_mitigation(_nn_config(args), grid_ber_sweep(), **kwargs),
        run_drone_anomaly_mitigation(_drone_config(args), drone_ber_sweep(), **kwargs),
    ]


def _run_summary(args) -> List[ResultTable]:
    from repro.experiments.summary import run_headline_summary

    return [
        run_headline_summary(
            grid_config=_nn_config(args),
            drone_config=_drone_config(args),
            seed=args.seed,
            workers=args.workers,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
        )
    ]


FIGURES = {
    "fig2": ("training-fault heatmaps (Fig. 2)", _run_fig2),
    "fig3": ("cumulative-return curves (Fig. 3)", _run_fig3),
    "fig4": ("post-fault convergence (Fig. 4)", _run_fig4),
    "fig5": ("inference-fault sweep (Fig. 5)", _run_fig5),
    "fig7": ("drone fault characterization (Fig. 7)", _run_fig7),
    "fig8": ("adaptive-exploration mitigation (Fig. 8)", _run_fig8),
    "fig9": ("exploration adjustment (Fig. 9)", _run_fig9),
    "fig10": ("anomaly-detection mitigation (Fig. 10)", _run_fig10),
    "summary": ("headline summary (Sec. 5.2)", _run_summary),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run a fault-injection figure campaign from the DAC'21 reproduction.",
        epilog="Figures: "
        + "; ".join(f"{name} — {desc}" for name, (desc, _) in FIGURES.items()),
    )
    parser.add_argument("figure", choices=sorted(FIGURES), help="which figure to reproduce")
    parser.add_argument(
        "--approach",
        choices=("tabular", "nn"),
        default="tabular",
        help="Grid World agent for fig2-fig5/fig8/fig9 (default: tabular)",
    )
    parser.add_argument(
        "--workers",
        type=lambda v: None if v == "" else v,
        default=None,
        metavar="N",
        help="campaign worker processes ('auto' = one per CPU; default: "
        "REPRO_CAMPAIGN_WORKERS or serial)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="B",
        help="trials evaluated per vectorized batch for the inference "
        "campaigns (default: REPRO_CAMPAIGN_BATCH or serial)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="stream per-campaign trial outcomes to JSONL files in DIR",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip trials already recorded under --checkpoint-dir",
    )
    parser.add_argument("--seed", type=int, default=0, help="campaign seed (default: 0)")
    parser.add_argument(
        "--reps",
        type=int,
        default=None,
        metavar="N",
        help="campaign repetitions (default: config / REPRO_CAMPAIGN_REPS)",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="use the heavily reduced unit-test presets (smoke runs)",
    )
    parser.add_argument(
        "--out-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="also write each result table as JSON into DIR",
    )
    return parser


def _parse_workers(value) -> Optional[int]:
    if value is None:
        return None
    from repro.core.runner import parse_worker_count

    return parse_worker_count(value)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        args.workers = _parse_workers(args.workers)
    except ValueError:
        parser.error(f"--workers must be a positive integer or 'auto', got {args.workers!r}")
    if args.batch_size is not None and args.batch_size <= 0:
        parser.error(f"--batch-size must be positive, got {args.batch_size}")
    if args.resume and args.checkpoint_dir is None:
        parser.error("--resume requires --checkpoint-dir")

    _, run = FIGURES[args.figure]
    results = run(args)

    for result in results:
        table = result.as_table() if isinstance(result, SeriesResult) else result
        print()
        print(render_table(table))
        if args.out_dir is not None:
            args.out_dir.mkdir(parents=True, exist_ok=True)
            slug = "".join(c if c.isalnum() else "_" for c in result.title).strip("_")
            result.to_json(args.out_dir / f"{slug}.json")
    return 0


if __name__ == "__main__":
    sys.exit(main())
