"""Fault-injection tool-chain (the paper's primary contribution).

The tool-chain emulates hardware faults in the memories of a learning-based
navigation system and enables rapid fault analysis in both training and
inference:

* :mod:`repro.core.fault_models` — transient bit-flip and permanent
  stuck-at-0 / stuck-at-1 fault models parameterized by bit error rate.
* :mod:`repro.core.sites` — addressing of fault locations (which buffer,
  which element, which bit) and reusable fault patterns.
* :mod:`repro.core.injector` — static and dynamic injection into agent
  memory buffers and accelerator buffers, plus training-loop hooks.
* :mod:`repro.core.campaign` — repetition / statistics machinery for
  large-scale fault-injection campaigns.
* :mod:`repro.core.runner` — serial, multiprocess and batched-vectorized
  campaign execution engines with chunked scheduling and checkpoint
  streaming.
* :mod:`repro.core.evaluator` — batched evaluation of B fault-injected
  policy replicas through stacked quantized buffers.
* :mod:`repro.core.mitigation` — the two mitigation techniques of Sec. 5.
"""

from repro.core.fault_models import (
    FaultType,
    FaultModel,
    TransientBitFlip,
    StuckAtFault,
    make_fault_model,
)
from repro.core.sites import FaultPattern, BufferSelector, apply_patterns_stacked
from repro.core.injector import (
    FaultInjector,
    TransientTrainingFaultHook,
    PermanentTrainingFaultHook,
    ActivationFaultInjector,
    InputFaultInjector,
)
from repro.core.campaign import Campaign, CampaignResult, TrialOutcome
from repro.core.runner import (
    BatchedRunner,
    CampaignRunner,
    ParallelRunner,
    SerialRunner,
    TrialExecutionError,
    default_batch_size,
    default_workers,
    executed_trial_count,
    make_runner,
    supports_batching,
)
from repro.core.evaluator import BatchedEvaluator

__all__ = [
    "FaultType",
    "FaultModel",
    "TransientBitFlip",
    "StuckAtFault",
    "make_fault_model",
    "FaultPattern",
    "BufferSelector",
    "apply_patterns_stacked",
    "FaultInjector",
    "TransientTrainingFaultHook",
    "PermanentTrainingFaultHook",
    "ActivationFaultInjector",
    "InputFaultInjector",
    "Campaign",
    "CampaignResult",
    "TrialOutcome",
    "CampaignRunner",
    "SerialRunner",
    "ParallelRunner",
    "BatchedRunner",
    "BatchedEvaluator",
    "TrialExecutionError",
    "default_workers",
    "default_batch_size",
    "executed_trial_count",
    "supports_batching",
    "make_runner",
]
