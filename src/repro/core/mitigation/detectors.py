"""Training-time fault detectors (Sec. 5.1, "Detection").

Transient faults produce a *sudden drop* in cumulative reward; permanent
faults produce a *continuously low* reward after the agent has settled into
its steady exploitation phase.  Both detectors watch the per-episode
cumulative-reward stream only — no redundant computation or storage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["DetectionEvent", "RewardDropDetector", "PermanentFaultDetector"]


@dataclass(frozen=True)
class DetectionEvent:
    """A detector firing at a given episode."""

    episode: int
    kind: str  # "transient" or "permanent"
    reward_drop: float  # normalized drop f(r) = delta_r / r_max


class RewardDropDetector:
    """Detects transient faults from sudden cumulative-reward drops.

    A fault is flagged when the cumulative reward drops by more than
    ``drop_threshold`` (fraction of the maximum observed reward) within
    ``window`` consecutive episodes.  The paper uses x=25% and y=50.
    """

    def __init__(self, drop_threshold: float = 0.25, window: int = 50) -> None:
        if not 0.0 < drop_threshold <= 1.0:
            raise ValueError(f"drop_threshold must be in (0, 1], got {drop_threshold}")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.drop_threshold = drop_threshold
        self.window = window
        self._history: List[float] = []
        self._max_reward: Optional[float] = None
        self.events: List[DetectionEvent] = []

    @property
    def max_reward(self) -> Optional[float]:
        """Highest episode reward observed so far."""
        return self._max_reward

    def observe(self, episode: int, reward: float) -> Optional[DetectionEvent]:
        """Feed one episode reward; returns an event if a drop is detected."""
        self._history.append(reward)
        if self._max_reward is None or reward > self._max_reward:
            self._max_reward = reward
        if self._max_reward is None or self._max_reward <= 0:
            return None
        recent = self._history[-self.window :]
        recent_peak = max(recent)
        drop = (recent_peak - reward) / abs(self._max_reward)
        if drop >= self.drop_threshold:
            event = DetectionEvent(episode=episode, kind="transient", reward_drop=drop)
            self.events.append(event)
            return event
        return None

    def normalized_drop(self, reward: float) -> float:
        """f(r) = delta_r / r_max for the most recent reward (Eq. 6)."""
        if self._max_reward is None or self._max_reward <= 0:
            return 0.0
        return max(0.0, (self._max_reward - reward) / abs(self._max_reward))

    def reset(self) -> None:
        self._history.clear()
        self._max_reward = None
        self.events.clear()


class PermanentFaultDetector:
    """Detects permanent faults from persistently low reward at steady exploitation.

    Once the exploration schedule has reached its steady exploitation floor,
    if the (windowed) reward is still below ``low_fraction`` of the maximum
    observed reward, a permanent fault is assumed (Sec. 5.1).
    """

    def __init__(self, low_fraction: float = 0.5, window: int = 20) -> None:
        if not 0.0 < low_fraction < 1.0:
            raise ValueError(f"low_fraction must be in (0, 1), got {low_fraction}")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.low_fraction = low_fraction
        self.window = window
        self._history: List[float] = []
        self._max_reward: Optional[float] = None
        self.events: List[DetectionEvent] = []

    def observe(
        self, episode: int, reward: float, exploration_steady: bool
    ) -> Optional[DetectionEvent]:
        """Feed one episode reward plus whether the schedule is at its floor."""
        self._history.append(reward)
        if self._max_reward is None or reward > self._max_reward:
            self._max_reward = reward
        if not exploration_steady:
            return None
        if self._max_reward is None or self._max_reward <= 0:
            return None
        if len(self._history) < self.window:
            return None
        recent_mean = sum(self._history[-self.window :]) / self.window
        if recent_mean < self.low_fraction * self._max_reward:
            drop = (self._max_reward - recent_mean) / abs(self._max_reward)
            event = DetectionEvent(episode=episode, kind="permanent", reward_drop=drop)
            self.events.append(event)
            return event
        return None

    def reset(self) -> None:
        self._history.clear()
        self._max_reward = None
        self.events.clear()
