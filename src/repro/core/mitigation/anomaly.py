"""Range-based anomaly detection for inference (Sec. 5.2).

After training, the value range of every layer's weights and activations is
instrumented; during inference each value read from a buffer is compared —
using only its sign and integer bits — against the instrumented range widened
by a detection margin (10% in the paper).  Values outside the range raise an
alarm and the operations consuming them are skipped, which in a sparse NN is
well-approximated by treating the value as zero.

The detector is *value-level*, not bit-level: bit-flips that land in the
fractional part (or that leave the value inside the trained range) are
deliberately ignored, because they rarely change the selected action.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.nn.buffers import LayerRangeProfile, QuantizedExecutor
from repro.nn.layers import Layer
from repro.quant.qtensor import QTensor

__all__ = ["RangeAnomalyDetector", "estimate_runtime_overhead"]


@dataclass
class _DetectionCounters:
    checked_values: int = 0
    detected_anomalies: int = 0


class RangeAnomalyDetector:
    """Detects and suppresses out-of-range values in quantized buffers.

    Parameters
    ----------
    profile:
        Per-layer weight/activation ranges instrumented on the clean policy
        (see :meth:`repro.nn.buffers.QuantizedExecutor.profile_ranges`).
    margin:
        Detection margin applied to each bound (0.1 = 10%).
    compare_integer_bits_only:
        If True (paper default) the comparison uses only the sign and integer
        bits of each value, i.e. a value is anomalous only when its *integer
        part* falls outside the widened range.  This keeps the comparator
        narrow in hardware while catching the high-magnitude corruptions that
        actually destroy flight quality.
    """

    def __init__(
        self,
        profile: LayerRangeProfile,
        margin: float = 0.1,
        compare_integer_bits_only: bool = True,
    ) -> None:
        if margin < 0:
            raise ValueError(f"margin must be non-negative, got {margin}")
        self.profile = profile
        self.margin = margin
        self.compare_integer_bits_only = compare_integer_bits_only
        self.counters = _DetectionCounters()
        self.per_layer_detections: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Core check
    # ------------------------------------------------------------------ #
    def _effective_bound(self, bound: Tuple[float, float]) -> Tuple[float, float]:
        low, high = bound
        span = self.margin * max(abs(low), abs(high))
        low, high = low - span, high + span
        if self.compare_integer_bits_only:
            # Comparing sign+integer bits is equivalent to comparing the
            # floor of the value against integer-resolution bounds.
            low, high = math.floor(low), math.ceil(high)
        return low, high

    def _anomaly_mask(self, values: np.ndarray, bound: Tuple[float, float]) -> np.ndarray:
        low, high = self._effective_bound(bound)
        if self.compare_integer_bits_only:
            compared = np.floor(values)
        else:
            compared = values
        return (compared < low) | (compared > high)

    def filter_tensor(
        self, tensor: QTensor, bound: Tuple[float, float], layer_name: str
    ) -> int:
        """Zero out anomalous elements of ``tensor`` in place; return the count."""
        values = tensor.values
        mask = self._anomaly_mask(values, bound)
        count = int(mask.sum())
        self.counters.checked_values += values.size
        self.counters.detected_anomalies += count
        self.per_layer_detections[layer_name] = (
            self.per_layer_detections.get(layer_name, 0) + count
        )
        if count:
            values[mask] = 0.0
            tensor.values = values
        return count

    # ------------------------------------------------------------------ #
    # Integration points
    # ------------------------------------------------------------------ #
    def activation_hook(self, tensor: QTensor, layer: Optional[Layer]) -> None:
        """Buffer hook for :class:`QuantizedExecutor` activation buffers."""
        if layer is None:
            return
        bound = self.profile.activation_ranges.get(layer.name)
        if bound is None:
            return
        self.filter_tensor(tensor, self.profile.activation_bound(layer.name, self.margin), layer.name)

    def apply_to_weights(self, executor: QuantizedExecutor) -> int:
        """Scrub the executor's weight buffers; returns total anomalies removed.

        Call after weight faults have been injected (statically) and before
        running inference, mirroring the detector sitting on the filter
        buffer's read port.
        """
        total = 0

        def scrub(param_name: str, tensor: QTensor) -> None:
            nonlocal total
            layer_name = param_name.split(".", 1)[0]
            bound = self.profile.weight_ranges.get(layer_name)
            if bound is None:
                return
            total += self.filter_tensor(
                tensor, self.profile.weight_bound(layer_name, self.margin), layer_name
            )

        executor.apply_weight_faults(scrub)
        return total

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    @property
    def detection_rate(self) -> float:
        """Fraction of checked values flagged as anomalous."""
        if self.counters.checked_values == 0:
            return 0.0
        return self.counters.detected_anomalies / self.counters.checked_values

    def reset_counters(self) -> None:
        self.counters = _DetectionCounters()
        self.per_layer_detections.clear()


def estimate_runtime_overhead(
    qformat_total_bits: int,
    sign_integer_bits: int,
    macs_per_value: float = 16.0,
) -> float:
    """Analytical runtime-overhead estimate of the range detector.

    Every value read from a buffer incurs one narrow comparison over its sign
    and integer bits, against ``macs_per_value`` multiply-accumulates that
    consume the same buffered value before it is re-read (convolution reuses
    each buffered input/filter value across at least a small output tile; 16
    is a conservative reuse factor for the C3F2 layer shapes).  A b-bit
    comparison costs roughly ``b / total_bits`` of a full-word operation, so
    the relative overhead is::

        (sign_integer_bits / total_bits) / macs_per_value

    With Q(1,4,11) this is about 2.0%, consistent with the paper's "<3%
    runtime overhead" claim.
    """
    if qformat_total_bits <= 0 or sign_integer_bits <= 0:
        raise ValueError("bit widths must be positive")
    if sign_integer_bits > qformat_total_bits:
        raise ValueError("sign_integer_bits cannot exceed the word width")
    if macs_per_value <= 0:
        raise ValueError(f"macs_per_value must be positive, got {macs_per_value}")
    return (sign_integer_bits / qformat_total_bits) / macs_per_value
