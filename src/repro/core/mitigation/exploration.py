"""Adaptive exploration-rate adjustment (Sec. 5.1, "Recovery").

Once a fault is detected from the reward stream, the agent adjusts its
exploration/exploitation trade-off:

* **Transient fault** — the exploration rate is bumped up by

  .. math::

     ER_{new} = ER_{old} + \\alpha \\cdot \\min(f(r),\\ f(r) f(t))

  where :math:`f(r) = \\Delta r / r_{max}` is the normalized reward drop and
  :math:`f(t) = t / T` characterizes how late in training the fault occurred
  (T = episodes to reach steady exploitation in normal training).  Faults
  early in training (small ``f(t)``) thus trigger a smaller bump — the agent
  would have kept exploring anyway.

* **Permanent fault** — the exploration rate reverts to its initial value and
  the decay speed is slowed ``2**n``-fold, where ``n`` counts how many times
  the permanent detector has fired; the agent needs more episodes to learn
  the fault pattern and route around it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.mitigation.detectors import (
    DetectionEvent,
    PermanentFaultDetector,
    RewardDropDetector,
)
from repro.rl.base import Agent
from repro.rl.schedules import DecayingEpsilonGreedy
from repro.rl.trainer import EpisodeRecord, TrainingHooks

__all__ = ["ExplorationAdjustment", "AdaptiveExplorationController"]


@dataclass(frozen=True)
class ExplorationAdjustment:
    """Record of one exploration-rate adjustment."""

    episode: int
    kind: str  # "transient" or "permanent"
    old_rate: float
    new_rate: float
    decay_slowdown: float = 1.0


@dataclass
class _ControllerState:
    transient_detections: int = 0
    permanent_detections: int = 0
    adjustments: List[ExplorationAdjustment] = field(default_factory=list)


class AdaptiveExplorationController(TrainingHooks):
    """Training hook implementing the adaptive exploration-rate scheme.

    Parameters
    ----------
    alpha:
        Adjustment coefficient of Eq. 6.  The paper uses 0.8 for the tabular
        agent and 0.4 for the NN agent (which self-heals faster).
    drop_threshold, drop_window:
        Transient-detection parameters (x=25%, y=50 in the paper).
    steady_episodes:
        ``T`` of Eq. 6 — episodes a normal run takes to reach steady
        exploitation (paper: 100).
    cooldown:
        Minimum number of episodes between two transient adjustments, so a
        single fault does not trigger a boost every episode while the agent
        recovers.
    """

    def __init__(
        self,
        alpha: float = 0.8,
        drop_threshold: float = 0.25,
        drop_window: int = 50,
        steady_episodes: int = 100,
        low_reward_fraction: float = 0.5,
        permanent_window: int = 20,
        cooldown: int = 25,
    ) -> None:
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        if steady_episodes <= 0:
            raise ValueError(f"steady_episodes must be positive, got {steady_episodes}")
        self.alpha = alpha
        self.steady_episodes = steady_episodes
        self.cooldown = cooldown
        self.transient_detector = RewardDropDetector(drop_threshold, drop_window)
        self.permanent_detector = PermanentFaultDetector(low_reward_fraction, permanent_window)
        self.state = _ControllerState()
        self._last_adjustment_episode: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    @property
    def adjustments(self) -> List[ExplorationAdjustment]:
        return self.state.adjustments

    @property
    def transient_detections(self) -> int:
        return self.state.transient_detections

    @property
    def permanent_detections(self) -> int:
        return self.state.permanent_detections

    # ------------------------------------------------------------------ #
    # Eq. 6
    # ------------------------------------------------------------------ #
    def exploration_delta(self, reward_drop: float, episode: int) -> float:
        """delta(ER) = alpha * min(f(r), f(r) * f(t))."""
        f_r = max(0.0, reward_drop)
        f_t = min(1.0, episode / self.steady_episodes)
        return self.alpha * min(f_r, f_r * f_t)

    # ------------------------------------------------------------------ #
    # Training hook
    # ------------------------------------------------------------------ #
    def _schedule_of(self, agent: Agent) -> Optional[DecayingEpsilonGreedy]:
        schedule = getattr(agent, "schedule", None)
        if isinstance(schedule, DecayingEpsilonGreedy):
            return schedule
        return None

    def _in_cooldown(self, episode: int) -> bool:
        return (
            self._last_adjustment_episode is not None
            and episode - self._last_adjustment_episode < self.cooldown
        )

    def on_episode_end(self, episode: int, agent: Agent, env, record: EpisodeRecord) -> None:
        schedule = self._schedule_of(agent)
        if schedule is None:
            return

        transient_event = self.transient_detector.observe(episode, record.total_reward)
        permanent_event = self.permanent_detector.observe(
            episode, record.total_reward, exploration_steady=schedule.is_steady()
        )

        # Permanent handling takes priority: it implies the transient-style
        # boost was not enough (the reward never came back up).
        if permanent_event is not None and not self._in_cooldown(episode):
            self.state.permanent_detections += 1
            slowdown = 2.0**self.state.permanent_detections
            old_rate = schedule.epsilon
            new_rate = schedule.restart(decay_slowdown=slowdown)
            self.state.adjustments.append(
                ExplorationAdjustment(
                    episode=episode,
                    kind="permanent",
                    old_rate=old_rate,
                    new_rate=new_rate,
                    decay_slowdown=slowdown,
                )
            )
            self._last_adjustment_episode = episode
            return

        if transient_event is not None and not self._in_cooldown(episode):
            self.state.transient_detections += 1
            delta = self.exploration_delta(transient_event.reward_drop, episode)
            if delta <= 0:
                return
            old_rate = schedule.epsilon
            new_rate = schedule.boost(delta)
            self.state.adjustments.append(
                ExplorationAdjustment(
                    episode=episode,
                    kind="transient",
                    old_rate=old_rate,
                    new_rate=new_rate,
                )
            )
            self._last_adjustment_episode = episode
