"""Fault-mitigation techniques (Sec. 5).

Two low-overhead, application-aware techniques:

* :mod:`repro.core.mitigation.exploration` — training-time mitigation:
  detect faults from the cumulative-reward stream and adaptively adjust the
  exploration rate (Eq. 6).
* :mod:`repro.core.mitigation.anomaly` — inference-time mitigation:
  range-based anomaly detection over sign+integer bits with a configurable
  margin; anomalous values are skipped (zeroed) before they can steer the
  policy.

Neither technique requires redundant storage bits, matching the paper's
"<3% runtime overhead, no ECC" claim; :func:`~repro.core.mitigation.anomaly.estimate_runtime_overhead`
provides the corresponding analytical overhead accounting.
"""

from repro.core.mitigation.detectors import (
    RewardDropDetector,
    PermanentFaultDetector,
    DetectionEvent,
)
from repro.core.mitigation.exploration import AdaptiveExplorationController
from repro.core.mitigation.anomaly import RangeAnomalyDetector, estimate_runtime_overhead

__all__ = [
    "RewardDropDetector",
    "PermanentFaultDetector",
    "DetectionEvent",
    "AdaptiveExplorationController",
    "RangeAnomalyDetector",
    "estimate_runtime_overhead",
]
