"""Static and dynamic fault injection (Sec. 3.3).

Injection is performed in two modes:

* **Static** — before training or before inference begins: permanent faults
  (which are independent of execution) and transient faults in weights
  (which are known once training has finished).
* **Dynamic** — during execution, implemented as cheap tensor operations on
  the quantized buffers: transient faults in activations (input-dependent)
  and training-time faults at a chosen episode/step.

Training-time injection is packaged as :class:`~repro.rl.trainer.TrainingHooks`
subclasses so fault campaigns compose with the ordinary training loop, and
inference-time activation/input injection as buffer hooks for
:class:`~repro.nn.buffers.QuantizedExecutor`.
"""

from __future__ import annotations

import logging
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.fault_models import FaultModel, StuckAtFault, TransientBitFlip
from repro.core.sites import BufferSelector, FaultPattern
from repro.nn.buffers import QuantizedExecutor
from repro.nn.layers import Layer
from repro.quant.qtensor import QTensor
from repro.rl.base import Agent
from repro.rl.trainer import EpisodeRecord, TrainingHooks

__all__ = [
    "FaultInjector",
    "TransientTrainingFaultHook",
    "PermanentTrainingFaultHook",
    "ActivationFaultInjector",
    "InputFaultInjector",
    "ReplicaFanoutHook",
    "inject_weight_faults",
]

logger = logging.getLogger(__name__)


class FaultInjector:
    """Injects faults into an agent's quantized memory buffers."""

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self.rng = rng or np.random.default_rng()

    def inject(
        self,
        agent: Agent,
        model: FaultModel,
        selector: Optional[BufferSelector] = None,
    ) -> List[FaultPattern]:
        """Sample and apply faults to every selected buffer of ``agent``.

        Returns the concrete patterns so permanent faults can be re-applied
        later with :meth:`reapply`.
        """
        selector = selector or BufferSelector()
        buffers = agent.memory_buffers()
        selected = selector.select(buffers)
        patterns = [model.inject(tensor, self.rng) for tensor in selected.values()]
        agent.reload_from_buffers()
        return patterns

    def sample(
        self,
        agent: Agent,
        model: FaultModel,
        selector: Optional[BufferSelector] = None,
    ) -> List[FaultPattern]:
        """Sample fault patterns for the selected buffers without applying them."""
        selector = selector or BufferSelector()
        buffers = agent.memory_buffers()
        selected = selector.select(buffers)
        return [model.sample_pattern(tensor, self.rng) for tensor in selected.values()]

    def reapply(self, agent: Agent, patterns: List[FaultPattern]) -> None:
        """Re-apply previously sampled patterns (permanent-fault persistence)."""
        if not patterns:
            return
        buffers = agent.memory_buffers()
        for pattern in patterns:
            tensor = buffers.get(pattern.buffer_name)
            if tensor is None:
                raise KeyError(
                    f"pattern targets unknown buffer {pattern.buffer_name!r}; "
                    f"available: {sorted(buffers)}"
                )
            pattern.apply(tensor)
        agent.reload_from_buffers()


class TransientTrainingFaultHook(TrainingHooks):
    """Inject a transient fault once, at a chosen training episode (and step).

    Matches the campaigns of Fig. 2 / Fig. 7a: bit-flips are injected in a
    single episode (optionally a single step within it) at a given BER, and
    training then continues normally.
    """

    def __init__(
        self,
        bit_error_rate: float,
        inject_episode: int,
        inject_step: Optional[int] = None,
        selector: Optional[BufferSelector] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if inject_episode < 0:
            raise ValueError(f"inject_episode must be >= 0, got {inject_episode}")
        self.model = TransientBitFlip(bit_error_rate)
        self.inject_episode = inject_episode
        self.inject_step = inject_step
        self.selector = selector or BufferSelector()
        self.injector = FaultInjector(rng)
        self.injected_patterns: List[FaultPattern] = []

    @property
    def has_injected(self) -> bool:
        return bool(self.injected_patterns)

    def _do_inject(self, agent: Agent) -> None:
        self.injected_patterns = self.injector.inject(agent, self.model, self.selector)

    def on_episode_start(self, episode: int, agent: Agent, env) -> None:
        if self.inject_step is None and episode == self.inject_episode:
            self._do_inject(agent)

    def on_step(self, episode: int, step: int, agent: Agent, env, transition) -> None:
        if (
            self.inject_step is not None
            and episode == self.inject_episode
            and step == self.inject_step
            and not self.has_injected
        ):
            self._do_inject(agent)


class PermanentTrainingFaultHook(TrainingHooks):
    """Hold a stuck-at fault pattern in place throughout training.

    The concrete fault sites are sampled once (at ``start_episode``) and then
    re-applied every episode — and optionally every step — because training
    keeps rewriting the underlying memory while the physical defect keeps
    forcing those bits to the stuck level.
    """

    def __init__(
        self,
        bit_error_rate: float,
        stuck_value: int,
        selector: Optional[BufferSelector] = None,
        start_episode: int = 0,
        reapply_every_step: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.model = StuckAtFault(bit_error_rate, stuck_value=stuck_value)
        self.selector = selector or BufferSelector()
        self.start_episode = start_episode
        self.reapply_every_step = reapply_every_step
        self.injector = FaultInjector(rng)
        self.patterns: List[FaultPattern] = []

    def on_episode_start(self, episode: int, agent: Agent, env) -> None:
        if episode < self.start_episode:
            return
        if not self.patterns:
            self.patterns = self.injector.sample(agent, self.model, self.selector)
        self.injector.reapply(agent, self.patterns)

    def on_step(self, episode: int, step: int, agent: Agent, env, transition) -> None:
        if self.reapply_every_step and self.patterns:
            self.injector.reapply(agent, self.patterns)

    def on_episode_end(self, episode: int, agent: Agent, env, record: EpisodeRecord) -> None:
        if self.patterns:
            self.injector.reapply(agent, self.patterns)


class ActivationFaultInjector:
    """Buffer hook corrupting layer activations during quantized inference.

    ``mode="transient"`` samples fresh fault sites on every forward pass
    (dynamic injection — activations are input-dependent, Sec. 3.3);
    ``mode="permanent"`` samples sites once per buffer and re-applies the
    same stuck-at pattern on every pass.

    Activation buffers are rewritten per forward pass and their size tracks
    the batch size, so a permanent pattern can stop fitting when a smaller
    batch shrinks its buffer.  Such patterns are resampled; each resample is
    logged and counted in :attr:`resample_count` because the new pattern no
    longer pins the *same* physical sites as the old one.
    """

    def __init__(
        self,
        fault_model: FaultModel,
        layer_names: Optional[List[str]] = None,
        mode: str = "transient",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if mode not in ("transient", "permanent"):
            raise ValueError(f"mode must be 'transient' or 'permanent', got {mode!r}")
        if mode == "permanent" and not isinstance(fault_model, StuckAtFault):
            raise ValueError("permanent activation injection requires a StuckAtFault model")
        self.fault_model = fault_model
        self.layer_names = set(layer_names) if layer_names else None
        self.mode = mode
        self.rng = rng or np.random.default_rng()
        self._patterns: Dict[str, FaultPattern] = {}
        self.injection_count = 0
        self.resample_count = 0

    def _targets(self, layer: Optional[Layer]) -> bool:
        if layer is None:
            return False
        if self.layer_names is None:
            return True
        return layer.name in self.layer_names

    def __call__(self, tensor: QTensor, layer: Optional[Layer]) -> None:
        if not self._targets(layer):
            return
        if self.mode == "transient":
            self.fault_model.inject(tensor, self.rng)
        else:
            pattern = self._patterns.get(tensor.name)
            if pattern is not None and pattern.element_indices.max(initial=-1) >= tensor.size:
                self.resample_count += 1
                logger.warning(
                    "permanent fault pattern for buffer %r no longer fits "
                    "(max element %d >= buffer size %d, likely a smaller batch); "
                    "resampling fault sites (resample #%d)",
                    tensor.name,
                    int(pattern.element_indices.max()),
                    tensor.size,
                    self.resample_count,
                )
                pattern = None
            if pattern is None:
                pattern = self.fault_model.sample_pattern(tensor, self.rng)
                self._patterns[tensor.name] = pattern
            pattern.apply(tensor)
        self.injection_count += 1


class InputFaultInjector:
    """Buffer hook corrupting the input (feature-map) buffer each forward pass."""

    def __init__(
        self,
        fault_model: FaultModel,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.fault_model = fault_model
        self.rng = rng or np.random.default_rng()
        self.injection_count = 0

    def __call__(self, tensor: QTensor, layer: Optional[Layer]) -> None:
        if layer is not None:
            return
        self.fault_model.inject(tensor, self.rng)
        self.injection_count += 1


class ReplicaFanoutHook:
    """Adapts per-replica scalar buffer hooks to stacked batched buffers.

    The batched executor passes its hooks one ``(k, ...)`` stacked
    :class:`~repro.quant.qtensor.QTensor` covering the ``k`` active replicas
    of a forward pass, while the scalar injectors
    (:class:`ActivationFaultInjector`, :class:`InputFaultInjector`) expect
    one scalar-shaped buffer.  This hook slices the stack row by row, runs
    replica ``r``'s own injector on a scalar-shaped view of its row, and
    writes the mutated bits back — so each replica consumes its trial RNG
    and caches its permanent patterns exactly as the scalar executor would.

    Call :meth:`set_replicas` with the active replica indices before every
    forward pass (the batched rollout policy does this); row ``j`` of the
    stacked buffer then maps to ``hooks[indices[j]]``.
    """

    def __init__(self, hooks: Sequence) -> None:
        self.hooks = list(hooks)
        self._replicas = np.arange(len(self.hooks), dtype=np.intp)

    def set_replicas(self, indices: Sequence[int]) -> None:
        """Declare which replica each stacked row belongs to."""
        self._replicas = np.asarray(indices, dtype=np.intp)

    def __call__(self, tensor: QTensor, layer: Optional[Layer]) -> None:
        raw = tensor.raw
        if raw.shape[0] != self._replicas.size:
            raise ValueError(
                f"stacked buffer has {raw.shape[0]} rows for "
                f"{self._replicas.size} active replicas"
            )
        for j, replica in enumerate(self._replicas):
            row = QTensor.from_raw(raw[j], tensor.qformat, name=tensor.name)
            self.hooks[int(replica)](row, layer)
            raw[j] = row.raw
        tensor.raw = raw


def inject_weight_faults(
    executor: QuantizedExecutor,
    fault_model: FaultModel,
    selector: Optional[BufferSelector] = None,
    rng: Optional[np.random.Generator] = None,
) -> List[FaultPattern]:
    """Statically corrupt the weight buffers of a quantized executor.

    Transient faults in weights are injected statically since the weights are
    known after training (Sec. 3.3).  The executor's network is updated so
    the faulty values take effect on subsequent forward passes; call
    :meth:`QuantizedExecutor.restore_clean_weights` to undo.
    """
    selector = selector or BufferSelector.all_weights()
    rng = rng or np.random.default_rng()
    patterns: List[FaultPattern] = []

    def mutate(param_name: str, tensor: QTensor) -> None:
        if selector.matches(f"weight:{param_name}") or selector.matches(param_name):
            patterns.append(fault_model.inject(tensor, rng))

    executor.apply_weight_faults(mutate)
    return patterns
