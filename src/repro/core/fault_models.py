"""Hardware fault models (Sec. 3.2).

Two abstractions of physical defect mechanisms are implemented, following the
widely adopted models the paper builds on:

* **Transient bit-flips** — soft errors from particle strikes or voltage
  droops; each selected memory bit has its logical value inverted once.
* **Permanent stuck-at faults** — manufacturing defects that hold a bit at
  logic 0 (stuck-at-0) or logic 1 (stuck-at-1) for the lifetime of the run.
  A stuck-at fault only manifests as an error when the stored value differs
  from the stuck level, which is why the paper's bit-level sparsity analysis
  (Fig. 2b/2d) predicts stuck-at-1 to be far more damaging for NN weights.

Both models are parameterized by a *bit error rate* (BER): the fraction of
all bits in the targeted buffer that are faulty.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.sites import FaultPattern
from repro.quant.qtensor import QTensor

__all__ = ["FaultType", "FaultModel", "TransientBitFlip", "StuckAtFault", "make_fault_model"]


class FaultType(str, enum.Enum):
    """Enumeration of the fault types studied in the paper."""

    TRANSIENT = "transient"
    STUCK_AT_0 = "stuck-at-0"
    STUCK_AT_1 = "stuck-at-1"

    @property
    def is_permanent(self) -> bool:
        return self is not FaultType.TRANSIENT


@dataclass(frozen=True)
class FaultModel:
    """Base fault model: a fault type at a given bit error rate."""

    bit_error_rate: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.bit_error_rate <= 1.0:
            raise ValueError(
                f"bit_error_rate must be in [0, 1], got {self.bit_error_rate}"
            )

    @property
    def fault_type(self) -> FaultType:
        raise NotImplementedError

    def sample_pattern(self, tensor: QTensor, rng: np.random.Generator) -> FaultPattern:
        """Sample the concrete fault sites for one injection into ``tensor``."""
        raise NotImplementedError

    def inject(self, tensor: QTensor, rng: np.random.Generator) -> FaultPattern:
        """Sample sites and apply them to ``tensor`` in place."""
        pattern = self.sample_pattern(tensor, rng)
        pattern.apply(tensor)
        return pattern


@dataclass(frozen=True)
class TransientBitFlip(FaultModel):
    """Transient fault: each selected bit is flipped once."""

    @property
    def fault_type(self) -> FaultType:
        return FaultType.TRANSIENT

    def sample_pattern(self, tensor: QTensor, rng: np.random.Generator) -> FaultPattern:
        elements, bits = tensor.sample_fault_sites(self.bit_error_rate, rng)
        return FaultPattern(
            buffer_name=tensor.name,
            element_indices=elements,
            bit_positions=bits,
            stuck_value=None,
        )


@dataclass(frozen=True)
class StuckAtFault(FaultModel):
    """Permanent fault: selected bits are held at a fixed logic level."""

    stuck_value: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.stuck_value not in (0, 1):
            raise ValueError(f"stuck_value must be 0 or 1, got {self.stuck_value}")

    @property
    def fault_type(self) -> FaultType:
        return FaultType.STUCK_AT_1 if self.stuck_value else FaultType.STUCK_AT_0

    def sample_pattern(self, tensor: QTensor, rng: np.random.Generator) -> FaultPattern:
        elements, bits = tensor.sample_fault_sites(self.bit_error_rate, rng)
        return FaultPattern(
            buffer_name=tensor.name,
            element_indices=elements,
            bit_positions=bits,
            stuck_value=self.stuck_value,
        )


def make_fault_model(
    fault_type: FaultType | str, bit_error_rate: float
) -> FaultModel:
    """Factory: build a fault model from a :class:`FaultType` (or its value string)."""
    fault_type = FaultType(fault_type)
    if fault_type is FaultType.TRANSIENT:
        return TransientBitFlip(bit_error_rate)
    if fault_type is FaultType.STUCK_AT_0:
        return StuckAtFault(bit_error_rate, stuck_value=0)
    return StuckAtFault(bit_error_rate, stuck_value=1)
