"""Fault-injection campaign machinery.

A *campaign* repeats a fault-injection trial many times with independent
random seeds and aggregates the task-level outcomes (success / failure and a
scalar quality metric) with confidence intervals.  The paper repeats each
Grid World campaign 1000 times for a 95% confidence level within a 1% error
margin; the repetition count here is configurable (and can be overridden
globally through the ``REPRO_CAMPAIGN_REPS`` environment variable so the
benchmark harness can trade accuracy for runtime).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.metrics.statistics import mean_confidence_interval, wilson_confidence_interval

__all__ = ["TrialOutcome", "CampaignResult", "Campaign", "default_repetitions"]

#: Environment variable overriding campaign repetition counts everywhere.
REPS_ENV_VAR = "REPRO_CAMPAIGN_REPS"


def default_repetitions(fallback: int) -> int:
    """Campaign repetitions: the ``REPRO_CAMPAIGN_REPS`` override or ``fallback``."""
    value = os.environ.get(REPS_ENV_VAR)
    if value is None:
        return fallback
    try:
        parsed = int(value)
    except ValueError as exc:
        raise ValueError(f"{REPS_ENV_VAR} must be an integer, got {value!r}") from exc
    if parsed <= 0:
        raise ValueError(f"{REPS_ENV_VAR} must be positive, got {parsed}")
    return parsed


@dataclass(frozen=True)
class TrialOutcome:
    """Outcome of a single fault-injection trial."""

    success: Optional[bool] = None
    metric: Optional[float] = None
    extras: Dict[str, float] = field(default_factory=dict)


@dataclass
class CampaignResult:
    """Aggregated campaign statistics."""

    name: str
    outcomes: List[TrialOutcome] = field(default_factory=list)

    @property
    def repetitions(self) -> int:
        return len(self.outcomes)

    # -- success-rate statistics ---------------------------------------- #
    @property
    def num_successes(self) -> int:
        return sum(1 for o in self.outcomes if o.success)

    @property
    def success_rate(self) -> float:
        graded = [o for o in self.outcomes if o.success is not None]
        if not graded:
            raise ValueError(f"campaign {self.name!r} recorded no success outcomes")
        return sum(1 for o in graded if o.success) / len(graded)

    def success_confidence(self) -> Tuple[float, float]:
        graded = [o for o in self.outcomes if o.success is not None]
        return wilson_confidence_interval(sum(1 for o in graded if o.success), len(graded))

    # -- metric statistics ---------------------------------------------- #
    @property
    def metrics(self) -> np.ndarray:
        values = [o.metric for o in self.outcomes if o.metric is not None]
        return np.asarray(values, dtype=np.float64)

    @property
    def mean_metric(self) -> float:
        metrics = self.metrics
        if metrics.size == 0:
            raise ValueError(f"campaign {self.name!r} recorded no metric values")
        return float(metrics.mean())

    def metric_confidence(self) -> Tuple[float, float]:
        return mean_confidence_interval(self.metrics)

    def extras_mean(self, key: str) -> float:
        values = [o.extras[key] for o in self.outcomes if key in o.extras]
        if not values:
            raise KeyError(f"no trial recorded extra {key!r}")
        return float(np.mean(values))

    def summary(self) -> Dict[str, float]:
        """Compact summary for result tables."""
        out: Dict[str, float] = {"repetitions": self.repetitions}
        if any(o.success is not None for o in self.outcomes):
            out["success_rate"] = self.success_rate
            lo, hi = self.success_confidence()
            out["success_ci_low"], out["success_ci_high"] = lo, hi
        if self.metrics.size:
            out["mean_metric"] = self.mean_metric
        return out


#: A trial function receives an independent RNG and returns one outcome.
TrialFn = Callable[[np.random.Generator], TrialOutcome]


class Campaign:
    """Runs repeated, independently seeded fault-injection trials."""

    def __init__(self, name: str, repetitions: int, seed: int = 0) -> None:
        if repetitions <= 0:
            raise ValueError(f"repetitions must be positive, got {repetitions}")
        self.name = name
        self.repetitions = repetitions
        self.seed = seed

    def run(self, trial_fn: TrialFn) -> CampaignResult:
        """Execute the campaign and return the aggregated result."""
        result = CampaignResult(name=self.name)
        seeds = np.random.SeedSequence(self.seed).spawn(self.repetitions)
        for child in seeds:
            rng = np.random.default_rng(child)
            outcome = trial_fn(rng)
            if not isinstance(outcome, TrialOutcome):
                raise TypeError(
                    f"trial function must return TrialOutcome, got {type(outcome).__name__}"
                )
            result.outcomes.append(outcome)
        return result
