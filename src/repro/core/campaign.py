"""Fault-injection campaign machinery.

A *campaign* repeats a fault-injection trial many times with independent
random seeds and aggregates the task-level outcomes (success / failure and a
scalar quality metric) with confidence intervals.  The paper repeats each
Grid World campaign 1000 times for a 95% confidence level within a 1% error
margin; the repetition count here is configurable (and can be overridden
globally through the ``REPRO_CAMPAIGN_REPS`` environment variable so the
benchmark harness can trade accuracy for runtime).

Execution is delegated to a :class:`~repro.core.runner.CampaignRunner`:
the default :class:`~repro.core.runner.SerialRunner` preserves the original
in-process behaviour, :class:`~repro.core.runner.ParallelRunner` (selected
explicitly or through ``REPRO_CAMPAIGN_WORKERS``) fans trials out over a
process pool, and :class:`~repro.core.runner.BatchedRunner` (selected
explicitly or through ``REPRO_CAMPAIGN_BATCH``) evaluates batches of trials
through one vectorized pass when the trial function implements
``run_batch``.  Each trial's RNG is spawned from the campaign seed by
trial index (``SeedSequence.spawn``), so outcomes are bit-identical across
engines, worker counts and batch sizes.  Passing a
:class:`~repro.io.results.CampaignCheckpoint` to :meth:`Campaign.run`
streams outcomes to a JSONL file as they complete, and ``resume=True``
restarts an interrupted campaign from the trials already on disk.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.envvars import env_positive_int
from repro.metrics.statistics import mean_confidence_interval, wilson_confidence_interval
from repro.telemetry.bus import campaign_scope, default_bus
from repro.telemetry.events import CampaignFinished, CampaignProgress, CampaignStarted

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (io imports campaign)
    from repro.core.runner import CampaignRunner
    from repro.io.results import CampaignCheckpoint

__all__ = ["TrialOutcome", "CampaignResult", "Campaign", "default_repetitions"]

#: Environment variable overriding campaign repetition counts everywhere.
REPS_ENV_VAR = "REPRO_CAMPAIGN_REPS"


def default_repetitions(fallback: int) -> int:
    """Campaign repetitions: the ``REPRO_CAMPAIGN_REPS`` override or ``fallback``."""
    return env_positive_int(REPS_ENV_VAR, fallback)


@dataclass(frozen=True)
class TrialOutcome:
    """Outcome of a single fault-injection trial."""

    success: Optional[bool] = None
    metric: Optional[float] = None
    extras: Dict[str, float] = field(default_factory=dict)

    def to_json_dict(self) -> Dict[str, object]:
        """JSON-safe representation (used by campaign checkpoints)."""
        return {
            "success": self.success,
            "metric": self.metric,
            "extras": dict(self.extras),
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "TrialOutcome":
        success = data.get("success")
        metric = data.get("metric")
        return cls(
            success=None if success is None else bool(success),
            metric=None if metric is None else float(metric),
            extras={str(k): float(v) for k, v in dict(data.get("extras") or {}).items()},
        )


@dataclass
class CampaignResult:
    """Aggregated campaign statistics."""

    name: str
    outcomes: List[TrialOutcome] = field(default_factory=list)
    #: Trials freshly executed by this run (vs restored from a checkpoint).
    executed_trials: int = 0
    #: Trials restored from an existing checkpoint instead of re-executed.
    restored_trials: int = 0

    @property
    def repetitions(self) -> int:
        return len(self.outcomes)

    # -- success-rate statistics ---------------------------------------- #
    @property
    def graded_outcomes(self) -> List[TrialOutcome]:
        """Trials that recorded a pass/fail verdict (``success is not None``).

        Metric-only trials report ``success=None``; every success statistic
        (:attr:`num_successes`, :attr:`success_rate`,
        :meth:`success_confidence`) is computed over this graded subset so
        the counts and rates stay mutually consistent.
        """
        return [o for o in self.outcomes if o.success is not None]

    @property
    def num_graded(self) -> int:
        return len(self.graded_outcomes)

    @property
    def num_successes(self) -> int:
        return sum(1 for o in self.graded_outcomes if o.success)

    @property
    def success_rate(self) -> float:
        graded = self.graded_outcomes
        if not graded:
            raise ValueError(f"campaign {self.name!r} recorded no success outcomes")
        return self.num_successes / len(graded)

    def success_confidence(self) -> Tuple[float, float]:
        return wilson_confidence_interval(self.num_successes, self.num_graded)

    # -- metric statistics ---------------------------------------------- #
    @property
    def metrics(self) -> np.ndarray:
        values = [o.metric for o in self.outcomes if o.metric is not None]
        return np.asarray(values, dtype=np.float64)

    @property
    def mean_metric(self) -> float:
        metrics = self.metrics
        if metrics.size == 0:
            raise ValueError(f"campaign {self.name!r} recorded no metric values")
        return float(metrics.mean())

    def metric_confidence(self) -> Tuple[float, float]:
        return mean_confidence_interval(self.metrics)

    def extras_mean(self, key: str) -> float:
        values = [o.extras[key] for o in self.outcomes if key in o.extras]
        if not values:
            raise KeyError(f"no trial recorded extra {key!r}")
        return float(np.mean(values))

    def summary(self) -> Dict[str, float]:
        """Compact summary for result tables."""
        out: Dict[str, float] = {"repetitions": self.repetitions}
        if self.num_graded:
            out["success_rate"] = self.success_rate
            lo, hi = self.success_confidence()
            out["success_ci_low"], out["success_ci_high"] = lo, hi
        if self.metrics.size:
            out["mean_metric"] = self.mean_metric
        return out


#: A trial function receives an independent RNG and returns one outcome.
TrialFn = Callable[[np.random.Generator], TrialOutcome]

#: Progress callback: (trials completed so far, total trials).
ProgressFn = Callable[[int, int], None]


class Campaign:
    """Runs repeated, independently seeded fault-injection trials."""

    def __init__(self, name: str, repetitions: int, seed: int = 0) -> None:
        if repetitions <= 0:
            raise ValueError(f"repetitions must be positive, got {repetitions}")
        self.name = name
        self.repetitions = repetitions
        self.seed = seed

    def trial_seeds(self) -> List[np.random.SeedSequence]:
        """One ``SeedSequence`` child per trial, indexed by trial number."""
        return np.random.SeedSequence(self.seed).spawn(self.repetitions)

    def run(
        self,
        trial_fn: TrialFn,
        runner: Optional["CampaignRunner"] = None,
        progress: Optional[ProgressFn] = None,
        checkpoint: Union["CampaignCheckpoint", str, os.PathLike, None] = None,
        resume: bool = False,
    ) -> CampaignResult:
        """Execute the campaign and return the aggregated result.

        Parameters
        ----------
        runner:
            Execution engine; ``None`` resolves through
            :func:`repro.core.runner.make_runner` (serial unless
            ``REPRO_CAMPAIGN_WORKERS`` requests a pool).
        progress:
            Called with ``(completed, total)`` after every finished trial,
            counting trials restored from a checkpoint as already completed.
        checkpoint:
            A :class:`~repro.io.results.CampaignCheckpoint` (or a path to
            one) that receives each outcome as a JSONL line as it completes.
        resume:
            When true and the checkpoint already holds outcomes for this
            campaign, only the missing trials are executed.  When false any
            existing checkpoint file is overwritten.
        """
        from repro.core.runner import make_runner

        if runner is None:
            runner = make_runner()
        checkpoint = _coerce_checkpoint(checkpoint)
        if resume and checkpoint is None:
            raise ValueError(
                "resume=True requires a checkpoint; without one every trial "
                "would silently be recomputed"
            )

        seeds = self.trial_seeds()
        completed: Dict[int, TrialOutcome] = {}
        if checkpoint is not None:
            if resume:
                completed = checkpoint.load(self)
            else:
                checkpoint.reset(self)

        pending = [(i, seeds[i]) for i in range(self.repetitions) if i not in completed]
        total = self.repetitions
        done = total - len(pending)
        if progress is not None and done:
            progress(done, total)

        # Telemetry brackets the execution; `traced` is latched here so the
        # Started/Finished pair can never come apart if a subscriber attaches
        # or detaches mid-campaign.  Restored trials emit no trial events.
        bus = default_bus()
        traced = bus.active
        started_at = time.perf_counter()
        if traced:
            bus.emit(
                CampaignStarted(
                    campaign=self.name,
                    repetitions=total,
                    restored=done,
                    engine=getattr(runner, "engine_name", type(runner).__name__),
                )
            )

        def on_result(index: int, outcome: TrialOutcome) -> None:
            nonlocal done
            done += 1
            if checkpoint is not None:
                checkpoint.append(index, outcome)
            if traced:
                bus.emit(CampaignProgress(campaign=self.name, done=done, total=total))
            if progress is not None:
                progress(done, total)

        with campaign_scope(self.name):
            for index, outcome in runner.run_trials(trial_fn, pending, on_result=on_result):
                completed[index] = outcome

        result = CampaignResult(name=self.name)
        result.outcomes = [completed[i] for i in range(self.repetitions)]
        result.executed_trials = len(pending)
        result.restored_trials = total - len(pending)
        if traced:
            bus.emit(
                CampaignFinished(
                    campaign=self.name,
                    repetitions=total,
                    executed_trials=result.executed_trials,
                    restored_trials=result.restored_trials,
                    wall_time_s=time.perf_counter() - started_at,
                )
            )
        return result


def _coerce_checkpoint(checkpoint):
    if checkpoint is None:
        return None
    if isinstance(checkpoint, (str, os.PathLike)):
        from repro.io.results import CampaignCheckpoint

        return CampaignCheckpoint(checkpoint)
    return checkpoint
