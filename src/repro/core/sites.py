"""Fault-site addressing.

A fault is located by *which buffer*, *which element* and *which bit* it
affects.  :class:`FaultPattern` captures a concrete set of such sites (the
output of sampling a fault model at some bit error rate) so that permanent
faults can be re-applied to the same physical locations every time the
underlying memory is rewritten, and so experiments can report exactly what
was injected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.quant.bitops import OP_CLEAR, OP_FLIP, OP_SET
from repro.quant.qtensor import QTensor

__all__ = ["FaultPattern", "BufferSelector", "apply_patterns_stacked"]


@dataclass(frozen=True)
class FaultPattern:
    """A concrete set of faulty bits inside one named buffer.

    Attributes
    ----------
    buffer_name:
        Name of the targeted buffer (e.g. ``"qtable"`` or
        ``"weight:fc2.weight"``).
    element_indices / bit_positions:
        Parallel arrays addressing each faulty bit (flat element index and
        bit position, LSB = 0).
    stuck_value:
        ``None`` for transient bit-flips, 0 or 1 for stuck-at faults.
    """

    buffer_name: str
    element_indices: np.ndarray
    bit_positions: np.ndarray
    stuck_value: Optional[int] = None

    def __post_init__(self) -> None:
        elements = np.asarray(self.element_indices, dtype=np.int64)
        bits = np.asarray(self.bit_positions, dtype=np.int64)
        if elements.shape != bits.shape:
            raise ValueError("element_indices and bit_positions must have the same shape")
        if self.stuck_value not in (None, 0, 1):
            raise ValueError(f"stuck_value must be None, 0 or 1, got {self.stuck_value}")
        object.__setattr__(self, "element_indices", elements)
        object.__setattr__(self, "bit_positions", bits)

    @property
    def num_faults(self) -> int:
        """Number of faulty bits in this pattern."""
        return int(self.element_indices.size)

    @property
    def is_permanent(self) -> bool:
        return self.stuck_value is not None

    def apply(self, tensor: QTensor) -> None:
        """Apply the pattern to a buffer in place."""
        if self.num_faults == 0:
            return
        if self.element_indices.max(initial=0) >= tensor.size:
            raise ValueError(
                f"pattern addresses element {int(self.element_indices.max())} but "
                f"buffer {tensor.name!r} has only {tensor.size} elements"
            )
        if self.is_permanent:
            tensor.inject_stuck_at(self.element_indices, self.bit_positions, self.stuck_value)
        else:
            tensor.inject_bit_flips(self.element_indices, self.bit_positions)

    def describe(self) -> Dict[str, object]:
        """Summary dictionary for experiment logs."""
        kind = "transient" if not self.is_permanent else f"stuck-at-{self.stuck_value}"
        return {
            "buffer": self.buffer_name,
            "kind": kind,
            "num_faults": self.num_faults,
        }


def apply_patterns_stacked(
    patterns: Sequence[Optional[FaultPattern]], tensor: QTensor
) -> None:
    """Apply one fault pattern per replica to a stacked ``(B, ...)`` buffer.

    ``tensor`` holds B replicas of one logical buffer along its leading
    axis (see :meth:`~repro.quant.qtensor.QTensor.replicate`);
    ``patterns[r]`` addresses flat elements of replica ``r``'s *unit*
    buffer, exactly as it would address the scalar buffer.  ``None``
    entries (and empty patterns) leave their replica untouched.

    All B patterns — transient and stuck-at alike — are fused into one
    site list with per-site op codes and applied through a single
    :meth:`~repro.quant.qtensor.QTensor.inject_bit_ops` pass (one buffer
    copy + one scatter, instead of one per fault kind).  Each replica's
    sites land in its own disjoint flat range, so the result is
    bit-identical to applying every pattern to its replica's slice on its
    own.
    """
    if tensor.shape == () or tensor.shape[0] != len(patterns):
        raise ValueError(
            f"stacked buffer {tensor.name!r} has leading axis "
            f"{tensor.shape[0] if tensor.shape else 'none'} but "
            f"{len(patterns)} patterns were given"
        )
    n_replicas = len(patterns)
    unit_size = tensor.size // n_replicas

    op_for_stuck = {None: OP_FLIP, 1: OP_SET, 0: OP_CLEAR}
    all_elements: List[np.ndarray] = []
    all_bits: List[np.ndarray] = []
    all_ops: List[np.ndarray] = []
    for replica, pattern in enumerate(patterns):
        if pattern is None or pattern.num_faults == 0:
            continue
        if pattern.element_indices.max(initial=0) >= unit_size:
            raise ValueError(
                f"pattern for replica {replica} addresses element "
                f"{int(pattern.element_indices.max())} but each replica of "
                f"{tensor.name!r} has only {unit_size} elements"
            )
        all_elements.append(pattern.element_indices + replica * unit_size)
        all_bits.append(pattern.bit_positions)
        all_ops.append(
            np.full(pattern.num_faults, op_for_stuck[pattern.stuck_value], dtype=np.int64)
        )

    if all_elements:
        tensor.inject_bit_ops(
            np.concatenate(all_elements),
            np.concatenate(all_bits),
            np.concatenate(all_ops),
        )


@dataclass
class BufferSelector:
    """Selects which buffers a fault model targets.

    Buffers can be selected by exact name, by prefix (e.g. ``"weight:"`` for
    all weight buffers), by layer name (e.g. ``"fc2"``), or by an arbitrary
    predicate.  An empty selector matches every buffer.
    """

    names: Sequence[str] = field(default_factory=tuple)
    prefixes: Sequence[str] = field(default_factory=tuple)
    layers: Sequence[str] = field(default_factory=tuple)
    predicate: Optional[Callable[[str], bool]] = None

    def matches(self, buffer_name: str) -> bool:
        if not (self.names or self.prefixes or self.layers or self.predicate):
            return True
        if buffer_name in self.names:
            return True
        if any(buffer_name.startswith(prefix) for prefix in self.prefixes):
            return True
        for layer in self.layers:
            # Weight buffers are named "weight:<layer>.<param>",
            # activation buffers "activation:<layer>".
            if f":{layer}." in buffer_name or buffer_name.endswith(f":{layer}"):
                return True
        if self.predicate is not None and self.predicate(buffer_name):
            return True
        return False

    def select(self, buffers: Dict[str, QTensor]) -> Dict[str, QTensor]:
        """Subset of ``buffers`` matching this selector (raises if empty)."""
        selected = {name: t for name, t in buffers.items() if self.matches(name)}
        if not selected:
            raise ValueError(
                f"selector matched no buffers; available: {sorted(buffers)}"
            )
        return selected

    @classmethod
    def all_weights(cls) -> "BufferSelector":
        """Every weight buffer of an NN policy."""
        return cls(prefixes=("weight:",))

    @classmethod
    def for_layer(cls, layer_name: str) -> "BufferSelector":
        """Weight/activation buffers belonging to one named layer."""
        return cls(layers=(layer_name,))

    @classmethod
    def by_name(cls, *names: str) -> "BufferSelector":
        return cls(names=tuple(names))
