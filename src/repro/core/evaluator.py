"""Batched fault-injected inference evaluation.

:class:`BatchedEvaluator` is the orchestration layer of the batched
inference-campaign engine: it evaluates B *replicas* of one trained policy —
each carrying an independently sampled fault pattern — through a single
vectorized pipeline:

* the replicas' quantized weight buffers live as stacked ``(B, ...)``
  tensors in a :class:`~repro.nn.buffers.BatchedQuantizedExecutor`;
* the B fault patterns are applied with one vectorized bit operation per
  buffer (:func:`~repro.core.sites.apply_patterns_stacked`);
* forward passes evaluate all replicas through one stacked numpy call per
  layer, with the same per-layer activation quantization as the scalar
  :class:`~repro.nn.buffers.QuantizedExecutor`.

The engine is *differentially exact*: every replica's Q-values (and hence
greedy actions, episode trajectories and campaign outcomes) are
bit-identical to evaluating that replica's faults through the scalar
executor.  Fault sites are still sampled per replica from that replica's
own trial RNG, in the same buffer order the scalar path samples them, so a
batched campaign consumes each trial's RNG stream exactly like a serial
campaign does.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import kernels
from repro.core.fault_models import FaultModel
from repro.core.sites import BufferSelector, FaultPattern, apply_patterns_stacked
from repro.nn.buffers import BatchedQuantizedExecutor, weight_buffer_name
from repro.nn.network import Sequential
from repro.quant.qformat import QFormat
from repro.quant.qtensor import QTensor

__all__ = ["BatchedEvaluator"]


class BatchedEvaluator:
    """Evaluates B fault-injected replicas of a quantized policy at once.

    Parameters
    ----------
    network:
        The trained policy network (never mutated by the evaluator).
    qformat:
        Fixed-point format of the accelerator buffers.
    n_replicas:
        Number of replicas B evaluated together.  A batched campaign maps
        one campaign trial onto one replica, so B is the campaign engine's
        ``batch_size`` (ragged final batches simply build a smaller
        evaluator).
    """

    def __init__(self, network: Sequential, qformat: QFormat, n_replicas: int) -> None:
        self.network = network
        self.qformat = qformat
        # Compile (or load from the on-disk cache) the active backend's
        # kernels before the campaign's timed loops touch them; memoized per
        # process, and a no-op on the numpy reference backend.
        kernels.warm_up()
        self.executor = BatchedQuantizedExecutor(network, qformat, n_replicas)

    @property
    def n_replicas(self) -> int:
        return self.executor.n_replicas

    def restore_clean_weights(self) -> None:
        """Undo injected weight faults (see ``BatchedQuantizedExecutor``)."""
        self.executor.restore_clean_weights()

    # ------------------------------------------------------------------ #
    # Fault injection
    # ------------------------------------------------------------------ #
    def inject_weight_faults(
        self,
        fault_model: FaultModel,
        rngs: Sequence[np.random.Generator],
        selector: Optional[BufferSelector] = None,
    ) -> Dict[str, List[FaultPattern]]:
        """Sample and apply one independent fault pattern per replica.

        ``rngs[r]`` is replica ``r``'s trial generator.  For every selected
        weight buffer — visited in the same order the scalar executor visits
        them — a pattern is sampled per replica from that replica's
        generator, and the B patterns are then applied to the stacked buffer
        in one vectorized bit operation.  Each replica's RNG consumption and
        resulting buffer bits exactly match the scalar
        ``executor.apply_weight_faults(lambda name, t: model.inject(t, rng))``
        idiom used by the serial campaign paths.

        Returns the sampled patterns keyed by buffer name (one list entry
        per replica), so permanent faults can be re-applied after rewrites
        with :func:`~repro.core.sites.apply_patterns_stacked`.
        """
        if len(rngs) != self.n_replicas:
            raise ValueError(
                f"got {len(rngs)} generators for {self.n_replicas} replicas"
            )
        selector = selector or BufferSelector()
        all_patterns: Dict[str, List[FaultPattern]] = {}

        def mutator(param_name: str, stacked: QTensor) -> None:
            buffer_name = weight_buffer_name(param_name)
            if not (selector.matches(buffer_name) or selector.matches(param_name)):
                return
            template = self.executor.unit_buffers[buffer_name]
            patterns = [fault_model.sample_pattern(template, rng) for rng in rngs]
            apply_patterns_stacked(patterns, stacked)
            all_patterns[buffer_name] = patterns

        self.executor.apply_weight_faults(mutator)
        return all_patterns

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    def forward(
        self, x: np.ndarray, replicas: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Quantized stacked forward pass (see ``BatchedQuantizedExecutor``)."""
        return self.executor.forward(x, replicas=replicas)

    def greedy_actions(
        self, x: np.ndarray, replicas: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Greedy action per replica: ``argmax`` over each replica's Q-row.

        ``x`` stacks each replica's encoded state as ``(k, 1, features)``;
        the result is the ``int(np.argmax(q))`` the scalar inference loop
        computes, for every replica at once.
        """
        q = self.forward(x, replicas=replicas)
        return q.reshape(q.shape[0], -1).argmax(axis=1)
