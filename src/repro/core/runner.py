"""Campaign execution engines (serial and multiprocess).

A :class:`CampaignRunner` executes the independently seeded trials of a
:class:`~repro.core.campaign.Campaign`.  Two engines are provided:

* :class:`SerialRunner` — runs trials in-process, in index order (the
  original ``Campaign.run`` behaviour and the default).
* :class:`ParallelRunner` — fans trials out over a ``multiprocessing`` pool.
  Every trial draws its RNG from its *own* ``SeedSequence`` child, spawned
  from the campaign seed by trial index, so the outcomes are bit-identical
  to a serial run regardless of worker count or completion order.

Trials are scheduled in chunks to amortize inter-process messaging, results
are streamed back through an ``on_result`` callback (which is how campaign
checkpoints are written incrementally), and a trial that raises inside a
worker surfaces in the parent as :class:`TrialExecutionError` carrying the
trial index and the worker traceback.

The default worker count is read from the ``REPRO_CAMPAIGN_WORKERS``
environment variable (``"auto"`` means one worker per CPU), mirroring how
``REPRO_CAMPAIGN_REPS`` controls repetition counts.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import traceback
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "TrialExecutionError",
    "CampaignRunner",
    "SerialRunner",
    "ParallelRunner",
    "default_workers",
    "parse_worker_count",
    "make_runner",
    "WORKERS_ENV_VAR",
]

#: Environment variable selecting the default campaign worker count.
WORKERS_ENV_VAR = "REPRO_CAMPAIGN_WORKERS"

#: A scheduled trial: (trial index, seed sequence for that trial).
TrialTask = Tuple[int, np.random.SeedSequence]

#: Callback fired as each trial completes: (trial index, outcome).
ResultCallback = Callable[[int, "TrialOutcome"], None]


def parse_worker_count(value: Union[str, int], what: str = "workers") -> int:
    """Parse a worker count: a positive integer or ``"auto"`` (one per CPU)."""
    if not isinstance(value, int):
        if str(value).strip().lower() == "auto":
            return os.cpu_count() or 1
        try:
            value = int(value)
        except ValueError as exc:
            raise ValueError(
                f"{what} must be a positive integer or 'auto', got {value!r}"
            ) from exc
    if value <= 0:
        raise ValueError(f"{what} must be positive, got {value}")
    return value


def default_workers() -> int:
    """Default campaign worker count: ``REPRO_CAMPAIGN_WORKERS`` or 1."""
    value = os.environ.get(WORKERS_ENV_VAR)
    if value is None:
        return 1
    return parse_worker_count(value, what=WORKERS_ENV_VAR)


def make_runner(workers: Optional[int] = None) -> "CampaignRunner":
    """Build a runner for ``workers`` processes (``None`` → environment default)."""
    if workers is None:
        workers = default_workers()
    if workers <= 0:
        raise ValueError(f"workers must be positive, got {workers}")
    if workers == 1:
        return SerialRunner()
    return ParallelRunner(workers=workers)


class TrialExecutionError(RuntimeError):
    """A campaign trial raised; carries the trial index and worker traceback."""

    def __init__(self, trial_index: int, message: str, worker_traceback: str = "") -> None:
        super().__init__(f"trial {trial_index} failed: {message}")
        self.trial_index = trial_index
        self.worker_traceback = worker_traceback


def _validated(outcome, trial_index: int):
    from repro.core.campaign import TrialOutcome

    if not isinstance(outcome, TrialOutcome):
        raise TypeError(
            f"trial function must return TrialOutcome, got {type(outcome).__name__} "
            f"(trial {trial_index})"
        )
    return outcome


class CampaignRunner:
    """Executes a batch of independently seeded campaign trials."""

    def run_trials(
        self,
        trial_fn,
        tasks: Sequence[TrialTask],
        on_result: Optional[ResultCallback] = None,
    ) -> List[Tuple[int, "TrialOutcome"]]:
        """Run every ``(index, seed)`` task; return ``(index, outcome)`` pairs.

        The returned list is ordered by trial index.  ``on_result`` is called
        once per trial in *completion* order (which for parallel engines may
        differ from index order).
        """
        raise NotImplementedError


class SerialRunner(CampaignRunner):
    """Runs trials one after another in the calling process."""

    def run_trials(
        self,
        trial_fn,
        tasks: Sequence[TrialTask],
        on_result: Optional[ResultCallback] = None,
    ) -> List[Tuple[int, "TrialOutcome"]]:
        results: List[Tuple[int, "TrialOutcome"]] = []
        for index, seed in tasks:
            rng = np.random.default_rng(seed)
            outcome = _validated(trial_fn(rng), index)
            results.append((index, outcome))
            if on_result is not None:
                on_result(index, outcome)
        return results


# --------------------------------------------------------------------------- #
# Multiprocess engine
# --------------------------------------------------------------------------- #
# The trial function is installed once per worker by the pool initializer.
# Under the (default) fork start method the closure travels to the worker via
# the process image rather than pickle, so arbitrary trial closures work; the
# spawn fallback requires a picklable trial function.
_WORKER_TRIAL_FN = None


def _init_worker(trial_fn) -> None:
    global _WORKER_TRIAL_FN
    _WORKER_TRIAL_FN = trial_fn


def _run_remote_trial(task: TrialTask):
    """Worker-side trial execution; exceptions are shipped back as data."""
    index, seed = task
    try:
        rng = np.random.default_rng(seed)
        outcome = _validated(_WORKER_TRIAL_FN(rng), index)
        return index, outcome, None
    except Exception as exc:  # surfaced as TrialExecutionError in the parent;
        # KeyboardInterrupt/SystemExit must keep killing the worker normally.
        return index, None, (f"{type(exc).__name__}: {exc}", traceback.format_exc())


class ParallelRunner(CampaignRunner):
    """Runs trials on a ``multiprocessing`` pool.

    Parameters
    ----------
    workers:
        Process count (``None`` → one per CPU).
    chunk_size:
        Trials handed to a worker per scheduling round; ``None`` picks a
        chunk that gives each worker several rounds (for progress reporting)
        while amortizing IPC.
    start_method:
        ``multiprocessing`` start method.  Defaults to ``"fork"`` on Linux
        (required for closure trial functions) and to the platform default
        elsewhere — forking is unsafe on macOS, whose default is ``"spawn"``,
        which needs picklable trial functions.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if workers is not None and workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.workers = workers or (os.cpu_count() or 1)
        self.chunk_size = chunk_size
        if start_method is None:
            if sys.platform.startswith("linux") and "fork" in multiprocessing.get_all_start_methods():
                start_method = "fork"
            else:
                start_method = multiprocessing.get_start_method()
        self.start_method = start_method

    def _resolve_chunk_size(self, n_tasks: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        # ~4 scheduling rounds per worker keeps the pool busy near the tail
        # of a campaign while still batching IPC.
        return max(1, n_tasks // (self.workers * 4))

    def run_trials(
        self,
        trial_fn,
        tasks: Sequence[TrialTask],
        on_result: Optional[ResultCallback] = None,
    ) -> List[Tuple[int, "TrialOutcome"]]:
        tasks = list(tasks)
        if not tasks:
            return []
        ctx = multiprocessing.get_context(self.start_method)
        chunk = self._resolve_chunk_size(len(tasks))
        results: List[Tuple[int, "TrialOutcome"]] = []
        pool = ctx.Pool(
            processes=min(self.workers, len(tasks)),
            initializer=_init_worker,
            initargs=(trial_fn,),
        )
        try:
            for index, outcome, error in pool.imap_unordered(
                _run_remote_trial, tasks, chunksize=chunk
            ):
                if error is not None:
                    message, worker_tb = error
                    raise TrialExecutionError(index, message, worker_tb)
                results.append((index, outcome))
                if on_result is not None:
                    on_result(index, outcome)
        finally:
            pool.terminate()
            pool.join()
        results.sort(key=lambda pair: pair[0])
        return results
