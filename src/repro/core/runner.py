"""Campaign execution engines (serial, multiprocess, batched-vectorized).

A :class:`CampaignRunner` executes the independently seeded trials of a
:class:`~repro.core.campaign.Campaign`.  Three engines are provided:

* :class:`SerialRunner` — runs trials in-process, in index order (the
  original ``Campaign.run`` behaviour and the default).
* :class:`ParallelRunner` — fans trials out over a ``multiprocessing`` pool.
  Every trial draws its RNG from its *own* ``SeedSequence`` child, spawned
  from the campaign seed by trial index, so the outcomes are bit-identical
  to a serial run regardless of worker count or completion order.
* :class:`BatchedRunner` — groups trials into fixed-size batches and, when
  the trial function exposes a vectorized ``run_batch(rngs)`` implementation
  (see :func:`supports_batching`), evaluates the whole batch through one set
  of stacked numpy operations.  Trial functions without ``run_batch`` fall
  back to scalar execution inside each batch, so the engine is always safe
  to select.  Batching composes with multiprocessing: ``workers > 1`` fans
  the batches out over a pool, with each worker running vectorized batches.

Trials are scheduled in chunks to amortize inter-process messaging, results
are streamed back through an ``on_result`` callback (which is how campaign
checkpoints are written incrementally), and a trial that raises inside a
worker surfaces in the parent as :class:`TrialExecutionError` carrying the
trial index and the worker traceback.

The default worker count is read from the ``REPRO_CAMPAIGN_WORKERS``
environment variable (``"auto"`` means one worker per CPU) and the default
batch size from ``REPRO_CAMPAIGN_BATCH``, mirroring how
``REPRO_CAMPAIGN_REPS`` controls repetition counts.  All engines are
bit-identical for the same campaign seed: per-trial ``SeedSequence``
children make every trial a pure function of its own RNG, and the batched
numpy paths reproduce the scalar paths' floating-point operations exactly.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
import traceback
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.envvars import env_positive_int, parse_positive_int
from repro.telemetry.bus import current_campaign, default_bus, reset_default_bus
from repro.telemetry.events import TrialFinished, TrialStarted

__all__ = [
    "TrialExecutionError",
    "CampaignRunner",
    "SerialRunner",
    "ParallelRunner",
    "BatchedRunner",
    "supports_batching",
    "default_workers",
    "default_batch_size",
    "executed_trial_count",
    "record_executed_trials",
    "parse_worker_count",
    "parse_batch_size",
    "make_runner",
    "WORKERS_ENV_VAR",
    "BATCH_ENV_VAR",
]

#: Environment variable selecting the default campaign worker count.
WORKERS_ENV_VAR = "REPRO_CAMPAIGN_WORKERS"

#: Environment variable selecting the default campaign batch size.
BATCH_ENV_VAR = "REPRO_CAMPAIGN_BATCH"

#: A scheduled trial: (trial index, seed sequence for that trial).
TrialTask = Tuple[int, np.random.SeedSequence]

#: Callback fired as each trial completes: (trial index, outcome).
ResultCallback = Callable[[int, "TrialOutcome"], None]


def parse_worker_count(value: Union[str, int], what: str = "workers") -> int:
    """Parse a worker count: a positive integer or ``"auto"`` (one per CPU)."""
    return parse_positive_int(value, what, allow_auto=True)


def default_workers() -> int:
    """Default campaign worker count: ``REPRO_CAMPAIGN_WORKERS`` or 1."""
    return env_positive_int(WORKERS_ENV_VAR, 1, allow_auto=True)


def parse_batch_size(value: Union[str, int], what: str = "batch_size") -> int:
    """Parse a batch size: a positive integer."""
    return parse_positive_int(value, what)


def default_batch_size() -> int:
    """Default campaign batch size: ``REPRO_CAMPAIGN_BATCH`` or 1."""
    return env_positive_int(BATCH_ENV_VAR, 1)


def make_runner(
    workers: Optional[int] = None, batch_size: Optional[int] = None
) -> "CampaignRunner":
    """Build a runner from the worker-count and batch-size knobs.

    ``None`` resolves each knob through its environment variable
    (``REPRO_CAMPAIGN_WORKERS`` / ``REPRO_CAMPAIGN_BATCH``, both defaulting
    to 1).  ``batch_size > 1`` selects :class:`BatchedRunner` (which itself
    composes with ``workers``); otherwise ``workers`` picks between
    :class:`SerialRunner` and :class:`ParallelRunner`.
    """
    if workers is None:
        workers = default_workers()
    if workers <= 0:
        raise ValueError(f"workers must be positive, got {workers}")
    if batch_size is None:
        batch_size = default_batch_size()
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    if batch_size > 1:
        return BatchedRunner(batch_size=batch_size, workers=workers)
    if workers == 1:
        return SerialRunner()
    return ParallelRunner(workers=workers)


class _ExecutionStats:
    """Process-wide count of campaign trials actually *executed*.

    Every engine bumps the counter (in the parent process) once per freshly
    computed trial outcome; trials restored from a checkpoint or served from
    the artifact store never touch it.  That makes warm-cache guarantees
    testable: the sweep cache guardrail measures the counter delta around a
    warm re-run and fails if any trial executed at all.
    """

    __slots__ = ("trials_executed",)

    def __init__(self) -> None:
        self.trials_executed = 0

    def record(self, n: int = 1) -> None:
        self.trials_executed += n


EXECUTION_STATS = _ExecutionStats()


def executed_trial_count() -> int:
    """Monotonic count of campaign trials executed in this process.

    Measure a delta around a code path to count the trials it computed::

        before = executed_trial_count()
        api.sweep(...)
        assert executed_trial_count() - before == 0   # 100% cache hits
    """
    return EXECUTION_STATS.trials_executed


def record_executed_trials(n: int) -> None:
    """Fold externally executed trials into this process's counter.

    The campaign engines bump the counter themselves, but they can only see
    trials executed in *this* process (or its campaign pools).  The
    distributed sweep runner executes whole points in worker processes and
    ships each point's executed-trial count back in its result record; the
    coordinator folds those counts in here so ``executed_trial_count()``
    deltas — which the warm-cache guardrails are built on — stay truthful
    regardless of where the trials physically ran.
    """
    if n < 0:
        raise ValueError(f"executed trial count must be >= 0, got {n}")
    EXECUTION_STATS.record(n)


def supports_batching(trial_fn) -> bool:
    """Whether a trial function exposes a vectorized ``run_batch(rngs)``.

    A batchable trial function is an ordinary scalar trial callable that
    additionally implements ``run_batch(rngs)``, taking one independent
    ``np.random.Generator`` per trial and returning the matching list of
    ``TrialOutcome``.  The contract is differential: ``run_batch([r0, ..])``
    must produce outcomes bit-identical to calling the scalar path once per
    generator.
    """
    return callable(getattr(trial_fn, "run_batch", None))


class TrialExecutionError(RuntimeError):
    """A campaign trial raised; carries the trial index and worker traceback."""

    def __init__(self, trial_index: int, message: str, worker_traceback: str = "") -> None:
        super().__init__(f"trial {trial_index} failed: {message}")
        self.trial_index = trial_index
        self.worker_traceback = worker_traceback


def _validated(outcome, trial_index: int):
    from repro.core.campaign import TrialOutcome

    if not isinstance(outcome, TrialOutcome):
        raise TypeError(
            f"trial function must return TrialOutcome, got {type(outcome).__name__} "
            f"(trial {trial_index})"
        )
    return outcome


def _emit_trial_pair(
    bus,
    index: int,
    outcome,
    engine: str,
    wall_time_s: float,
    batched: bool = False,
) -> None:
    """Emit the TrialStarted/TrialFinished pair for one completed trial.

    Used by the pool-backed engines, where the parent only learns of a
    trial when its result arrives: the pair is emitted back-to-back at
    receipt time, with ``wall_time_s`` measured inside the worker.  Callers
    must have checked ``bus.active`` already.
    """
    campaign = current_campaign()
    bus.emit(TrialStarted(campaign=campaign, trial=index, engine=engine))
    bus.emit(
        TrialFinished(
            campaign=campaign,
            trial=index,
            engine=engine,
            wall_time_s=wall_time_s,
            batched=batched,
            success=outcome.success,
            metric=outcome.metric,
        )
    )


class CampaignRunner:
    """Executes a batch of independently seeded campaign trials."""

    #: Engine discriminator stamped onto trial telemetry events.
    engine_name = ""

    def run_trials(
        self,
        trial_fn,
        tasks: Sequence[TrialTask],
        on_result: Optional[ResultCallback] = None,
    ) -> List[Tuple[int, "TrialOutcome"]]:
        """Run every ``(index, seed)`` task; return ``(index, outcome)`` pairs.

        The returned list is ordered by trial index.  ``on_result`` is called
        once per trial in *completion* order (which for parallel engines may
        differ from index order).
        """
        raise NotImplementedError


class SerialRunner(CampaignRunner):
    """Runs trials one after another in the calling process."""

    engine_name = "serial"

    def run_trials(
        self,
        trial_fn,
        tasks: Sequence[TrialTask],
        on_result: Optional[ResultCallback] = None,
    ) -> List[Tuple[int, "TrialOutcome"]]:
        bus = default_bus()
        campaign = current_campaign() if bus.active else ""
        results: List[Tuple[int, "TrialOutcome"]] = []
        for index, seed in tasks:
            # Latch the active state per trial so a subscriber attached or
            # detached mid-trial can never produce an unpaired event.
            active = bus.active
            if active:
                bus.emit(
                    TrialStarted(campaign=campaign, trial=index, engine=self.engine_name)
                )
                started = time.perf_counter()
            rng = np.random.default_rng(seed)
            outcome = _validated(trial_fn(rng), index)
            EXECUTION_STATS.record()
            if active:
                bus.emit(
                    TrialFinished(
                        campaign=campaign,
                        trial=index,
                        engine=self.engine_name,
                        wall_time_s=time.perf_counter() - started,
                        success=outcome.success,
                        metric=outcome.metric,
                    )
                )
            results.append((index, outcome))
            if on_result is not None:
                on_result(index, outcome)
        return results


# --------------------------------------------------------------------------- #
# Multiprocess engine
# --------------------------------------------------------------------------- #
# The trial function is installed once per worker by the pool initializer.
# Under the (default) fork start method the closure travels to the worker via
# the process image rather than pickle, so arbitrary trial closures work; the
# spawn fallback requires a picklable trial function.
_WORKER_TRIAL_FN = None


def _init_worker(trial_fn) -> None:
    global _WORKER_TRIAL_FN
    _WORKER_TRIAL_FN = trial_fn
    # Forked workers inherit the parent's bus *and its subscribers* — a
    # parent TraceSink delivering from many workers would interleave writes
    # into one file.  Workers measure wall times and ship them back instead;
    # the parent emits the events.
    reset_default_bus()


def _resolve_start_method(start_method: Optional[str]) -> str:
    """Default ``multiprocessing`` start method for the campaign engines.

    ``"fork"`` on Linux (required for closure trial functions), the platform
    default elsewhere — forking is unsafe on macOS, whose default is
    ``"spawn"``, which needs picklable trial functions.  Shared by every
    pool-backed runner so the platform heuristic cannot drift between them.
    """
    if start_method is not None:
        return start_method
    if sys.platform.startswith("linux") and "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return multiprocessing.get_start_method()


def _run_on_pool(
    start_method: str,
    processes: int,
    trial_fn,
    remote_fn,
    items: Sequence,
    chunksize: int,
    handle_result: Callable,
) -> None:
    """Run ``remote_fn`` over ``items`` on a worker pool, streaming results.

    Owns the pool lifecycle (initializer installing the trial function,
    unordered streaming, terminate/join cleanup) for both the per-trial and
    per-batch engines; ``handle_result`` receives each worker result and may
    raise to abort the campaign.
    """
    ctx = multiprocessing.get_context(start_method)
    pool = ctx.Pool(
        processes=processes,
        initializer=_init_worker,
        initargs=(trial_fn,),
    )
    try:
        for result in pool.imap_unordered(remote_fn, items, chunksize=chunksize):
            handle_result(result)
    finally:
        pool.terminate()
        pool.join()


def _run_remote_trial(task: TrialTask):
    """Worker-side trial execution; exceptions are shipped back as data.

    Returns ``(index, outcome, error, wall_time_s)`` — the wall time is
    measured here, in the worker, and shipped back so the parent can emit
    accurate trial telemetry without subscribing anything in the worker.
    """
    index, seed = task
    started = time.perf_counter()
    try:
        rng = np.random.default_rng(seed)
        outcome = _validated(_WORKER_TRIAL_FN(rng), index)
        return index, outcome, None, time.perf_counter() - started
    except Exception as exc:  # surfaced as TrialExecutionError in the parent;
        # KeyboardInterrupt/SystemExit must keep killing the worker normally.
        return (
            index,
            None,
            (f"{type(exc).__name__}: {exc}", traceback.format_exc()),
            time.perf_counter() - started,
        )


def _execute_batch(trial_fn, batch: Sequence[TrialTask]) -> List[Tuple[int, "TrialOutcome"]]:
    """Run one batch of trials, vectorized when the trial function allows it.

    Each trial still receives a generator built from its own ``SeedSequence``
    child, so outcomes are independent of how the campaign was batched.
    """
    indices = [index for index, _ in batch]
    rngs = [np.random.default_rng(seed) for _, seed in batch]
    if supports_batching(trial_fn):
        outcomes = trial_fn.run_batch(rngs)
        outcomes = list(outcomes)
        if len(outcomes) != len(batch):
            raise ValueError(
                f"run_batch returned {len(outcomes)} outcomes for a batch of "
                f"{len(batch)} trials (indices {indices[0]}..{indices[-1]})"
            )
        return [
            (index, _validated(outcome, index))
            for index, outcome in zip(indices, outcomes)
        ]
    return [
        (index, _validated(trial_fn(rng), index))
        for index, rng in zip(indices, rngs)
    ]


def _run_remote_batch(batch: Sequence[TrialTask]):
    """Worker-side batch execution; exceptions are shipped back as data.

    Returns ``(results, error, batch_wall_s)`` — the whole-batch wall time
    travels back so the parent can amortize it over the batch when emitting
    per-trial telemetry (a vectorized batch has no per-trial wall time).
    """
    started = time.perf_counter()
    if not supports_batching(_WORKER_TRIAL_FN):
        # Scalar fallback inside the batch: run trial by trial so a failure
        # is attributed to the exact trial that raised.
        results = []
        for task in batch:
            index, outcome, error, _wall = _run_remote_trial(task)
            if error is not None:
                return None, (index, error[0], error[1]), time.perf_counter() - started
            results.append((index, outcome))
        return results, None, time.perf_counter() - started
    try:
        return _execute_batch(_WORKER_TRIAL_FN, batch), None, time.perf_counter() - started
    except Exception as exc:
        # A vectorized failure cannot be pinned on one trial; report the
        # first index of the batch alongside the worker traceback.
        return (
            None,
            (batch[0][0], f"{type(exc).__name__}: {exc}", traceback.format_exc()),
            time.perf_counter() - started,
        )


class ParallelRunner(CampaignRunner):
    """Runs trials on a ``multiprocessing`` pool.

    Parameters
    ----------
    workers:
        Process count (``None`` → one per CPU).
    chunk_size:
        Trials handed to a worker per scheduling round; ``None`` picks a
        chunk that gives each worker several rounds (for progress reporting)
        while amortizing IPC.
    start_method:
        ``multiprocessing`` start method.  Defaults to ``"fork"`` on Linux
        (required for closure trial functions) and to the platform default
        elsewhere — forking is unsafe on macOS, whose default is ``"spawn"``,
        which needs picklable trial functions.
    """

    engine_name = "parallel"

    def __init__(
        self,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if workers is not None and workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.workers = workers or (os.cpu_count() or 1)
        self.chunk_size = chunk_size
        self.start_method = _resolve_start_method(start_method)

    def _resolve_chunk_size(self, n_tasks: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        # ~4 scheduling rounds per worker keeps the pool busy near the tail
        # of a campaign while still batching IPC.
        return max(1, n_tasks // (self.workers * 4))

    def run_trials(
        self,
        trial_fn,
        tasks: Sequence[TrialTask],
        on_result: Optional[ResultCallback] = None,
    ) -> List[Tuple[int, "TrialOutcome"]]:
        tasks = list(tasks)
        if not tasks:
            return []
        bus = default_bus()
        results: List[Tuple[int, "TrialOutcome"]] = []

        def handle(result) -> None:
            index, outcome, error, wall_time_s = result
            if error is not None:
                message, worker_tb = error
                raise TrialExecutionError(index, message, worker_tb)
            EXECUTION_STATS.record()
            if bus.active:
                _emit_trial_pair(bus, index, outcome, self.engine_name, wall_time_s)
            results.append((index, outcome))
            if on_result is not None:
                on_result(index, outcome)

        _run_on_pool(
            self.start_method,
            min(self.workers, len(tasks)),
            trial_fn,
            _run_remote_trial,
            tasks,
            self._resolve_chunk_size(len(tasks)),
            handle,
        )
        results.sort(key=lambda pair: pair[0])
        return results


class BatchedRunner(CampaignRunner):
    """Runs trials in fixed-size batches, vectorized when the trial allows.

    Tasks are grouped into consecutive batches of ``batch_size``; a trial
    function that implements ``run_batch(rngs)`` (see
    :func:`supports_batching`) evaluates each batch through one set of
    stacked numpy operations, while plain trial functions run scalar inside
    each batch.  The final batch of a campaign may be ragged (smaller than
    ``batch_size``); ``run_batch`` implementations must accept any length.

    Because every trial keeps its own ``SeedSequence``-derived generator and
    batchable trial functions are contractually bit-identical to their
    scalar paths, outcomes do not depend on the batch size.

    Parameters
    ----------
    batch_size:
        Trials evaluated together per vectorized call (``None`` → the
        ``REPRO_CAMPAIGN_BATCH`` default).
    workers:
        When > 1, batches are fanned out over a ``multiprocessing`` pool
        (the :class:`ParallelRunner` composition); each worker then runs
        whole batches vectorized.
    start_method:
        Pool start method, as for :class:`ParallelRunner`.
    """

    engine_name = "batched"

    def __init__(
        self,
        batch_size: Optional[int] = None,
        workers: int = 1,
        start_method: Optional[str] = None,
    ) -> None:
        if batch_size is None:
            batch_size = default_batch_size()
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self.batch_size = batch_size
        self.workers = workers
        self.start_method = _resolve_start_method(start_method)

    def _batches(self, tasks: Sequence[TrialTask]) -> List[List[TrialTask]]:
        return [
            list(tasks[start : start + self.batch_size])
            for start in range(0, len(tasks), self.batch_size)
        ]

    def run_trials(
        self,
        trial_fn,
        tasks: Sequence[TrialTask],
        on_result: Optional[ResultCallback] = None,
    ) -> List[Tuple[int, "TrialOutcome"]]:
        tasks = list(tasks)
        if not tasks:
            return []
        bus = default_bus()
        batches = self._batches(tasks)
        results: List[Tuple[int, "TrialOutcome"]] = []

        def collect(
            batch_results: List[Tuple[int, "TrialOutcome"]], batch_wall_s: float
        ) -> None:
            # A vectorized batch has no per-trial wall time: amortize the
            # batch wall over its trials and flag the events as batched.
            per_trial_s = batch_wall_s / len(batch_results) if batch_results else 0.0
            for index, outcome in batch_results:
                EXECUTION_STATS.record()
                if bus.active:
                    _emit_trial_pair(
                        bus, index, outcome, self.engine_name, per_trial_s, batched=True
                    )
                results.append((index, outcome))
                if on_result is not None:
                    on_result(index, outcome)

        if self.workers == 1 or len(batches) == 1:
            for batch in batches:
                started = time.perf_counter()
                batch_results = _execute_batch(trial_fn, batch)
                collect(batch_results, time.perf_counter() - started)
        else:

            def handle(result) -> None:
                batch_results, error, batch_wall_s = result
                if error is not None:
                    index, message, worker_tb = error
                    raise TrialExecutionError(index, message, worker_tb)
                collect(batch_results, batch_wall_s)

            _run_on_pool(
                self.start_method,
                min(self.workers, len(batches)),
                trial_fn,
                _run_remote_batch,
                batches,
                1,
                handle,
            )
        results.sort(key=lambda pair: pair[0])
        return results
