"""Shared parsing for the ``REPRO_*`` integer environment knobs.

Three environment variables tune campaign execution — ``REPRO_CAMPAIGN_REPS``
(repetition counts), ``REPRO_CAMPAIGN_WORKERS`` (process-pool size, where
``"auto"`` means one per CPU) and ``REPRO_CAMPAIGN_BATCH`` (vectorized batch
size).  They share one parse-and-validate rule, defined here exactly once so
the error messages stay consistent whether a bad value arrives through the
environment, a driver keyword or a CLI flag.
"""

from __future__ import annotations

import os
from typing import Optional, Union

__all__ = ["parse_positive_int", "env_positive_int"]


def parse_positive_int(
    value: Union[str, int], what: str, *, allow_auto: bool = False
) -> int:
    """Parse ``value`` as a positive integer (optionally accepting ``"auto"``).

    ``what`` names the knob in error messages (an environment variable, a
    keyword argument or a CLI flag).  With ``allow_auto=True`` the string
    ``"auto"`` resolves to one per CPU, the convention for worker counts.
    """
    if not isinstance(value, int) or isinstance(value, bool):
        text = str(value).strip()
        if allow_auto and text.lower() == "auto":
            return os.cpu_count() or 1
        try:
            value = int(text)
        except ValueError as exc:
            accepted = "a positive integer or 'auto'" if allow_auto else "a positive integer"
            raise ValueError(f"{what} must be {accepted}, got {value!r}") from exc
    if value <= 0:
        raise ValueError(f"{what} must be positive, got {value}")
    return value


def env_positive_int(
    name: str, fallback: Optional[int] = None, *, allow_auto: bool = False
) -> Optional[int]:
    """Read environment variable ``name`` as a positive integer.

    Returns ``fallback`` when the variable is unset; raises ``ValueError``
    (naming the variable) when it is set to anything that does not parse.
    """
    raw = os.environ.get(name)
    if raw is None:
        return fallback
    return parse_positive_int(raw, name, allow_auto=allow_auto)
