"""Tests for the two fault-mitigation techniques."""

import numpy as np
import pytest

from repro.core.mitigation import (
    AdaptiveExplorationController,
    PermanentFaultDetector,
    RangeAnomalyDetector,
    RewardDropDetector,
    estimate_runtime_overhead,
)
from repro.nn import Dense, ReLU, Sequential
from repro.nn.buffers import QuantizedExecutor
from repro.quant import Q16_NARROW
from repro.rl import DecayingEpsilonGreedy, TabularQAgent
from repro.rl.trainer import EpisodeRecord


class TestRewardDropDetector:
    def test_detects_sudden_drop(self):
        detector = RewardDropDetector(drop_threshold=0.25, window=10)
        for episode in range(10):
            assert detector.observe(episode, 1.0) is None
        event = detector.observe(10, 0.2)
        assert event is not None and event.kind == "transient"
        assert event.reward_drop >= 0.25

    def test_no_detection_on_stable_reward(self):
        detector = RewardDropDetector()
        for episode in range(100):
            assert detector.observe(episode, 0.9 + 0.01 * (episode % 3)) is None

    def test_normalized_drop(self):
        detector = RewardDropDetector()
        detector.observe(0, 1.0)
        assert detector.normalized_drop(0.5) == pytest.approx(0.5)
        assert detector.normalized_drop(2.0) == 0.0

    def test_reset(self):
        detector = RewardDropDetector()
        detector.observe(0, 1.0)
        detector.reset()
        assert detector.max_reward is None

    def test_validation(self):
        with pytest.raises(ValueError):
            RewardDropDetector(drop_threshold=0.0)
        with pytest.raises(ValueError):
            RewardDropDetector(window=0)


class TestPermanentFaultDetector:
    def test_detects_persistent_low_reward(self):
        detector = PermanentFaultDetector(low_fraction=0.5, window=5)
        detector.observe(0, 1.0, exploration_steady=False)
        event = None
        for episode in range(1, 20):
            event = detector.observe(episode, 0.1, exploration_steady=True)
            if event:
                break
        assert event is not None and event.kind == "permanent"

    def test_no_detection_before_steady_state(self):
        detector = PermanentFaultDetector(window=3)
        detector.observe(0, 1.0, exploration_steady=False)
        for episode in range(1, 10):
            assert detector.observe(episode, 0.0, exploration_steady=False) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            PermanentFaultDetector(low_fraction=1.0)


class TestExplorationController:
    def make_record(self, episode, reward):
        return EpisodeRecord(episode, reward, 10, reward > 0.5, 0.05)

    def test_eq6_delta(self):
        controller = AdaptiveExplorationController(alpha=0.8, steady_episodes=100)
        # Late fault (t >= T): delta = alpha * f(r).
        assert controller.exploration_delta(0.5, 200) == pytest.approx(0.4)
        # Early fault: delta scaled down by f(t).
        assert controller.exploration_delta(0.5, 50) == pytest.approx(0.8 * 0.5 * 0.5)

    def test_transient_detection_boosts_epsilon(self, rng):
        agent = TabularQAgent(4, 2, schedule=DecayingEpsilonGreedy(1.0, 0.05, 0.5), rng=rng)
        controller = AdaptiveExplorationController(alpha=0.8, drop_window=10, cooldown=1)
        for episode in range(30):
            agent.schedule.step()
            controller.on_episode_end(episode, agent, None, self.make_record(episode, 1.0))
        epsilon_before = agent.schedule.epsilon
        controller.on_episode_end(31, agent, None, self.make_record(31, 0.0))
        assert controller.transient_detections == 1
        assert agent.schedule.epsilon > epsilon_before

    def test_permanent_detection_restarts_schedule(self, rng):
        agent = TabularQAgent(4, 2, schedule=DecayingEpsilonGreedy(1.0, 0.05, 0.5), rng=rng)
        controller = AdaptiveExplorationController(
            alpha=0.8, drop_window=5, permanent_window=5, cooldown=1
        )
        for _ in range(20):
            agent.schedule.step()
        assert agent.schedule.is_steady()
        controller.on_episode_end(0, agent, None, self.make_record(0, 1.0))
        episode = 1
        while controller.permanent_detections == 0 and episode < 40:
            # Keep stepping the schedule so that, after any transient boost,
            # epsilon decays back to its floor and the permanent detector can
            # observe the steady exploitation phase again.
            agent.schedule.step()
            controller.on_episode_end(episode, agent, None, self.make_record(episode, 0.0))
            episode += 1
        assert controller.permanent_detections >= 1
        assert agent.schedule.epsilon == pytest.approx(1.0)
        assert controller.adjustments[-1].decay_slowdown == 2.0

    def test_controller_ignores_constant_schedules(self, rng):
        from repro.rl import ConstantSchedule

        agent = TabularQAgent(4, 2, schedule=ConstantSchedule(0.1), rng=rng)
        controller = AdaptiveExplorationController()
        controller.on_episode_end(0, agent, None, self.make_record(0, 1.0))
        controller.on_episode_end(1, agent, None, self.make_record(1, 0.0))
        assert not controller.adjustments

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveExplorationController(alpha=0.0)
        with pytest.raises(ValueError):
            AdaptiveExplorationController(steady_episodes=0)


class TestRangeAnomalyDetector:
    def make_executor(self, rng):
        net = Sequential(
            [Dense(6, 8, name="fc1", rng=rng), ReLU(name="relu1"), Dense(8, 3, name="fc2", rng=rng)]
        )
        executor = QuantizedExecutor(net, Q16_NARROW)
        profile = executor.profile_ranges(rng.normal(size=(32, 6)))
        return executor, profile

    def test_clean_weights_untouched(self, rng):
        executor, profile = self.make_executor(rng)
        detector = RangeAnomalyDetector(profile, margin=0.1)
        removed = detector.apply_to_weights(executor)
        assert removed == 0

    def test_out_of_range_weight_is_zeroed(self, rng):
        executor, profile = self.make_executor(rng)

        def corrupt(name, tensor):
            if name == "fc2.weight":
                values = tensor.values
                values[0, 0] = 15.0
                tensor.values = values

        executor.apply_weight_faults(corrupt)
        detector = RangeAnomalyDetector(profile, margin=0.1)
        removed = detector.apply_to_weights(executor)
        assert removed >= 1
        assert executor.network.named_params()["fc2.weight"][0, 0] == 0.0
        assert detector.detection_rate > 0.0

    def test_small_deviations_ignored_in_integer_mode(self, rng):
        executor, profile = self.make_executor(rng)

        def nudge(name, tensor):
            if name == "fc1.weight":
                values = tensor.values
                values[0, 0] += 0.3  # stays within the integer-level bound
                tensor.values = values

        executor.apply_weight_faults(nudge)
        detector = RangeAnomalyDetector(profile, margin=0.1, compare_integer_bits_only=True)
        assert detector.apply_to_weights(executor) == 0

    def test_full_value_mode_is_stricter(self, rng):
        executor, profile = self.make_executor(rng)
        lo, hi = profile.weight_ranges["fc1"]

        def nudge(name, tensor):
            if name == "fc1.weight":
                values = tensor.values
                values[0, 0] = hi + 0.5
                tensor.values = values

        executor.apply_weight_faults(nudge)
        detector = RangeAnomalyDetector(profile, margin=0.1, compare_integer_bits_only=False)
        assert detector.apply_to_weights(executor) >= 1

    def test_activation_hook_counts(self, rng):
        executor, profile = self.make_executor(rng)
        detector = RangeAnomalyDetector(profile, margin=0.1)
        executor.activation_hooks.append(detector.activation_hook)
        executor.forward(rng.normal(size=(1, 6)))
        assert detector.counters.checked_values > 0
        detector.reset_counters()
        assert detector.counters.checked_values == 0

    def test_margin_validation(self, rng):
        _, profile = self.make_executor(rng)
        with pytest.raises(ValueError):
            RangeAnomalyDetector(profile, margin=-0.1)


class TestOverheadModel:
    def test_paper_configuration_below_three_percent(self):
        overhead = estimate_runtime_overhead(16, 5)
        assert overhead < 0.03

    def test_wider_compare_costs_more(self):
        assert estimate_runtime_overhead(16, 16) > estimate_runtime_overhead(16, 5)

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_runtime_overhead(0, 1)
        with pytest.raises(ValueError):
            estimate_runtime_overhead(8, 9)
        with pytest.raises(ValueError):
            estimate_runtime_overhead(8, 4, macs_per_value=0)
