"""Tests for Sequential networks, optimizers and the accelerator buffer model."""

import numpy as np
import pytest

from repro.nn import Adam, Dense, ReLU, SGD, Sequential
from repro.nn.buffers import (
    INPUT_BUFFER,
    BufferSet,
    LayerRangeProfile,
    QuantizedExecutor,
    activation_buffer_name,
    weight_buffer_name,
)
from repro.nn.losses import mse_loss
from repro.policies import build_grid_q_network, small_c3f2
from repro.quant import Q8_GRID, Q16_NARROW


def make_mlp(rng):
    return Sequential(
        [Dense(4, 8, name="fc1", rng=rng), ReLU(name="relu1"), Dense(8, 2, name="fc2", rng=rng)],
        name="mlp",
    )


class TestSequential:
    def test_forward_shape(self, rng):
        net = make_mlp(rng)
        assert net.forward(rng.normal(size=(3, 4))).shape == (3, 2)

    def test_named_params_keys(self, rng):
        net = make_mlp(rng)
        keys = set(net.named_params())
        assert keys == {"fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"}

    def test_state_dict_round_trip(self, rng):
        net = make_mlp(rng)
        state = net.state_dict()
        x = rng.normal(size=(2, 4))
        before = net.forward(x)
        for param in net.named_params().values():
            param += 1.0
        assert not np.allclose(net.forward(x), before)
        net.load_state_dict(state)
        assert np.allclose(net.forward(x), before)

    def test_duplicate_layer_names_are_renamed(self, rng):
        net = Sequential([Dense(2, 2, name="fc", rng=rng), Dense(2, 2, name="fc", rng=rng)])
        names = [layer.name for layer in net.layers]
        assert len(set(names)) == 2

    def test_dedup_does_not_mutate_caller_layers(self, rng):
        # Regression: renaming duplicates used to overwrite Layer.name on the
        # objects the caller passed in, corrupting layers shared with other
        # networks (and making Sequential construction non-idempotent).
        first = Dense(2, 2, name="fc", rng=rng)
        second = Dense(2, 2, name="fc", rng=rng)
        net = Sequential([first, second])
        assert first.name == "fc" and second.name == "fc"
        assert [layer.name for layer in net.layers] == ["fc", "fc_1"]
        # Rebuilding from the same (untouched) layers gives the same names.
        again = Sequential([first, second])
        assert [layer.name for layer in again.layers] == ["fc", "fc_1"]

    def test_dedup_copy_shares_parameter_arrays(self, rng):
        caller_layer = Dense(2, 2, name="fc", rng=rng)
        net = Sequential([Dense(2, 2, name="fc", rng=rng), caller_layer])
        renamed = net.layers[1]
        assert renamed is not caller_layer and renamed.name == "fc_1"
        # The renamed stand-in shares its parameters with the caller's layer,
        # so in-place updates (optimizers, fault sync) stay visible both ways.
        net.named_params()["fc_1.weight"][0, 0] = 42.0
        assert caller_layer.weight[0, 0] == 42.0

    def test_same_layer_instance_twice_gets_unique_names(self, rng):
        layer = Dense(3, 3, name="fc", rng=rng)
        net = Sequential([layer, layer])
        assert [l.name for l in net.layers] == ["fc", "fc_1"]
        assert layer.name == "fc"
        # Weight sharing is preserved through the shallow copy.
        assert net.layers[1].weight is layer.weight
        assert set(net.named_params()) == {
            "fc.weight", "fc.bias", "fc_1.weight", "fc_1.bias",
        }

    def test_layer_lookup(self, rng):
        net = make_mlp(rng)
        assert net.layer_by_name("fc2").name == "fc2"
        assert net.layer_index("relu1") == 1
        with pytest.raises(KeyError):
            net.layer_by_name("nope")

    def test_forward_hook_can_modify_output(self, rng):
        net = make_mlp(rng)
        x = rng.normal(size=(1, 4))

        def zero_fc1(index, layer, output):
            return np.zeros_like(output) if layer.name == "fc1" else output

        hooked = net.forward(x, hooks=[zero_fc1])
        expected = net.layers[2].forward(np.zeros((1, 8)))
        assert np.allclose(hooked, expected)

    def test_num_params_and_summary(self, rng):
        net = make_mlp(rng)
        assert net.num_params() == 4 * 8 + 8 + 8 * 2 + 2
        summary = net.summary((4,))
        assert "fc1" in summary and "total params" in summary

    def test_training_reduces_loss(self, rng):
        net = make_mlp(rng)
        optimizer = Adam(net, learning_rate=5e-3)
        x = rng.normal(size=(16, 4))
        target = rng.normal(size=(16, 2))
        first_loss = None
        for _ in range(500):
            pred = net.forward(x, training=True)
            loss, grad = mse_loss(pred, target)
            if first_loss is None:
                first_loss = loss
            net.backward(grad)
            optimizer.step()
        assert loss < first_loss * 0.5


class TestOptimizers:
    def test_sgd_moves_against_gradient(self, rng):
        net = Sequential([Dense(2, 1, name="fc", rng=rng)])
        optimizer = SGD(net, learning_rate=0.1)
        x = np.array([[1.0, 1.0]])
        target = np.array([[10.0]])
        before = mse_loss(net.forward(x), target)[0]
        for _ in range(50):
            pred = net.forward(x, training=True)
            _, grad = mse_loss(pred, target)
            net.backward(grad)
            optimizer.step()
        after = mse_loss(net.forward(x), target)[0]
        assert after < before

    def test_frozen_parameters_do_not_move(self, rng):
        net = make_mlp(rng)
        frozen_before = net.named_params()["fc1.weight"].copy()
        optimizer = Adam(net, learning_rate=1e-2, frozen=["fc1"])
        x = rng.normal(size=(8, 4))
        target = rng.normal(size=(8, 2))
        for _ in range(20):
            pred = net.forward(x, training=True)
            _, grad = mse_loss(pred, target)
            net.backward(grad)
            optimizer.step()
        assert np.array_equal(net.named_params()["fc1.weight"], frozen_before)
        assert not np.array_equal(
            net.named_params()["fc2.weight"], frozen_before[: 8, :2]
        )

    def test_invalid_hyperparameters(self, rng):
        net = make_mlp(rng)
        with pytest.raises(ValueError):
            SGD(net, learning_rate=-1)
        with pytest.raises(ValueError):
            SGD(net, momentum=1.5)

    def test_unfreeze(self, rng):
        net = make_mlp(rng)
        optimizer = SGD(net, frozen=["fc1"])
        optimizer.unfreeze("fc1")
        assert not optimizer._is_frozen("fc1.weight")


class TestBufferModel:
    def test_buffer_names(self, rng):
        net = make_mlp(rng)
        buffers = BufferSet(net, Q16_NARROW)
        assert weight_buffer_name("fc1.weight") in buffers.buffers
        assert len(buffers.weight_buffers()) == 4

    def test_sync_weights_propagates_faults(self, rng):
        net = make_mlp(rng)
        buffers = BufferSet(net, Q16_NARROW)
        buffer = buffers.get(weight_buffer_name("fc2.weight"))
        values = buffer.values
        values[0, 0] = 9.0
        buffer.values = values
        buffers.sync_weights_to_network()
        assert net.named_params()["fc2.weight"][0, 0] == pytest.approx(9.0, abs=1e-3)

    def test_executor_matches_plain_forward_approximately(self, rng):
        net = make_mlp(rng)
        executor = QuantizedExecutor(net, Q16_NARROW)
        x = rng.normal(size=(2, 4))
        plain = net.forward(x)
        quantized = executor.forward(x)
        assert np.allclose(plain, quantized, atol=0.05)

    def test_executor_writes_activation_buffers(self, rng):
        net = make_mlp(rng)
        executor = QuantizedExecutor(net, Q16_NARROW)
        executor.forward(rng.normal(size=(1, 4)))
        assert INPUT_BUFFER in executor.buffer_set.buffers
        assert activation_buffer_name("fc2") in executor.buffer_set.buffers

    def test_executor_hooks_receive_buffers(self, rng):
        net = make_mlp(rng)
        seen = []
        executor = QuantizedExecutor(
            net,
            Q16_NARROW,
            activation_hooks=[lambda tensor, layer: seen.append(layer.name)],
        )
        executor.forward(rng.normal(size=(1, 4)))
        assert seen == ["fc1", "relu1", "fc2"]

    def test_restore_clean_weights(self, rng):
        net = make_mlp(rng)
        executor = QuantizedExecutor(net, Q16_NARROW)
        original = net.state_dict()
        executor.apply_weight_faults(lambda name, tensor: setattr(tensor, "values", tensor.values * 0))
        assert np.all(net.named_params()["fc1.weight"] == 0)
        executor.restore_clean_weights()
        assert np.allclose(net.named_params()["fc1.weight"], original["fc1.weight"])

    def test_profile_ranges(self, rng):
        net = make_mlp(rng)
        executor = QuantizedExecutor(net, Q16_NARROW)
        profile = executor.profile_ranges(rng.normal(size=(16, 4)))
        assert "fc1" in profile.weight_ranges
        assert "fc2" in profile.activation_ranges
        lo, hi = profile.activation_bound("fc2", margin=0.1)
        raw_lo, raw_hi = profile.activation_ranges["fc2"]
        assert lo <= raw_lo and hi >= raw_hi

    def test_total_bits(self, rng):
        net = make_mlp(rng)
        buffers = BufferSet(net, Q8_GRID)
        assert buffers.total_bits() == net.num_params() * 8


class TestPolicyArchitectures:
    def test_grid_q_network_shapes(self, rng):
        net = build_grid_q_network(100, 4, hidden_sizes=(32,), rng=rng)
        out = net.forward(np.eye(100)[:5])
        assert out.shape == (5, 4)

    def test_c3f2_layer_names(self, rng):
        net = small_c3f2(32, rng=rng)
        names = [layer.name for layer in net.trainable_layers()]
        assert names == ["conv1", "conv2", "conv3", "fc1", "fc2"]

    def test_c3f2_forward_shape(self, rng):
        net = small_c3f2(24, n_actions=25, rng=rng)
        out = net.forward(rng.normal(size=(2, 1, 24, 24)))
        assert out.shape == (2, 25)

    def test_small_c3f2_rejects_tiny_images(self, rng):
        with pytest.raises(ValueError):
            small_c3f2(8, rng=rng)
