"""Tests for the registry-generated CLI (``python -m repro``).

Golden checks on ``--help`` / ``list`` output, a round-trip of every
registered spec's flags through ``parse_args`` into an ``ExecutionConfig``
plus typed parameters, and error-message tests for bad engine flags.
"""

import pytest

from repro.__main__ import _execution_from_args, build_parser, main
from repro.api import ExecutionConfig
from repro.experiments.registry import figures, list_specs, specs_for_figure


@pytest.fixture(scope="module")
def parser():
    return build_parser()


def _param_flags(param):
    """The CLI argv fragment exercising one spec parameter (non-default)."""
    flag = "--" + param.name.replace("_", "-")
    if param.type is bool:
        return ["--no-" + param.name.replace("_", "-")] if param.default else [flag]
    if param.choices is not None:
        value = next(c for c in param.choices if c != param.default)
        return [flag, str(value)]
    if param.type is int:
        return [flag, str(param.default + 1)]
    if param.type is float:
        return [flag, str(param.default + 0.5)]
    return [flag, f"{param.default}x"]


class TestHelpAndList:
    def test_top_level_help_lists_every_figure(self, parser):
        text = parser.format_help()
        for figure in figures():
            assert figure in text
        assert "list" in text

    def test_subcommand_help_has_execution_and_param_flags(self, parser, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig5", "--help"])
        assert excinfo.value.code == 0
        text = capsys.readouterr().out
        for flag in (
            "--workers",
            "--batch-size",
            "--checkpoint-dir",
            "--resume",
            "--seed",
            "--reps",
            "--out-dir",
            "--approach",
            "--fast",
            "--episodes-per-trial",
        ):
            assert flag in text
        assert "fig5.inference" in text

    def test_bool_default_true_params_become_no_flags(self, parser, capsys):
        with pytest.raises(SystemExit):
            main(["fig8", "--help"])
        assert "--no-mitigation" in capsys.readouterr().out

    def test_list_enumerates_every_spec_with_params(self, capsys):
        assert main(["list"]) == 0
        text = capsys.readouterr().out
        for spec in list_specs():
            assert spec.name in text
            for param in spec.params:
                assert param.name in text
        assert "[batched]" in text  # batched engines are called out
        assert "repro.api.run" in text


class TestFlagRoundTrip:
    EXECUTION_ARGV = [
        "--workers",
        "2",
        "--batch-size",
        "4",
        "--seed",
        "7",
        "--reps",
        "3",
        "--resume",
    ]

    @pytest.mark.parametrize("figure", [f for f in figures()])
    def test_execution_flags_round_trip(self, parser, figure, tmp_path):
        argv = [figure] + self.EXECUTION_ARGV + ["--checkpoint-dir", str(tmp_path)]
        args = parser.parse_args(argv)
        execution = _execution_from_args(args, parser)
        assert execution == ExecutionConfig(
            seed=7,
            repetitions=3,
            workers=2,
            batch_size=4,
            checkpoint_dir=tmp_path,
            resume=True,
        )

    def test_every_spec_param_round_trips(self, parser):
        for spec in list_specs():
            argv = [spec.figure]
            expected = {}
            for param in spec.params:
                argv += _param_flags(param)
                if param.type is bool:
                    expected[param.name] = not param.default
                elif param.choices is not None:
                    expected[param.name] = next(
                        c for c in param.choices if c != param.default
                    )
                elif param.type in (int, float):
                    expected[param.name] = param.type(
                        param.default + (1 if param.type is int else 0.5)
                    )
                else:
                    expected[param.name] = f"{param.default}x"
            args = parser.parse_args(argv)
            parsed = {p.name: getattr(args, p.name) for p in spec.params}
            assert parsed == spec.resolve_params(parsed) == expected, spec.name

    def test_defaults_match_spec_defaults(self, parser):
        for figure in figures():
            args = parser.parse_args([figure])
            for spec in specs_for_figure(figure):
                parsed = {p.name: getattr(args, p.name) for p in spec.params}
                assert parsed == spec.resolve_params({}), spec.name
            execution = _execution_from_args(args, parser)
            assert execution == ExecutionConfig()


class TestErrorMessages:
    @pytest.mark.parametrize(
        "argv, message",
        [
            (["fig5", "--batch-size", "0"], "batch_size must be positive"),
            (["fig5", "--batch-size", "abc"], "batch_size must be a positive integer"),
            (["fig5", "--workers", "0"], "workers must be positive"),
            (["fig5", "--workers", "bogus"], "workers must be a positive integer or 'auto'"),
            (["fig5", "--reps", "0"], "repetitions must be positive"),
            (["fig5", "--resume"], "resume=True requires a checkpoint_dir"),
        ],
    )
    def test_bad_engine_flags_report_cleanly(self, argv, message, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        assert message in capsys.readouterr().err

    def test_unknown_figure_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig99"])
        assert excinfo.value.code == 2

    def test_bad_choice_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig2", "--approach", "quantum"])
        assert "approach" in capsys.readouterr().err


class TestEndToEnd:
    def test_fig3_runs_and_writes_artifact(self, tmp_path, capsys, monkeypatch):
        # fig3 is the cheapest real subcommand (one training run per scenario
        # at the fast preset, no campaigns).  Isolate the engine env knobs so
        # a developer's exported REPRO_CAMPAIGN_* cannot change the recorded
        # engine provenance.
        for var in ("REPRO_CAMPAIGN_WORKERS", "REPRO_CAMPAIGN_BATCH", "REPRO_SCALE"):
            monkeypatch.delenv(var, raising=False)
        assert main(["fig3", "--fast", "--out-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Fig3" in out
        written = list(tmp_path.glob("*.json"))
        assert len(written) == 1
        from repro.api import ExperimentArtifact

        artifact = ExperimentArtifact.from_json(written[0])
        assert artifact.spec_name == "fig3.return_curves"
        assert artifact.params["fast"] is True
        assert artifact.engine == "serial"


class TestListJson:
    def test_machine_readable_listing(self, capsys):
        import json

        assert main(["list", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        by_name = {spec["name"]: spec for spec in data}
        assert set(by_name) == {spec.name for spec in list_specs()}
        fig5 = by_name["fig5.inference"]
        assert fig5["figure"] == "fig5" and fig5["batched"] is True
        params = {p["name"]: p for p in fig5["params"]}
        assert params["approach"]["choices"] == ["tabular", "nn"]
        assert params["episodes_per_trial"]["type"] == "int"
        assert params["fast"]["default"] is False

    def test_plain_listing_unchanged(self, capsys):
        assert main(["list"]) == 0
        assert "Registered experiment specs:" in capsys.readouterr().out


class TestSweepCli:
    def test_sweep_help_lists_axes_cache_and_adaptive_flags(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--help"])
        assert excinfo.value.code == 0
        text = capsys.readouterr().out
        for flag in (
            "--grid", "--zip", "--random", "--samples", "--set",
            "--cache", "--store", "--sweep-checkpoint",
            "--target-ci", "--max-reps", "--workers", "--batch-size",
        ):
            assert flag in text

    def test_sweep_requires_exactly_one_axis_family(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "synthetic.bernoulli"])
        assert excinfo.value.code == 2
        assert "--grid / --zip / --random" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            main(["sweep", "synthetic.bernoulli", "--grid", "p=0.1",
                  "--zip", "label=a"])

    def test_sweep_rejects_malformed_axis_and_unknown_spec(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "synthetic.bernoulli", "--grid", "p"])
        assert "param=v1,v2" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            main(["sweep", "no.such.spec", "--grid", "p=0.5"])
        assert "unknown experiment" in capsys.readouterr().err

    def test_sweep_end_to_end_with_cache_and_artifact(self, tmp_path, capsys):
        import sweep_testlib  # registers synthetic.bernoulli
        from repro.sweep import SweepArtifact

        argv = [
            "sweep", "synthetic.bernoulli",
            "--grid", "p=0.25,0.75",
            "--set", "label=cli",
            "--reps", "4", "--seed", "3",
            "--store", str(tmp_path / "store"),
            "--out-dir", str(tmp_path / "out"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "2 points, 0 cache hit(s), 8 trial(s) executed" in out
        written = list((tmp_path / "out").glob("sweep_*.json"))
        assert len(written) == 1
        artifact = SweepArtifact.from_json(written[0])
        assert len(artifact.points) == 2
        assert artifact.points[0].params["label"] == "cli"

        # Second invocation: every point served from the store.
        assert main(argv) == 0
        assert "2 cache hit(s), 0 trial(s) executed" in capsys.readouterr().out

    def test_sweep_workers_flag_distributes_with_identical_results(
        self, tmp_path, capsys
    ):
        import sweep_testlib  # registers synthetic.bernoulli
        from repro.sweep import SweepArtifact

        def argv(out, store, extra=()):
            return [
                "sweep", "synthetic.bernoulli",
                "--grid", "p=0.25,0.75",
                "--reps", "4", "--seed", "3",
                "--store", str(tmp_path / store),
                "--out-dir", str(tmp_path / out),
                *extra,
            ]

        assert main(argv("serial", "store-s")) == 0
        assert main(argv("dist", "store-d", ("--sweep-workers", "2"))) == 0
        assert "2 points, 0 cache hit(s), 8 trial(s) executed" in capsys.readouterr().out
        serial = SweepArtifact.from_json(
            next((tmp_path / "serial").glob("sweep_*.json")))
        dist = SweepArtifact.from_json(
            next((tmp_path / "dist").glob("sweep_*.json")))
        for s, d in zip(serial.points, dist.points):
            assert (s.seed, s.digest) == (d.seed, d.digest)
            assert s.artifact.result.to_json_dict() == d.artifact.result.to_json_dict()

        # Warm distributed re-run serves every point from the store.
        assert main(argv("dist", "store-d", ("--sweep-workers", "2"))) == 0
        assert "2 cache hit(s), 0 trial(s) executed" in capsys.readouterr().out

    def test_sweep_workers_flag_rejects_garbage(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "synthetic.bernoulli", "--grid", "p=0.5",
                  "--sweep-workers", "zero"])
        assert "sweep_workers" in capsys.readouterr().err

    def test_sweep_resume_with_campaign_checkpoint_dir_only(self, tmp_path, capsys):
        # Regression: --resume used to be forwarded as sweep-level resume
        # even without --sweep-checkpoint, so the documented campaign-level
        # "--checkpoint-dir DIR --resume" combination errored out.
        argv = [
            "sweep", "synthetic.bernoulli",
            "--grid", "p=0.5",
            "--reps", "3", "--seed", "3", "--cache", "off",
            "--checkpoint-dir", str(tmp_path / "campaigns"),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert "0 cache hit(s), 0 trial(s) executed" in second  # campaigns resumed
        # per-point campaign checkpoints land in point-<i> subdirectories
        assert (tmp_path / "campaigns" / "point-0000").is_dir()

    def test_sweep_adaptive_reps_auto(self, tmp_path, capsys):
        argv = [
            "sweep", "synthetic.bernoulli",
            "--grid", "p=0.5",
            "--reps", "auto", "--target-ci", "0.25", "--initial-reps", "4",
            "--max-reps", "32", "--seed", "3",
            "--store", str(tmp_path / "store"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "adaptive_rounds" in out
        assert "ci_half_width" in out
