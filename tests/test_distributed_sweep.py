"""Differential and fault-tolerance tests for the distributed sweep runner.

The acceptance-critical guarantees:

(a) ``DistributedSweepRunner`` (workers ∈ {1, 4}) is bit-identical to the
    serial ``SweepRunner`` at every point — same per-point seeds, same
    digests, same result payloads — for fixed and adaptive repetitions;
(b) a warm store serves a distributed sweep with ZERO executed trials (and
    the cold run executes exactly as many trials as the serial runner —
    no duplicate work when nobody crashes);
(c) a dead worker's leased points are stolen after the lease times out,
    so the sweep completes anyway;
(d) a deterministic per-point error is not swallowed by worker crashes —
    it re-raises in the coordinator process.

Worker processes are forked, so specs registered by this module (the
failing spec below) are visible inside them without re-import.
"""

import json
import os
import time

import pytest

import sweep_testlib
from repro import api
from repro.api.execution import ExecutionConfig
from repro.core.runner import executed_trial_count
from repro.experiments.registry import ParamSpec, register_experiment
from repro.io.results import ResultTable
from repro.sweep import (
    AdaptiveConfig,
    DistributedSweepRunner,
    SweepCheckpoint,
    SweepRunner,
    SweepSpec,
    SweepWorkQueue,
)
from repro.sweep.distributed import PointLease, default_sweep_workers

SPEC = sweep_testlib.SPEC_NAME
FAILING_SPEC = "synthetic.failing"


@register_experiment(
    FAILING_SPEC,
    description="Deterministically failing campaign (test-only)",
    params=(ParamSpec("p", float, 0.5, help="fails when p > 0.5"),),
)
def run_failing(execution: ExecutionConfig, *, p: float) -> ResultTable:
    if p > 0.5:
        raise ValueError(f"synthetic failure at p={p}")
    table = ResultTable(title="ok")
    table.add(p=p, success_rate=1.0)
    return table


def _sweep_spec(ps=(0.1, 0.3, 0.5, 0.7, 0.9), experiment=SPEC):
    return SweepSpec(experiment=experiment, axes=(("p", tuple(ps)),))


def _payloads(artifact):
    return [
        (pt.index, pt.seed, pt.digest, pt.artifact.result.to_json_dict())
        for pt in artifact.points
    ]


class TestDifferential:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_bit_identical_to_serial(self, tmp_path, workers):
        execution = ExecutionConfig(seed=11, repetitions=6)
        serial = SweepRunner(cache="reuse", store=tmp_path / "serial").run(
            _sweep_spec(), execution
        )
        before = executed_trial_count()
        dist = DistributedSweepRunner(
            sweep_workers=workers, cache="reuse", store=tmp_path / f"dist{workers}"
        ).run(_sweep_spec(), execution)
        delta = executed_trial_count() - before

        assert _payloads(dist) == _payloads(serial)
        # No duplicate work on an uncontended cold run, and the workers'
        # trial counts flow back into this process's counter.
        assert dist.executed_trials == serial.executed_trials == delta

    def test_adaptive_bit_identical_to_serial(self, tmp_path):
        adaptive = AdaptiveConfig(target_ci=0.2, initial_repetitions=4)
        execution = ExecutionConfig(seed=5)
        serial = SweepRunner(cache="off").run(
            _sweep_spec(ps=(0.2, 0.8)), execution, adaptive=adaptive
        )
        dist = DistributedSweepRunner(sweep_workers=2, cache="off").run(
            _sweep_spec(ps=(0.2, 0.8)), execution, adaptive=adaptive
        )
        assert _payloads(dist) == _payloads(serial)
        assert [pt.adaptive_rounds for pt in dist.points] == [
            pt.adaptive_rounds for pt in serial.points
        ]

    def test_warm_store_executes_zero_trials(self, tmp_path):
        execution = ExecutionConfig(seed=11, repetitions=6)
        store = tmp_path / "store"
        cold = DistributedSweepRunner(sweep_workers=4, store=store).run(
            _sweep_spec(), execution
        )
        assert cold.executed_trials > 0

        before = executed_trial_count()
        warm = DistributedSweepRunner(sweep_workers=4, store=store).run(
            _sweep_spec(), execution
        )
        assert warm.executed_trials == 0
        assert executed_trial_count() - before == 0
        assert all(pt.cache_hit for pt in warm.points)
        assert _payloads(warm) == _payloads(cold)

    def test_serial_and_distributed_share_a_store(self, tmp_path):
        # Points cached by the serial runner are hits for the distributed
        # one and vice versa — same content keys, same on-disk format.
        execution = ExecutionConfig(seed=3, repetitions=5)
        store = tmp_path / "store"
        SweepRunner(store=store).run(_sweep_spec(ps=(0.2, 0.4)), execution)
        mixed = DistributedSweepRunner(sweep_workers=2, store=store).run(
            _sweep_spec(ps=(0.2, 0.4, 0.6)), execution
        )
        assert [pt.cache_hit for pt in mixed.points] == [True, True, False]


class TestWorkQueue:
    def test_claim_is_exclusive_and_ordered(self, tmp_path):
        queue = SweepWorkQueue(tmp_path, n_points=3)
        queue.initialize()
        assert queue.claim("a") == 0
        assert queue.claim("b") == 1  # point 0 is leased by "a"
        queue.mark_done(0, "a")
        assert queue.is_done(0)
        assert queue.claim("a") == 2
        assert queue.claim("c") is None  # everything leased or done

    def test_expired_lease_is_stolen(self, tmp_path):
        queue = SweepWorkQueue(tmp_path, n_points=1, lease_timeout_s=0.2)
        queue.initialize()
        assert queue.claim("doomed") == 0
        assert queue.claim("thief") is None  # lease still fresh
        time.sleep(0.25)  # no heartbeat arrives: the lease expires
        assert queue.claim("thief") == 0
        assert queue.read_lease(0).worker == "thief"

    def test_heartbeat_keeps_a_lease_alive(self, tmp_path):
        queue = SweepWorkQueue(tmp_path, n_points=1, lease_timeout_s=0.3)
        queue.initialize()
        assert queue.claim("owner") == 0
        deadline = time.time() + 0.6
        while time.time() < deadline:
            queue.heartbeat(0, "owner")
            time.sleep(0.05)
        assert queue.claim("thief") is None  # never expired

    def test_mark_done_is_idempotent(self, tmp_path):
        queue = SweepWorkQueue(tmp_path, n_points=2)
        queue.initialize()
        queue.claim("a")
        queue.mark_done(0, "a")
        queue.mark_done(0, "b")  # duplicate completion: first marker wins
        assert queue.done_count() == 1
        assert json.loads(queue.done_path(0).read_text())["worker"] == "a"


class TestFaultTolerance:
    def test_dead_workers_leased_point_is_stolen_and_completed(self, tmp_path):
        """A lease owned by a SIGKILLed worker must not wedge the sweep."""
        execution = ExecutionConfig(seed=11, repetitions=4)
        work_dir = tmp_path / "queue"
        spec = _sweep_spec(ps=(0.2, 0.8))
        queue = SweepWorkQueue(work_dir, n_points=2)
        queue.initialize()
        # Plant the corpse: a lease on point 0 from a worker that stopped
        # heartbeating long ago (the pid does not even exist).
        stale = PointLease(worker="dead", pid=2**22 - 1,
                           acquired_at=time.time() - 120.0,
                           heartbeat_at=time.time() - 120.0)
        queue.lease_path(0).write_text(stale.to_json())

        dist = DistributedSweepRunner(
            sweep_workers=2, cache="off", work_dir=work_dir,
            lease_timeout_s=0.5, heartbeat_interval_s=0.1,
        ).run(spec, execution)

        serial = SweepRunner(cache="off").run(spec, execution)
        assert _payloads(dist) == _payloads(serial)
        assert queue.done_count() == 2

    def test_deterministic_error_reaches_the_coordinator(self, tmp_path):
        # Point p=0.7 raises in every worker that claims it; after the
        # workers die the coordinator re-runs it inline and the original
        # error surfaces here.
        spec = _sweep_spec(ps=(0.3, 0.7), experiment=FAILING_SPEC)
        runner = DistributedSweepRunner(sweep_workers=2, cache="off")
        with pytest.raises(Exception, match="synthetic failure at p=0.7"):
            runner.run(spec, ExecutionConfig(seed=1, repetitions=2))

    def test_checkpoint_resume_skips_completed_points(self, tmp_path):
        execution = ExecutionConfig(seed=7, repetitions=4)
        path = tmp_path / "sweep.jsonl"
        first = DistributedSweepRunner(sweep_workers=2, cache="off").run(
            _sweep_spec(ps=(0.2, 0.8)), execution, checkpoint=SweepCheckpoint(path)
        )
        before = executed_trial_count()
        resumed = DistributedSweepRunner(sweep_workers=2, cache="off").run(
            _sweep_spec(ps=(0.2, 0.8)), execution,
            checkpoint=SweepCheckpoint(path), resume=True,
        )
        assert executed_trial_count() - before == 0  # everything restored
        assert _payloads(resumed) == _payloads(first)


class TestSurface:
    def test_api_sweep_workers_matches_serial(self, tmp_path):
        execution = ExecutionConfig(seed=9, repetitions=5)
        serial = api.sweep(SPEC, {"p": [0.25, 0.75]}, execution=execution,
                           cache="off")
        dist = api.sweep(SPEC, {"p": [0.25, 0.75]}, execution=execution,
                         cache="off", sweep_workers=2)
        assert _payloads(dist) == _payloads(serial)

    def test_env_var_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_WORKERS", raising=False)
        assert default_sweep_workers() == 1
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "3")
        assert default_sweep_workers() == 3
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "auto")
        assert default_sweep_workers() == os.cpu_count()

    def test_invalid_knobs_are_rejected(self):
        with pytest.raises(ValueError):
            DistributedSweepRunner(sweep_workers=0)
        with pytest.raises(ValueError):
            DistributedSweepRunner(sweep_workers=2, lease_timeout_s=0.0)
        with pytest.raises(ValueError):
            DistributedSweepRunner(
                sweep_workers=2, lease_timeout_s=1.0, heartbeat_interval_s=2.0
            )

    def test_progress_reaches_total(self, tmp_path):
        calls = []
        DistributedSweepRunner(
            sweep_workers=2, cache="off", progress=lambda d, t: calls.append((d, t))
        ).run(_sweep_spec(ps=(0.2, 0.8)), ExecutionConfig(seed=1, repetitions=3))
        assert calls[-1] == (2, 2)
        assert all(t == 2 for _, t in calls)
