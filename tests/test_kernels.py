"""Differential tests for the :mod:`repro.kernels` backend layer.

The kernel backends promise *bit identity*: for every op, every qformat and
every fault configuration, the numba JIT backend must produce byte-for-byte
the arrays the numpy reference backend produces.  This suite proves it
differentially — op level, executor level (every fault model of
``test_batched_parity`` at B in {1, 3, 8}), activation-hook path and one
``api.run`` end to end — and pins the registry semantics (env resolution,
explicit selection, graceful numpy fallback, scoped restore, counters).

On hosts without numba the numba half is skipped and the registry tests
assert the fallback path instead, so numpy-only environments still execute
every dispatch code path.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

# The module's autouse backend-restore fixture is intentionally per-test,
# not per-example: backend selection is process-global state that the
# examples themselves never mutate.
_EDGE_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

from repro import kernels
from repro.core import BatchedEvaluator, StuckAtFault, TransientBitFlip
from repro.kernels import OP_CLEAR, OP_FLIP, OP_SET
from repro.nn.buffers import QuantizedExecutor
from repro.policies import build_grid_q_network
from repro.quant import Q8_GRID, Q16_MID, Q16_NARROW, Q16_WIDE
from repro.quant.qformat import QFormat

QFORMATS = [Q8_GRID, Q16_NARROW, Q16_MID, Q16_WIDE]
QFORMAT_IDS = ["q8_grid", "q16_narrow", "q16_mid", "q16_wide"]

ALL_MODELS = [
    TransientBitFlip(0.05),
    StuckAtFault(0.05, stuck_value=0),
    StuckAtFault(0.05, stuck_value=1),
]
MODEL_IDS = ["transient", "sa0", "sa1"]

needs_numba = pytest.mark.skipif(
    not kernels.numba_available(), reason="numba is not installed"
)
numpy_only = pytest.mark.skipif(
    kernels.numba_available(), reason="covers the no-numba fallback path"
)


@pytest.fixture(autouse=True)
def _restore_backend():
    """Leave the process-global backend selection untouched by each test."""
    yield
    kernels.reset_backend()


def both_backends(fn):
    """Evaluate ``fn`` under the numpy and numba backends; return both results."""
    with kernels.use_backend("numpy"):
        reference = fn()
    with kernels.use_backend("numba"):
        jit = fn()
    return reference, jit


# --------------------------------------------------------------------------- #
# Backend registry
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_validate_normalizes(self):
        assert kernels.validate_backend_name(" NumPy ") == "numpy"
        assert kernels.validate_backend_name("AUTO") == "auto"

    def test_validate_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.validate_backend_name("cuda")

    def test_env_var_selects_default(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_BACKEND_ENV_VAR, "numpy")
        kernels.reset_backend()
        assert kernels.default_backend_name() == "numpy"
        assert kernels.resolve_backend_name() == "numpy"
        assert kernels.active_backend_name() == "numpy"

    def test_env_var_invalid_rejected(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_BACKEND_ENV_VAR, "cuda")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.default_backend_name()

    def test_auto_resolves_to_available_backend(self):
        resolved = kernels.resolve_backend_name("auto")
        assert resolved == ("numba" if kernels.numba_available() else "numpy")

    def test_set_backend_numpy(self):
        assert kernels.set_backend("numpy") == "numpy"
        assert kernels.active_backend_name() == "numpy"

    @numpy_only
    def test_explicit_numba_falls_back_with_warning(self):
        kernels._warned_numba_fallback = False
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert kernels.set_backend("numba") == "numpy"
        # The warning is one-time per process.
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            assert kernels.set_backend("numba") == "numpy"

    @needs_numba
    def test_explicit_numba_activates(self):
        assert kernels.set_backend("numba") == "numba"
        assert kernels.active_backend_name() == "numba"

    def test_use_backend_restores_previous(self):
        kernels.set_backend("numpy")
        with kernels.use_backend("numpy") as active:
            assert active == "numpy"
        assert kernels.active_backend_name() == "numpy"

    def test_use_backend_restores_unresolved_default(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_BACKEND_ENV_VAR, "numpy")
        kernels.reset_backend()
        with kernels.use_backend("numpy"):
            pass
        assert kernels.active_backend_name() == "numpy"

    def test_dispatch_increments_counters(self):
        kernels.set_backend("numpy")
        before = kernels.counters_snapshot().get("quantize", 0)
        kernels.quantize(np.array([0.5]), 16.0, 0.0625, np.int64(-128), np.int64(127))
        after = kernels.counters_snapshot().get("quantize", 0)
        assert after == before + 1

    def test_warm_up_returns_active_backend(self):
        kernels.set_backend("numpy")
        assert kernels.warm_up() == "numpy"


# --------------------------------------------------------------------------- #
# Numpy reference backend vs. the legacy inline formulas
# --------------------------------------------------------------------------- #
def _special_values():
    return np.array(
        [0.0, -0.0, 0.5, -0.5, 1e300, -1e300, np.inf, -np.inf, np.nan, 2.0**60],
        dtype=np.float64,
    )


class TestNumpyReference:
    @pytest.mark.parametrize("qf", QFORMATS, ids=QFORMAT_IDS)
    def test_quantize_matches_inline_formula(self, rng, qf):
        values = np.concatenate(
            [rng.normal(0, qf.max_value, size=64), _special_values()]
        )
        # NaN exercises the historical invalid-cast path on both sides;
        # silence numpy's warning about it (the *values* are the contract).
        with kernels.use_backend("numpy"), np.errstate(invalid="ignore"):
            out = qf.quantize(values)
        with np.errstate(invalid="ignore"):
            raw = np.rint(values * (2.0**qf.fraction_bits)).astype(np.int64)
        raw = np.minimum(np.maximum(raw, np.int64(qf.min_raw)), np.int64(qf.max_raw))
        expected = raw.astype(np.float64) * (2.0**-qf.fraction_bits)
        assert np.array_equal(out, expected)

    @pytest.mark.parametrize("qf", QFORMATS, ids=QFORMAT_IDS)
    def test_encode_decode_roundtrip(self, rng, qf):
        values = rng.normal(0, qf.max_value, size=128)
        with kernels.use_backend("numpy"):
            raw = qf.encode(values)
            decoded = qf.decode(raw)
            assert np.array_equal(decoded, qf.quantize(values))

    def test_fused_matmul_equals_unfused(self, rng):
        qf = Q16_NARROW
        x = qf.quantize(rng.normal(size=(3, 2, 6)))
        w = qf.quantize(rng.normal(size=(3, 6, 4)))
        b = qf.quantize(rng.normal(size=(3, 4)))
        assert qf.supports_exact_matmul(6)
        with kernels.use_backend("numpy"):
            fused = qf.matmul_bias_quantize(x, w, b)
            unfused = qf.quantize(np.matmul(x, w) + b[:, None, :])
        assert np.array_equal(fused, unfused)

    def test_relu_quantize_keeps_nan_behaviour(self):
        values = np.array([-1.0, 0.0, 2.5, np.nan, -np.inf, np.inf])
        qf = Q8_GRID
        # NaN deliberately exercises the historical invalid-cast behaviour;
        # silence numpy's warning about it (the *values* are the contract).
        with kernels.use_backend("numpy"), np.errstate(invalid="ignore"):
            fused = qf.relu_quantize(values)
            unfused = qf.quantize(np.maximum(values, 0.0))
        assert np.array_equal(fused, unfused)


# --------------------------------------------------------------------------- #
# Numba differential: op level
# --------------------------------------------------------------------------- #
@needs_numba
class TestNumbaOpParity:
    @pytest.mark.parametrize("qf", QFORMATS, ids=QFORMAT_IDS)
    def test_quantize_encode_decode(self, rng, qf):
        values = np.concatenate(
            [
                rng.normal(0, qf.max_value, size=256),
                rng.normal(0, 10 * qf.max_value, size=64),
                _special_values(),
            ]
        ).reshape(2, -1)

        ref, jit = both_backends(lambda: qf.quantize(values))
        assert np.array_equal(ref, jit)

        ref, jit = both_backends(lambda: qf.encode(values))
        assert np.array_equal(ref, jit)
        raw = ref

        ref, jit = both_backends(lambda: qf.decode(raw))
        assert np.array_equal(ref, jit)

    @pytest.mark.parametrize("qf", QFORMATS, ids=QFORMAT_IDS)
    def test_fused_forward_ops(self, rng, qf):
        x = qf.quantize(rng.normal(size=(3, 2, 6)))
        w = qf.quantize(rng.normal(size=(3, 6, 4)))
        b = qf.quantize(rng.normal(size=(3, 4)))
        y = rng.normal(size=(3, 2, 4))

        if qf.supports_exact_matmul(6):
            ref, jit = both_backends(lambda: qf.matmul_bias_quantize(x, w, b))
            assert np.array_equal(ref, jit)
        ref, jit = both_backends(lambda: qf.bias_quantize_stacked(y, b))
        assert np.array_equal(ref, jit)
        ref, jit = both_backends(lambda: qf.bias_quantize(y, b[0]))
        assert np.array_equal(ref, jit)
        ref, jit = both_backends(
            lambda: qf.relu_quantize(np.concatenate([y.ravel(), _special_values()]))
        )
        assert np.array_equal(ref, jit)

    @pytest.mark.parametrize("op_code", [OP_FLIP, OP_SET, OP_CLEAR])
    def test_scatter_with_repeated_sites(self, rng, op_code):
        raw = rng.integers(0, 1 << 16, size=64).astype(np.int64)
        # Repeated sites exercise the read-modify-write ordering contract.
        elements = rng.integers(0, 64, size=40).astype(np.int64)
        elements[::4] = elements[0]
        bits = rng.integers(0, 16, size=40).astype(np.int64)

        def run():
            out = raw.copy()
            kernels.scatter_bits(out, elements, bits, op_code)
            return out

        ref, jit = both_backends(run)
        assert np.array_equal(ref, jit)

    def test_inject_sites_mixed_kinds(self, rng):
        raw = rng.integers(0, 1 << 16, size=128).astype(np.int64)
        # Distinct sites across op kinds (the fused-injection contract);
        # within a kind repeats are allowed and exercised for OP_FLIP.
        flat = rng.choice(128 * 16, size=60, replace=False).astype(np.int64)
        elements, bits = flat // 16, flat % 16
        ops = np.concatenate(
            [
                np.full(20, OP_FLIP, dtype=np.int64),
                np.full(20, OP_SET, dtype=np.int64),
                np.full(20, OP_CLEAR, dtype=np.int64),
            ]
        )

        def run():
            out = raw.copy()
            kernels.inject_sites(out, elements, bits, ops)
            return out

        ref, jit = both_backends(run)
        assert np.array_equal(ref, jit)


# --------------------------------------------------------------------------- #
# Numba differential: executor level, every fault configuration
# --------------------------------------------------------------------------- #
@needs_numba
class TestNumbaExecutorParity:
    @pytest.mark.parametrize("qf", QFORMATS, ids=QFORMAT_IDS)
    @pytest.mark.parametrize("model", ALL_MODELS, ids=MODEL_IDS)
    @pytest.mark.parametrize("replicas", [1, 3, 8])
    def test_inject_and_forward(self, rng, qf, model, replicas):
        net = build_grid_q_network(20, 4, hidden_sizes=(12,), rng=rng)
        x = np.stack([np.eye(20)[r % 20][None] for r in range(replicas)])

        def run():
            evaluator = BatchedEvaluator(net, qf, replicas)
            evaluator.inject_weight_faults(
                model, [np.random.default_rng(50 + r) for r in range(replicas)]
            )
            return evaluator.forward(x)

        ref, jit = both_backends(run)
        assert np.array_equal(ref, jit)

    def test_activation_hook_path(self, rng):
        # With activation hooks installed the executor takes the legacy
        # hook-based forward; both backends must agree there too.
        from repro.nn.buffers import BatchedQuantizedExecutor

        net = build_grid_q_network(15, 3, hidden_sizes=(8,), rng=rng)
        replicas = 4
        x = np.stack([np.eye(15)[r][None] for r in range(replicas)])
        model = TransientBitFlip(0.02)

        def run():
            hook_rng = np.random.default_rng(9)
            executor = BatchedQuantizedExecutor(
                net,
                Q16_NARROW,
                replicas,
                activation_hooks=[lambda tensor, layer: model.inject(tensor, hook_rng)],
            )
            return executor.forward(x)

        ref, jit = both_backends(run)
        assert np.array_equal(ref, jit)

    def test_scalar_executor_matches_across_backends(self, rng):
        net = build_grid_q_network(15, 3, hidden_sizes=(8,), rng=rng)
        x = np.eye(15)[2][None]

        def run():
            executor = QuantizedExecutor(net, Q8_GRID)
            trial_rng = np.random.default_rng(4)
            executor.apply_weight_faults(
                lambda name, tensor: ALL_MODELS[0].inject(tensor, trial_rng)
            )
            out = executor.forward(x)
            executor.restore_clean_weights()
            return out

        ref, jit = both_backends(run)
        assert np.array_equal(ref, jit)

    def test_api_run_end_to_end(self):
        from repro import api

        def run():
            artifact = api.run(
                "fig5.inference",
                params={"approach": "nn", "fast": True},
                execution=api.ExecutionConfig(seed=3, repetitions=2, batch_size=4),
            )
            return artifact.result.rows

        ref, jit = both_backends(run)
        assert ref == jit


# --------------------------------------------------------------------------- #
# Edge properties at the int64 word boundaries (satellite: property tests)
# --------------------------------------------------------------------------- #
WIDE = QFormat(1, 30, 31)  # 62-bit words: bit 61 is the sign bit


def _scatter_both(raw, elements, bits, op_code):
    def run():
        out = raw.copy()
        kernels.scatter_bits(out, elements, bits, op_code)
        return out

    if kernels.numba_available():
        ref, jit = both_backends(run)
        assert np.array_equal(ref, jit)
        return ref
    with kernels.use_backend("numpy"):
        return run()


class TestWordEdgeProperties:
    @_EDGE_SETTINGS
    @given(
        words=st.lists(
            st.integers(min_value=0, max_value=(1 << 62) - 1), min_size=1, max_size=8
        ),
        op=st.sampled_from([OP_FLIP, OP_SET, OP_CLEAR]),
    )
    def test_sign_bit_of_wide_words(self, words, op):
        raw = np.array(words, dtype=np.int64)
        elements = np.arange(len(words), dtype=np.int64)
        bits = np.full(len(words), WIDE.total_bits - 1, dtype=np.int64)
        out = _scatter_both(raw, elements, bits, op)
        observed = (out >> (WIDE.total_bits - 1)) & 1
        if op == OP_SET:
            assert np.all(observed == 1)
        elif op == OP_CLEAR:
            assert np.all(observed == 0)
        else:
            assert np.array_equal(observed, 1 - ((raw >> (WIDE.total_bits - 1)) & 1))

    @_EDGE_SETTINGS
    @given(
        words=st.lists(
            st.integers(min_value=0, max_value=(1 << 62) - 1), min_size=1, max_size=8
        ),
        op=st.sampled_from([OP_FLIP, OP_SET, OP_CLEAR]),
    )
    def test_bit_zero(self, words, op):
        raw = np.array(words, dtype=np.int64)
        elements = np.arange(len(words), dtype=np.int64)
        bits = np.zeros(len(words), dtype=np.int64)
        out = _scatter_both(raw, elements, bits, op)
        # Only bit 0 may differ.
        assert np.array_equal(out >> 1, raw >> 1)

    def test_all_sites_all_bits(self, rng):
        raw = rng.integers(0, 1 << 16, size=8).astype(np.int64)
        elements = np.repeat(np.arange(8, dtype=np.int64), 16)
        bits = np.tile(np.arange(16, dtype=np.int64), 8)
        out = _scatter_both(raw, elements, bits, OP_FLIP)
        assert np.array_equal(out, raw ^ ((1 << 16) - 1))
        out = _scatter_both(raw, elements, bits, OP_SET)
        assert np.all(out == (1 << 16) - 1)
        out = _scatter_both(raw, elements, bits, OP_CLEAR)
        assert np.all(out == 0)

    def test_empty_pattern_is_identity(self):
        raw = np.arange(6, dtype=np.int64)
        empty = np.empty(0, dtype=np.int64)
        out = _scatter_both(raw, empty, empty, OP_FLIP)
        assert np.array_equal(out, raw)

    @needs_numba
    def test_single_replica_pattern(self, rng):
        # B=1 end to end through the stacked-pattern fusion.
        from repro.core.sites import apply_patterns_stacked
        from repro.quant import QTensor

        values = rng.normal(0, 0.5, size=(4, 5))

        def run():
            unit = QTensor(values, Q16_NARROW, name="buf")
            pattern = ALL_MODELS[0].sample_pattern(unit, np.random.default_rng(11))
            stacked = unit.replicate(1)
            apply_patterns_stacked([pattern], stacked)
            return stacked.raw.copy()

        ref, jit = both_backends(run)
        assert np.array_equal(ref, jit)

    @needs_numba
    @_EDGE_SETTINGS
    @given(
        values=st.lists(
            st.floats(
                min_value=-16.0, max_value=16.0, allow_nan=False, allow_infinity=False
            ),
            min_size=1,
            max_size=32,
        )
    )
    def test_quantize_property_wide_format(self, values):
        arr = np.array(values, dtype=np.float64)
        ref, jit = both_backends(lambda: WIDE.quantize(arr))
        assert np.array_equal(ref, jit)
