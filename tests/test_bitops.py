"""Tests for bit-level fault primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant.bitops import (
    apply_stuck_at,
    clear_bits,
    flip_bits,
    random_bit_positions,
    set_bits,
)


class TestFlipBits:
    def test_single_flip(self):
        raw = np.array([0b0000], dtype=np.int64)
        out = flip_bits(raw, np.array([0]), np.array([2]), total_bits=8)
        assert out[0] == 0b0100

    def test_double_flip_same_bit_cancels(self):
        raw = np.array([0b1010], dtype=np.int64)
        out = flip_bits(raw, np.array([0, 0]), np.array([1, 1]), total_bits=8)
        assert out[0] == 0b1010

    def test_input_not_modified(self):
        raw = np.array([1, 2, 3], dtype=np.int64)
        flip_bits(raw, np.array([1]), np.array([0]), total_bits=8)
        assert raw.tolist() == [1, 2, 3]

    def test_flip_on_2d_array_uses_flat_indexing(self):
        raw = np.zeros((2, 3), dtype=np.int64)
        out = flip_bits(raw, np.array([4]), np.array([0]), total_bits=8)
        assert out[1, 1] == 1

    def test_out_of_range_bit_rejected(self):
        raw = np.zeros(2, dtype=np.int64)
        with pytest.raises(ValueError):
            flip_bits(raw, np.array([0]), np.array([8]), total_bits=8)

    def test_mismatched_shapes_rejected(self):
        raw = np.zeros(2, dtype=np.int64)
        with pytest.raises(ValueError):
            flip_bits(raw, np.array([0, 1]), np.array([1]), total_bits=8)


class TestStuckAt:
    def test_set_bits(self):
        raw = np.array([0b0000], dtype=np.int64)
        out = set_bits(raw, np.array([0]), np.array([3]), total_bits=8)
        assert out[0] == 0b1000

    def test_clear_bits(self):
        raw = np.array([0b1111], dtype=np.int64)
        out = clear_bits(raw, np.array([0]), np.array([1]), total_bits=8)
        assert out[0] == 0b1101

    def test_stuck_at_idempotent(self):
        raw = np.array([0b0101], dtype=np.int64)
        once = apply_stuck_at(raw, np.array([0]), np.array([1]), 1, total_bits=8)
        twice = apply_stuck_at(once, np.array([0]), np.array([1]), 1, total_bits=8)
        assert np.array_equal(once, twice)

    def test_stuck_at_invalid_value(self):
        raw = np.zeros(1, dtype=np.int64)
        with pytest.raises(ValueError):
            apply_stuck_at(raw, np.array([0]), np.array([0]), 2, total_bits=8)


class TestRandomBitPositions:
    def test_zero_ber_gives_no_faults(self, rng):
        elements, bits = random_bit_positions(100, 8, 0.0, rng)
        assert elements.size == 0 and bits.size == 0

    def test_full_ber_faults_every_bit(self, rng):
        elements, bits = random_bit_positions(10, 8, 1.0, rng)
        assert elements.size == 80
        # Each (element, bit) pair is unique.
        assert len({(e, b) for e, b in zip(elements.tolist(), bits.tolist())}) == 80

    def test_expected_count_approximate(self, rng):
        counts = [random_bit_positions(1000, 8, 0.01, rng)[0].size for _ in range(50)]
        assert 60 <= np.mean(counts) * 1 <= 100  # expectation is 80 faults

    def test_invalid_ber_rejected(self, rng):
        with pytest.raises(ValueError):
            random_bit_positions(10, 8, 1.5, rng)

    def test_max_faults_cap(self, rng):
        elements, _ = random_bit_positions(100, 8, 1.0, rng, max_faults=5)
        assert elements.size == 5

    def test_bit_positions_within_word(self, rng):
        _, bits = random_bit_positions(50, 12, 0.5, rng)
        assert bits.min() >= 0 and bits.max() < 12


@settings(max_examples=40, deadline=None)
@given(
    words=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=16),
    bit=st.integers(min_value=0, max_value=7),
)
def test_property_flip_twice_is_identity(words, bit):
    raw = np.array(words, dtype=np.int64)
    idx = np.array([len(words) // 2])
    bits = np.array([bit])
    flipped = flip_bits(raw, idx, bits, total_bits=8)
    restored = flip_bits(flipped, idx, bits, total_bits=8)
    assert np.array_equal(restored, raw)


@settings(max_examples=40, deadline=None)
@given(
    words=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=16),
    bit=st.integers(min_value=0, max_value=7),
    stuck=st.integers(min_value=0, max_value=1),
)
def test_property_stuck_at_forces_bit(words, bit, stuck):
    raw = np.array(words, dtype=np.int64)
    idx = np.arange(len(words))
    bits = np.full(len(words), bit)
    out = apply_stuck_at(raw, idx, bits, stuck, total_bits=8)
    observed = (out >> bit) & 1
    assert np.all(observed == stuck)
