"""Tests for bit-level fault primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant.bitops import (
    OP_CLEAR,
    OP_FLIP,
    OP_SET,
    _CHOICE_POPULATION_LIMIT,
    apply_bit_ops,
    apply_stuck_at,
    clear_bits,
    flip_bits,
    random_bit_positions,
    set_bits,
)


class TestFlipBits:
    def test_single_flip(self):
        raw = np.array([0b0000], dtype=np.int64)
        out = flip_bits(raw, np.array([0]), np.array([2]), total_bits=8)
        assert out[0] == 0b0100

    def test_double_flip_same_bit_cancels(self):
        raw = np.array([0b1010], dtype=np.int64)
        out = flip_bits(raw, np.array([0, 0]), np.array([1, 1]), total_bits=8)
        assert out[0] == 0b1010

    def test_input_not_modified(self):
        raw = np.array([1, 2, 3], dtype=np.int64)
        flip_bits(raw, np.array([1]), np.array([0]), total_bits=8)
        assert raw.tolist() == [1, 2, 3]

    def test_flip_on_2d_array_uses_flat_indexing(self):
        raw = np.zeros((2, 3), dtype=np.int64)
        out = flip_bits(raw, np.array([4]), np.array([0]), total_bits=8)
        assert out[1, 1] == 1

    def test_out_of_range_bit_rejected(self):
        raw = np.zeros(2, dtype=np.int64)
        with pytest.raises(ValueError):
            flip_bits(raw, np.array([0]), np.array([8]), total_bits=8)

    def test_mismatched_shapes_rejected(self):
        raw = np.zeros(2, dtype=np.int64)
        with pytest.raises(ValueError):
            flip_bits(raw, np.array([0, 1]), np.array([1]), total_bits=8)

    def test_out_of_range_element_rejected(self):
        raw = np.zeros(4, dtype=np.int64)
        with pytest.raises(ValueError, match=r"element indices must lie in \[0, 4\)"):
            flip_bits(raw, np.array([4]), np.array([0]), total_bits=8)

    def test_negative_element_rejected(self):
        raw = np.zeros(4, dtype=np.int64)
        with pytest.raises(ValueError, match="element indices"):
            flip_bits(raw, np.array([-1]), np.array([0]), total_bits=8)


class TestStuckAt:
    def test_set_bits(self):
        raw = np.array([0b0000], dtype=np.int64)
        out = set_bits(raw, np.array([0]), np.array([3]), total_bits=8)
        assert out[0] == 0b1000

    def test_clear_bits(self):
        raw = np.array([0b1111], dtype=np.int64)
        out = clear_bits(raw, np.array([0]), np.array([1]), total_bits=8)
        assert out[0] == 0b1101

    def test_stuck_at_idempotent(self):
        raw = np.array([0b0101], dtype=np.int64)
        once = apply_stuck_at(raw, np.array([0]), np.array([1]), 1, total_bits=8)
        twice = apply_stuck_at(once, np.array([0]), np.array([1]), 1, total_bits=8)
        assert np.array_equal(once, twice)

    def test_stuck_at_invalid_value(self):
        raw = np.zeros(1, dtype=np.int64)
        with pytest.raises(ValueError):
            apply_stuck_at(raw, np.array([0]), np.array([0]), 2, total_bits=8)

    def test_set_bits_mismatched_shapes_rejected(self):
        raw = np.zeros(2, dtype=np.int64)
        with pytest.raises(ValueError, match="same shape"):
            set_bits(raw, np.array([0, 1]), np.array([1]), total_bits=8)

    def test_clear_bits_mismatched_shapes_rejected(self):
        raw = np.zeros(2, dtype=np.int64)
        with pytest.raises(ValueError, match="same shape"):
            clear_bits(raw, np.array([0, 1]), np.array([1]), total_bits=8)

    def test_set_bits_out_of_range_element_rejected(self):
        raw = np.zeros(2, dtype=np.int64)
        with pytest.raises(ValueError, match="element indices"):
            set_bits(raw, np.array([7]), np.array([1]), total_bits=8)


class TestApplyBitOps:
    def test_fused_equals_per_kind_calls(self):
        rng = np.random.default_rng(5)
        raw = rng.integers(0, 256, size=20).astype(np.int64)
        # Distinct sites per op kind (the fused-path contract).
        elements = np.array([0, 3, 5, 7, 11, 13], dtype=np.int64)
        bits = np.array([0, 7, 3, 1, 6, 4], dtype=np.int64)
        ops = np.array(
            [OP_FLIP, OP_FLIP, OP_SET, OP_SET, OP_CLEAR, OP_CLEAR], dtype=np.int64
        )
        fused = apply_bit_ops(raw, elements, bits, ops, total_bits=8)
        expected = flip_bits(raw, elements[:2], bits[:2], total_bits=8)
        expected = set_bits(expected, elements[2:4], bits[2:4], total_bits=8)
        expected = clear_bits(expected, elements[4:], bits[4:], total_bits=8)
        assert np.array_equal(fused, expected)
        assert not np.shares_memory(fused, raw)

    def test_empty_ops_is_identity(self):
        raw = np.arange(4, dtype=np.int64)
        out = apply_bit_ops(
            raw, np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0, np.int64), 8
        )
        assert np.array_equal(out, raw)

    def test_invalid_op_code_rejected(self):
        raw = np.zeros(2, dtype=np.int64)
        with pytest.raises(ValueError, match="op_codes"):
            apply_bit_ops(raw, np.array([0]), np.array([0]), np.array([9]), 8)

    def test_mismatched_op_shape_rejected(self):
        raw = np.zeros(2, dtype=np.int64)
        with pytest.raises(ValueError, match="op_codes"):
            apply_bit_ops(raw, np.array([0]), np.array([0]), np.array([0, 1]), 8)


class TestRandomBitPositions:
    def test_zero_ber_gives_no_faults(self, rng):
        elements, bits = random_bit_positions(100, 8, 0.0, rng)
        assert elements.size == 0 and bits.size == 0

    def test_full_ber_faults_every_bit(self, rng):
        elements, bits = random_bit_positions(10, 8, 1.0, rng)
        assert elements.size == 80
        # Each (element, bit) pair is unique.
        assert len({(e, b) for e, b in zip(elements.tolist(), bits.tolist())}) == 80

    def test_expected_count_approximate(self, rng):
        counts = [random_bit_positions(1000, 8, 0.01, rng)[0].size for _ in range(50)]
        assert 60 <= np.mean(counts) * 1 <= 100  # expectation is 80 faults

    def test_invalid_ber_rejected(self, rng):
        with pytest.raises(ValueError):
            random_bit_positions(10, 8, 1.5, rng)

    def test_max_faults_cap(self, rng):
        elements, _ = random_bit_positions(100, 8, 1.0, rng, max_faults=5)
        assert elements.size == 5

    def test_bit_positions_within_word(self, rng):
        _, bits = random_bit_positions(50, 12, 0.5, rng)
        assert bits.min() >= 0 and bits.max() < 12

    def test_small_population_keeps_historical_choice_draw(self):
        # Seed compatibility: below the population threshold the sampler must
        # consume the RNG exactly like the original rng.choice formulation,
        # so every existing figure seed reproduces its historical fault sites.
        elements, bits = random_bit_positions(100, 8, 0.05, np.random.default_rng(77))
        rng = np.random.default_rng(77)
        expected = 100 * 8 * 0.05
        n = int(np.floor(expected))
        if rng.random() < expected - n:
            n += 1
        flat = rng.choice(800, size=n, replace=False)
        assert np.array_equal(elements, flat // 8)
        assert np.array_equal(bits, flat % 8)

    def test_large_population_pinned_golden_draw(self):
        # The >2**20-bit rejection-sampling path is a *different* draw from
        # rng.choice for the same seed; pin it so it can never drift silently.
        elements, bits = random_bit_positions(
            200_000, 16, 1e-5, np.random.default_rng(1234), max_faults=8
        )
        assert elements.tolist() == [
            197588, 76039, 34271, 184649, 20978, 52338, 27756, 63819
        ]
        assert bits.tolist() == [1, 2, 15, 3, 8, 7, 1, 6]

    def test_large_population_sites_unique_bounded_deterministic(self):
        population_elements = (_CHOICE_POPULATION_LIMIT // 16) * 4
        draws = []
        for _ in range(2):
            elements, bits = random_bit_positions(
                population_elements, 16, 1e-6, np.random.default_rng(9)
            )
            assert elements.size > 0
            assert elements.min() >= 0 and elements.max() < population_elements
            assert bits.min() >= 0 and bits.max() < 16
            flat = elements * 16 + bits
            assert np.unique(flat).size == flat.size
            draws.append(flat)
        assert np.array_equal(draws[0], draws[1])

    def test_dense_draw_uses_choice_even_when_population_large(self):
        # n_faults near the population would make rejection sampling slow;
        # the dense regime stays on the exact permutation path.
        population_elements = _CHOICE_POPULATION_LIMIT // 16 + 1024
        elements, bits = random_bit_positions(
            population_elements, 16, 1.0, np.random.default_rng(3)
        )
        flat = elements * 16 + bits
        assert flat.size == population_elements * 16
        assert np.unique(flat).size == flat.size


@settings(max_examples=40, deadline=None)
@given(
    words=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=16),
    bit=st.integers(min_value=0, max_value=7),
)
def test_property_flip_twice_is_identity(words, bit):
    raw = np.array(words, dtype=np.int64)
    idx = np.array([len(words) // 2])
    bits = np.array([bit])
    flipped = flip_bits(raw, idx, bits, total_bits=8)
    restored = flip_bits(flipped, idx, bits, total_bits=8)
    assert np.array_equal(restored, raw)


@settings(max_examples=40, deadline=None)
@given(
    words=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=16),
    bit=st.integers(min_value=0, max_value=7),
    stuck=st.integers(min_value=0, max_value=1),
)
def test_property_stuck_at_forces_bit(words, bit, stuck):
    raw = np.array(words, dtype=np.int64)
    idx = np.arange(len(words))
    bits = np.full(len(words), bit)
    out = apply_stuck_at(raw, idx, bits, stuck, total_bits=8)
    observed = (out >> bit) & 1
    assert np.all(observed == stuck)
