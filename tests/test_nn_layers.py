"""Tests for the numpy NN layers, including numerical gradient checks."""

import numpy as np
import pytest

from repro.nn import Adam, Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sequential, SGD
from repro.nn.initializers import fan_in_out, glorot_uniform, he_uniform
from repro.nn.losses import huber_loss, mse_loss


def numerical_gradient(func, array, eps=1e-5):
    """Central-difference gradient of a scalar function w.r.t. an array."""
    grad = np.zeros_like(array)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = func()
        flat[i] = original - eps
        minus = func()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


class TestDense:
    def test_forward_shape(self, rng):
        layer = Dense(4, 3, rng=rng)
        out = layer.forward(rng.normal(size=(5, 4)))
        assert out.shape == (5, 3)

    def test_forward_matches_matmul(self, rng):
        layer = Dense(4, 3, rng=rng)
        x = rng.normal(size=(2, 4))
        assert np.allclose(layer.forward(x), x @ layer.weight + layer.bias)

    def test_weight_gradient_matches_numerical(self, rng):
        layer = Dense(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 2))

        def loss_fn():
            pred = layer.forward(x, training=True)
            return mse_loss(pred, target)[0]

        loss_fn()
        _, grad_out = mse_loss(layer.forward(x, training=True), target)
        layer.backward(grad_out)
        numeric = numerical_gradient(loss_fn, layer.weight)
        assert np.allclose(layer.grad_weight, numeric, atol=1e-5)

    def test_input_gradient_matches_numerical(self, rng):
        layer = Dense(3, 2, rng=rng)
        x = rng.normal(size=(2, 3))
        target = rng.normal(size=(2, 2))

        def loss_fn():
            return mse_loss(layer.forward(x, training=True), target)[0]

        _, grad_out = mse_loss(layer.forward(x, training=True), target)
        grad_in = layer.backward(grad_out)
        numeric = numerical_gradient(loss_fn, x)
        assert np.allclose(grad_in, numeric, atol=1e-5)

    def test_backward_without_forward_raises(self, rng):
        layer = Dense(3, 2, rng=rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))

    def test_set_params(self, rng):
        layer = Dense(3, 2, rng=rng)
        layer.set_params({"weight": np.ones((3, 2))})
        assert np.all(layer.weight == 1.0)
        with pytest.raises(KeyError):
            layer.set_params({"nonexistent": np.ones(1)})


class TestConv2D:
    def test_forward_shape(self, rng):
        layer = Conv2D(2, 4, kernel_size=3, rng=rng)
        out = layer.forward(rng.normal(size=(2, 2, 8, 8)))
        assert out.shape == (2, 4, 6, 6)

    def test_forward_shape_with_stride_and_padding(self, rng):
        layer = Conv2D(1, 3, kernel_size=3, stride=2, padding=1, rng=rng)
        out = layer.forward(rng.normal(size=(1, 1, 7, 7)))
        assert out.shape == (1, 3, 4, 4)
        assert layer.output_shape((1, 7, 7)) == (3, 4, 4)

    def test_forward_matches_manual_convolution(self, rng):
        layer = Conv2D(1, 1, kernel_size=2, rng=rng)
        x = rng.normal(size=(1, 1, 3, 3))
        out = layer.forward(x)
        kernel = layer.weight[0, 0]
        expected = np.zeros((2, 2))
        for i in range(2):
            for j in range(2):
                expected[i, j] = np.sum(x[0, 0, i : i + 2, j : j + 2] * kernel) + layer.bias[0]
        assert np.allclose(out[0, 0], expected)

    def test_weight_gradient_matches_numerical(self, rng):
        layer = Conv2D(1, 2, kernel_size=2, rng=rng)
        x = rng.normal(size=(2, 1, 4, 4))
        target = rng.normal(size=(2, 2, 3, 3))

        def loss_fn():
            return mse_loss(layer.forward(x, training=True), target)[0]

        _, grad_out = mse_loss(layer.forward(x, training=True), target)
        layer.backward(grad_out)
        numeric = numerical_gradient(loss_fn, layer.weight)
        assert np.allclose(layer.grad_weight, numeric, atol=1e-4)

    def test_input_gradient_matches_numerical(self, rng):
        layer = Conv2D(1, 1, kernel_size=2, rng=rng)
        x = rng.normal(size=(1, 1, 3, 3))
        target = rng.normal(size=(1, 1, 2, 2))

        def loss_fn():
            return mse_loss(layer.forward(x, training=True), target)[0]

        _, grad_out = mse_loss(layer.forward(x, training=True), target)
        grad_in = layer.backward(grad_out)
        numeric = numerical_gradient(loss_fn, x)
        assert np.allclose(grad_in, numeric, atol=1e-4)

    def test_kernel_too_large_raises(self, rng):
        layer = Conv2D(1, 1, kernel_size=5, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((1, 1, 3, 3)))


class TestPoolingAndActivations:
    def test_maxpool_forward(self):
        layer = MaxPool2D(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        assert out.shape == (1, 1, 2, 2)
        assert out[0, 0].tolist() == [[5.0, 7.0], [13.0, 15.0]]

    def test_maxpool_backward_routes_gradient_to_max(self):
        layer = MaxPool2D(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        layer.forward(x, training=True)
        grad = layer.backward(np.ones((1, 1, 2, 2)))
        assert grad.sum() == 4.0
        assert grad[0, 0, 1, 1] == 1.0  # position of value 5
        assert grad[0, 0, 0, 0] == 0.0

    def test_relu_masks_negative(self):
        layer = ReLU()
        out = layer.forward(np.array([[-1.0, 2.0, 0.0]]))
        assert out.tolist() == [[0.0, 2.0, 0.0]]

    def test_relu_backward(self):
        layer = ReLU()
        layer.forward(np.array([[-1.0, 2.0]]), training=True)
        grad = layer.backward(np.array([[5.0, 5.0]]))
        assert grad.tolist() == [[0.0, 5.0]]

    def test_flatten_round_trip(self):
        layer = Flatten()
        x = np.arange(24, dtype=float).reshape(2, 3, 2, 2)
        out = layer.forward(x, training=True)
        assert out.shape == (2, 12)
        back = layer.backward(out)
        assert back.shape == x.shape

    def test_pool_output_shape(self):
        assert MaxPool2D(2).output_shape((8, 10, 10)) == (8, 5, 5)


class TestLossesAndInitializers:
    def test_mse_zero_for_equal(self):
        loss, grad = mse_loss(np.ones((2, 2)), np.ones((2, 2)))
        assert loss == 0.0
        assert np.all(grad == 0)

    def test_mse_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse_loss(np.ones((2, 2)), np.ones((3, 2)))

    def test_huber_quadratic_region_matches_mse_scale(self):
        pred = np.array([[0.1]])
        target = np.array([[0.0]])
        loss, _ = huber_loss(pred, target, delta=1.0)
        assert loss == pytest.approx(0.5 * 0.1**2)

    def test_huber_linear_region(self):
        loss, grad = huber_loss(np.array([[10.0]]), np.array([[0.0]]), delta=1.0)
        assert loss == pytest.approx(0.5 + 9.0)
        assert grad[0, 0] == pytest.approx(1.0)

    def test_huber_invalid_delta(self):
        with pytest.raises(ValueError):
            huber_loss(np.ones(1), np.ones(1), delta=0.0)

    def test_fan_in_out(self):
        assert fan_in_out((10, 5)) == (10, 5)
        assert fan_in_out((8, 4, 3, 3)) == (36, 72)

    def test_initializer_ranges(self, rng):
        weights = he_uniform((100, 50), rng)
        limit = np.sqrt(6.0 / 100)
        assert np.abs(weights).max() <= limit
        weights = glorot_uniform((100, 50), rng)
        assert np.abs(weights).max() <= np.sqrt(6.0 / 150)
