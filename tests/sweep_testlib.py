"""Shared synthetic experiment spec for the sweep / store test suites.

Registers ``synthetic.bernoulli`` — a real registry spec whose campaign
trials are trivially cheap (one Bernoulli draw plus one normal draw per
trial), so the sweep orchestrator, the artifact store and the adaptive
sampler can be exercised end-to-end in milliseconds while still running
through the genuine ``Campaign`` / runner / ``run_campaign`` machinery.

Importing this module is idempotent (re-registration of the same
declaration is allowed by the registry), and the spec rides through the
real CLI/registry plumbing exactly like the fig2–fig10 specs.
"""

from __future__ import annotations

import numpy as np

from repro.api.execution import ExecutionConfig
from repro.core.campaign import Campaign, TrialOutcome
from repro.experiments.common import run_campaign
from repro.experiments.registry import ParamSpec, register_experiment
from repro.io.results import ResultTable

SPEC_NAME = "synthetic.bernoulli"

#: Default repetition count when neither execution nor env pins one.
DEFAULT_REPS = 8


class BernoulliTrial:
    """One campaign trial: a Bernoulli success and a normal metric draw.

    Module-level (picklable) and batch-capable, so every engine — serial,
    parallel and batched — can run it.  ``run_batch`` replays the scalar
    draw order per replica, keeping the engines bit-identical.
    """

    def __init__(self, p: float) -> None:
        self.p = p

    def __call__(self, rng: np.random.Generator) -> TrialOutcome:
        success = bool(rng.random() < self.p)
        return TrialOutcome(success=success, metric=float(rng.normal()))

    def run_batch(self, rngs):
        return [self(rng) for rng in rngs]


@register_experiment(
    SPEC_NAME,
    description="Synthetic Bernoulli campaign (test-only): success_rate ~ p",
    params=(
        ParamSpec("p", float, 0.5, help="per-trial success probability"),
        ParamSpec("label", str, "a", help="campaign label (cache-key salt)"),
    ),
    batched=True,
)
def run_bernoulli(execution: ExecutionConfig, *, p: float, label: str) -> ResultTable:
    repetitions = execution.resolve_repetitions(DEFAULT_REPS)
    campaign = Campaign(f"synthetic-{label}", repetitions, seed=execution.seed)
    result = run_campaign(campaign, BernoulliTrial(p), execution=execution)
    table = ResultTable(title=f"Synthetic Bernoulli ({label})")
    table.add(
        label=label,
        p=p,
        success_rate=result.success_rate,
        repetitions=repetitions,
        mean_metric=result.mean_metric,
    )
    return table
