"""Shared pytest fixtures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.envs import make_gridworld
from repro.quant import Q8_GRID, Q16_NARROW, QTensor


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def grid_env():
    """Middle-density Grid World with deterministic start."""
    return make_gridworld("middle")


@pytest.fixture
def small_qtensor(rng) -> QTensor:
    """A small 8-bit quantized tensor with varied values."""
    values = rng.uniform(-6.0, 6.0, size=(4, 5))
    return QTensor(values, Q8_GRID, name="test-buffer")


@pytest.fixture
def wide_qtensor(rng) -> QTensor:
    """A 16-bit quantized tensor (weight-like values)."""
    values = rng.normal(0.0, 0.5, size=(8, 8))
    return QTensor(values, Q16_NARROW, name="weights")
