"""Tests for metrics, statistics and result I/O."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io import ResultTable, SeriesResult, render_heatmap, render_table
from repro.metrics import (
    episodes_to_converge,
    mean_confidence_interval,
    mean_safe_flight,
    quality_of_flight_improvement,
    required_trials,
    success_rate,
    wilson_confidence_interval,
)
from repro.metrics.navigation import cumulative_reward


class TestNavigationMetrics:
    def test_success_rate(self):
        assert success_rate([True, False, True, True]) == 0.75
        with pytest.raises(ValueError):
            success_rate([])

    def test_cumulative_reward(self):
        assert cumulative_reward([1.0, -0.5, 0.25]) == 0.75

    def test_mean_safe_flight(self):
        assert mean_safe_flight([100.0, 50.0]) == 75.0
        with pytest.raises(ValueError):
            mean_safe_flight([])
        with pytest.raises(ValueError):
            mean_safe_flight([-1.0])

    def test_qof_improvement(self):
        assert quality_of_flight_improvement(100.0, 139.0) == pytest.approx(0.39)
        with pytest.raises(ValueError):
            quality_of_flight_improvement(0.0, 1.0)

    def test_episodes_to_converge(self):
        history = [False] * 50 + [True] * 100
        assert episodes_to_converge(history, threshold=0.95, window=20) == 69
        assert episodes_to_converge([False] * 100, window=20) is None
        with pytest.raises(ValueError):
            episodes_to_converge(history, threshold=0.0)
        with pytest.raises(ValueError):
            episodes_to_converge(history, window=0)


class TestStatistics:
    def test_wilson_interval_contains_proportion(self):
        low, high = wilson_confidence_interval(80, 100)
        assert low < 0.8 < high
        assert 0.0 <= low and high <= 1.0

    def test_wilson_extremes(self):
        low, high = wilson_confidence_interval(0, 10)
        assert low == 0.0
        low, high = wilson_confidence_interval(10, 10)
        assert high == pytest.approx(1.0)

    def test_wilson_validation(self):
        with pytest.raises(ValueError):
            wilson_confidence_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_confidence_interval(11, 10)

    def test_mean_confidence_interval(self):
        low, high = mean_confidence_interval([1.0, 2.0, 3.0])
        assert low < 2.0 < high
        assert mean_confidence_interval([5.0]) == (5.0, 5.0)
        with pytest.raises(ValueError):
            mean_confidence_interval([])

    def test_required_trials_paper_claim(self):
        # ~1000 trials give a 1% margin for the >95% success proportions the
        # paper reports (Sec. 4.1).
        assert required_trials(0.01, proportion=0.97) <= 1200
        assert required_trials(0.01, proportion=0.5) > 9000
        with pytest.raises(ValueError):
            required_trials(0.0)

    @settings(max_examples=40, deadline=None)
    @given(
        successes=st.integers(min_value=0, max_value=50),
        extra=st.integers(min_value=1, max_value=50),
    )
    def test_property_wilson_interval_ordering(self, successes, extra):
        trials = successes + extra
        low, high = wilson_confidence_interval(successes, trials)
        assert 0.0 <= low <= high <= 1.0


class TestResultTable:
    def make_table(self):
        table = ResultTable(title="demo")
        table.add(ber=0.0, rate=0.98)
        table.add(ber=0.01, rate=0.40)
        return table

    def test_columns_and_column(self):
        table = self.make_table()
        assert table.columns == ["ber", "rate"]
        assert table.column("rate") == [0.98, 0.40]
        assert len(table) == 2

    def test_filter(self):
        table = self.make_table()
        filtered = table.filter(ber=0.01)
        assert len(filtered) == 1 and filtered.rows[0]["rate"] == 0.40

    def test_json_round_trip(self, tmp_path):
        table = self.make_table()
        path = tmp_path / "result.json"
        payload = table.to_json(path)
        loaded = ResultTable.from_json(path.read_text())
        assert loaded.rows == table.rows
        assert json.loads(payload)["title"] == "demo"

    def test_csv_export(self, tmp_path):
        table = self.make_table()
        path = tmp_path / "result.csv"
        table.to_csv(path)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "ber,rate"
        assert len(lines) == 3

    def test_render_table(self):
        text = render_table(self.make_table())
        assert "ber" in text and "0.980" in text

    def test_render_small_floats_in_scientific(self):
        table = ResultTable(title="t")
        table.add(ber=1e-5, rate=0.5)
        assert "e-05" in render_table(table)

    def test_render_empty(self):
        assert "(empty)" in render_table(ResultTable(title="t"))


class TestSeriesResult:
    def test_add_series_and_table(self):
        series = SeriesResult(title="fig", x_label="ber", x_values=[0.0, 0.1])
        series.add_series("tabular", [0.9, 0.5])
        series.add_series("nn", [0.95, 0.7])
        table = series.as_table()
        assert table.columns == ["ber", "tabular", "nn"]
        assert len(table) == 2

    def test_mismatched_length_rejected(self):
        series = SeriesResult(title="fig", x_label="x", x_values=[1, 2, 3])
        with pytest.raises(ValueError):
            series.add_series("bad", [1.0])

    def test_json(self, tmp_path):
        series = SeriesResult(title="fig", x_label="x", x_values=[1])
        series.add_series("y", [2.0])
        path = tmp_path / "series.json"
        series.to_json(path)
        data = json.loads(path.read_text())
        assert data["series"]["y"] == [2.0]


class TestHeatmapRendering:
    def test_render_heatmap(self):
        values = np.array([[1.0, 2.0], [3.0, 4.0]])
        text = render_heatmap(values, ["high", "low"], ["early", "late"], title="demo")
        assert "demo" in text and "high" in text and "4" in text

    def test_heatmap_shape_validation(self):
        with pytest.raises(ValueError):
            render_heatmap(np.zeros((2, 2)), ["a"], ["b", "c"])
        with pytest.raises(ValueError):
            render_heatmap(np.zeros(3), ["a"], ["b"])


class TestJsonSanitize:
    """Regression: numpy scalars/arrays in payloads round-trip losslessly.

    The content-addressed artifact store digests serialized artifacts, so a
    ``np.int64`` cell that serialized as ``1000.0`` (the old
    ``default=float`` behaviour) would change both the JSON type and the
    digest across a round-trip.
    """

    def test_json_ready_converts_numpy_losslessly(self):
        from repro.io import json_ready

        payload = json_ready(
            {
                "i": np.int64(1000),
                "f": np.float32(0.5),
                "b": np.bool_(True),
                "arr": np.array([[1, 2], [3, 4]]),
                "nested": [np.int16(3), (np.float64(2.5),)],
            }
        )
        assert payload == {
            "i": 1000,
            "f": 0.5,
            "b": True,
            "arr": [[1, 2], [3, 4]],
            "nested": [3, [2.5]],
        }
        assert type(payload["i"]) is int
        assert type(payload["b"]) is bool
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped == payload

    def test_canonical_json_ignores_order_and_numpy_types(self):
        from repro.io import canonical_json

        assert canonical_json({"a": np.int64(1), "b": 2}) == canonical_json(
            {"b": np.int64(2), "a": 1}
        )

    def test_result_table_rows_round_trip_losslessly(self):
        table = ResultTable(title="t")
        table.add(reps=np.int64(1000), rate=np.float64(0.25), ok=np.bool_(False),
                  hist=np.array([1, 2, 3]))
        again = ResultTable.from_json(table.to_json())
        (row,) = again.rows
        assert row == {"reps": 1000, "rate": 0.25, "ok": False, "hist": [1, 2, 3]}
        assert type(row["reps"]) is int and type(row["ok"]) is bool
        # idempotent: a second round-trip serializes byte-identically
        assert again.to_json() == table.to_json()

    def test_series_result_round_trips_numpy_values(self):
        series = SeriesResult(title="s", x_label="x",
                              x_values=list(np.arange(3, dtype=np.int64)))
        series.add_series("y", np.linspace(0, 1, 3))
        again = SeriesResult.from_json(series.to_json())
        assert again.x_values == [0, 1, 2]
        assert all(type(x) is int for x in again.x_values)
        assert again.to_json() == series.to_json()

    def test_experiment_artifact_round_trips_numpy_params(self):
        from repro.api import ExecutionConfig, ExperimentArtifact

        table = ResultTable(title="t")
        table.add(success_rate=np.float64(0.5), repetitions=np.int64(10))
        artifact = ExperimentArtifact(
            spec_name="fig5.inference",
            params={"episodes_per_trial": np.int64(5), "fast": np.bool_(True)},
            execution=ExecutionConfig(seed=1, repetitions=10),
            wall_time_s=0.5,
            result=table,
        )
        again = ExperimentArtifact.from_json(artifact.to_json())
        assert again.params == {"episodes_per_trial": 5, "fast": True}
        assert type(again.params["episodes_per_trial"]) is int
        assert type(again.params["fast"]) is bool
        assert again.to_json_dict() == artifact.to_json_dict()

    def test_campaign_checkpoint_lines_keep_numpy_types_lossless(self, tmp_path):
        from repro.core.campaign import TrialOutcome
        from repro.io import CampaignCheckpoint

        checkpoint = CampaignCheckpoint(tmp_path / "c.jsonl")
        checkpoint.path.parent.mkdir(parents=True, exist_ok=True)
        checkpoint.path.write_text("")
        outcome = TrialOutcome(
            success=np.bool_(True),
            metric=np.float64(0.25),
            extras={"flips": np.int64(3)},
        )
        checkpoint.append(np.int64(7), outcome)
        line = checkpoint.path.read_text().splitlines()[-1]
        record = json.loads(line)
        assert record == {
            "index": 7,
            "outcome": {"success": True, "metric": 0.25, "extras": {"flips": 3}},
        }
        assert type(record["outcome"]["success"]) is bool
