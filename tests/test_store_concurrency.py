"""Multi-writer and crash-safety tests for the artifact store.

The store's index is a compacted ``index.json`` snapshot plus one journal
file per entry (``index.d/<digest>.json``), merged on read — so concurrent
writers never race a read-modify-write of a shared file.  These tests drive
that design the hard way:

* N processes putting M artifacts each into ONE store — every entry must
  survive, every object must parse (no lost updates, no torn writes);
* readers running ``get()`` against concurrent ``put()``/``evict()`` —
  never an exception, only hit-or-miss;
* simulated crashes: a writer SIGKILLed mid-write leaves at most a stale
  ``*.tmp`` file, which reopening the store sweeps and rebuilds around;
* the snapshot-cache stamp (mtime, size, inode) invalidating on every
  kind of file replacement, including same-mtime rewrites.
"""

import json
import multiprocessing
import os
import signal
import time

import pytest

import sweep_testlib
from repro import api
from repro.api import ExecutionConfig
from repro.store import ArtifactStore, artifact_key, atomic_write_text

SPEC = sweep_testlib.SPEC_NAME

N_WRITERS = 4
PUTS_PER_WRITER = 8


def _artifact(seed, reps=3, **params):
    return api.run(
        SPEC,
        params=dict(params),
        execution=ExecutionConfig(seed=seed, repetitions=reps),
        cache="off",
    )


def _writer_main(root, writer, n_puts, barrier):
    """Put ``n_puts`` distinct artifacts; exit nonzero on any error."""
    store = ArtifactStore(root)
    barrier.wait()  # maximize overlap between writers
    for k in range(n_puts):
        artifact = _artifact(seed=writer * 10_000 + k, p=0.5, label=f"w{writer}-{k}")
        entry = store.put(artifact)
        assert store.get(entry.digest) is not None


def _reader_main(root, stop_path, fail_path):
    """Hammer get()/entries() until told to stop; record any exception."""
    store = ArtifactStore(root)
    try:
        while not os.path.exists(stop_path):
            for entry in store.entries():
                store.get(entry.digest)  # may miss (evicted) but never raise
            store.get("0" * 64)
    except BaseException as exc:  # pragma: no cover - the failure report
        with open(fail_path, "w") as handle:
            handle.write(f"{type(exc).__name__}: {exc}")
        raise


def _churn_main(root, n_puts, barrier):
    """Interleave puts with evictions to stress readers."""
    store = ArtifactStore(root)
    barrier.wait()
    for k in range(n_puts):
        store.put(_artifact(seed=90_000 + k, p=0.25, label=f"churn-{k}"))
        if k % 3 == 2:
            store.evict()  # evict everything currently indexed


class TestConcurrentWriters:
    def test_parallel_puts_lose_nothing(self, tmp_path):
        root = tmp_path / "store"
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(N_WRITERS)
        procs = [
            ctx.Process(target=_writer_main,
                        args=(str(root), w, PUTS_PER_WRITER, barrier))
            for w in range(N_WRITERS)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0

        store = ArtifactStore(root)
        assert len(store) == N_WRITERS * PUTS_PER_WRITER
        for entry in store.entries():
            served = store.get(entry.digest)
            assert served is not None
            assert served.result.rows  # parsed, not corrupt

        # The merged view must agree with a from-scratch rebuild.
        rebuilt = dict(store._rebuild_index())
        assert set(rebuilt) == {entry.digest for entry in store.entries()}

    def test_get_during_concurrent_put_and_evict_never_raises(self, tmp_path):
        root = tmp_path / "store"
        ArtifactStore(root).put(_artifact(seed=1, p=0.5, label="seed"))
        stop_path = tmp_path / "stop"
        fail_path = tmp_path / "reader-failed"

        ctx = multiprocessing.get_context("fork")
        reader = ctx.Process(target=_reader_main,
                             args=(str(root), str(stop_path), str(fail_path)))
        reader.start()
        try:
            barrier = ctx.Barrier(2)
            churners = [
                ctx.Process(target=_churn_main, args=(str(root), 6, barrier))
                for _ in range(2)
            ]
            for proc in churners:
                proc.start()
            for proc in churners:
                proc.join(timeout=120)
                assert proc.exitcode == 0
        finally:
            stop_path.touch()
            reader.join(timeout=30)
        assert not fail_path.exists(), fail_path.read_text()
        assert reader.exitcode == 0


class TestCrashSafety:
    def test_tmp_file_from_killed_writer_is_swept_on_rebuild(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        digest = store.put(_artifact(seed=2, p=0.5, label="live")).digest

        # Simulate a writer SIGKILLed between mkstemp and os.replace: a
        # stale orphan .tmp next to the objects, another inside index.d.
        old = time.time() - 2 * 3600
        for parent in (store.objects_dir, store.journal_dir):
            orphan = parent / "dead-writer-1234.tmp"
            orphan.write_text("{\"partial\": tru")
            os.utime(orphan, (old, old))

        rebuilt = store._rebuild_index()
        assert not list((tmp_path / "store").rglob("*.tmp"))
        assert rebuilt[digest]["spec"] == SPEC
        assert store.get(digest) is not None

    def test_fresh_tmp_files_survive_the_sweep(self, tmp_path):
        # A *young* .tmp may belong to a live writer mid-replace: keep it.
        store = ArtifactStore(tmp_path / "store")
        store.put(_artifact(seed=3, p=0.5, label="live"))
        fresh = store.objects_dir / "inflight-42.tmp"
        fresh.write_text("{")
        store._rebuild_index()
        assert fresh.exists()

    def test_kill_mid_put_then_reopen(self, tmp_path):
        """SIGKILL a writer while it puts; a reopened store must still work."""
        root = tmp_path / "store"
        ArtifactStore(root).put(_artifact(seed=4, p=0.5, label="base"))

        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        victim = ctx.Process(target=_writer_main, args=(str(root), 7, 50, barrier))
        victim.start()
        barrier.wait()
        time.sleep(0.05)  # let it get mid-stream
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=30)

        store = ArtifactStore(root)
        entries = store.entries()
        assert entries  # the pre-crash entry is intact
        for entry in entries:
            assert store.get(entry.digest) is not None
        # And the store still accepts writes.
        digest = store.put(_artifact(seed=5, p=0.5, label="after")).digest
        assert store.get(digest) is not None

    def test_corrupt_index_snapshot_recovers_from_objects(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        digest = store.put(_artifact(seed=6, p=0.5, label="x")).digest
        store.index_path.write_text("{ truncated by a crash")
        for journal in store.journal_dir.glob("*.json"):
            journal.unlink()
        fresh = ArtifactStore(tmp_path / "store")
        assert fresh.contains(digest)
        assert fresh.get(digest).result.rows

    def test_atomic_write_leaves_no_tmp_on_failure(self, tmp_path):
        # Failure injected at replace time: the target is a non-empty
        # directory, which os.replace cannot clobber.
        target = tmp_path / "out.json"
        target.mkdir()
        (target / "occupant").write_text("x")
        with pytest.raises(OSError):
            atomic_write_text(target, "payload")
        assert list(tmp_path.rglob("*.tmp")) == []


class TestSnapshotStamp:
    def test_same_mtime_rewrite_invalidates_cache(self, tmp_path):
        """The (mtime, size, inode) stamp catches same-mtime replacements."""
        store = ArtifactStore(tmp_path / "store")
        store.put(_artifact(seed=7, p=0.5, label="one"))
        store._maybe_compact(force=True)
        assert dict(store._load_snapshot())  # prime the cache
        stat_before = os.stat(store.index_path)

        # Replace the snapshot with a DIFFERENT one pinned to the same
        # mtime — only size/inode reveal the change.
        empty = json.dumps({"kind": "repro-artifact-store-index", "version": 2,
                            "entries": {}})
        atomic_write_text(store.index_path, empty)
        os.utime(store.index_path,
                 ns=(stat_before.st_mtime_ns, stat_before.st_mtime_ns))

        assert dict(store._load_snapshot()) == {}

    def test_cache_hit_on_unchanged_file(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put(_artifact(seed=8, p=0.5, label="one"))
        store._maybe_compact(force=True)
        first = store._load_snapshot()
        assert store._load_snapshot() is first  # served from cache
