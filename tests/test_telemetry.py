"""Tests for the telemetry subsystem (events, bus, sinks, metrics, CLI).

The load-bearing guarantees:

(a) exactly one ``TrialStarted``/``TrialFinished`` pair per *executed*
    trial on every engine — serial, parallel, batched and distributed;
(b) tracing never changes the numbers: a traced run is bit-identical to
    an untraced run of the same campaign/sweep;
(c) traces round-trip through JSONL, merge across worker files in
    timestamp order, and fold into a :class:`TelemetryReport` whose
    accounting matches the artifacts' own counters;
(d) lease staleness in the distributed queue is monotonic-clock based on
    the same boot and clamped (never negative) across clock domains.
"""

import io
import json
import time

import pytest

import sweep_testlib
from repro import api
from repro.api.execution import ExecutionConfig
from repro.core import BatchedRunner, Campaign, ParallelRunner, SerialRunner, TrialOutcome
from repro.store import ArtifactStore, artifact_key
from repro.sweep import DistributedSweepRunner, SweepRunner, SweepSpec
from repro.sweep.distributed import PointLease
from repro.telemetry import (
    EVENT_KINDS,
    CampaignFinished,
    CampaignStarted,
    EventBus,
    Metrics,
    ProgressReporter,
    SweepPointFinished,
    TelemetryReport,
    TraceSink,
    TrialFinished,
    TrialStarted,
    default_bus,
    event_from_json_dict,
    merge_traces,
    read_trace,
    reset_default_bus,
    trace_to,
)
from repro.telemetry.bus import campaign_scope, current_campaign

SPEC = sweep_testlib.SPEC_NAME


@pytest.fixture(autouse=True)
def _clean_bus():
    """Every test starts and ends with a subscriber-free default bus."""
    reset_default_bus()
    yield
    reset_default_bus()


def collect(bus=None):
    """Subscribe a plain list-appending collector; returns the list."""
    events = []
    (bus or default_bus()).subscribe(events.append)
    return events


def trial_fn(rng) -> TrialOutcome:
    return TrialOutcome(success=bool(rng.random() < 0.5), metric=float(rng.normal()))


# --------------------------------------------------------------------------- #
# Event model
# --------------------------------------------------------------------------- #
class TestEvents:
    def test_every_kind_round_trips_through_json(self):
        for kind, cls in EVENT_KINDS.items():
            event = cls()
            data = json.loads(json.dumps(event.to_json_dict()))
            assert data["kind"] == kind
            back = event_from_json_dict(data)
            assert back == event

    def test_payload_fields_survive(self):
        event = TrialFinished(
            campaign="c", trial=3, engine="batched", wall_time_s=0.25,
            batched=True, success=True, metric=1.5,
        )
        back = event_from_json_dict(event.to_json_dict())
        assert back == event

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown telemetry event kind"):
            event_from_json_dict({"kind": "no.such.event"})

    def test_unknown_fields_ignored(self):
        data = TrialStarted(trial=1).to_json_dict()
        data["from_the_future"] = 42
        assert event_from_json_dict(data) == event_from_json_dict(
            {k: v for k, v in data.items() if k != "from_the_future"}
        )

    def test_registry_covers_every_family(self):
        families = {kind.split(".")[0] for kind in EVENT_KINDS}
        assert families == {"campaign", "trial", "sweep", "store", "lease", "kernel"}


# --------------------------------------------------------------------------- #
# Event bus
# --------------------------------------------------------------------------- #
class TestBus:
    def test_inactive_by_default_and_after_unsubscribe(self):
        bus = EventBus()
        assert not bus.active
        handler = bus.subscribe(lambda e: None)
        assert bus.active
        bus.unsubscribe(handler)
        assert not bus.active

    def test_emit_fans_out_in_subscription_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda e: seen.append(("a", e)))
        bus.subscribe(lambda e: seen.append(("b", e)))
        event = TrialStarted(trial=7)
        bus.emit(event)
        assert seen == [("a", event), ("b", event)]

    def test_subscribed_context_manager(self):
        bus = EventBus()
        with bus.subscribed(lambda e: None):
            assert bus.active
        assert not bus.active

    def test_reset_default_bus_discards_subscribers(self):
        default_bus().subscribe(lambda e: None)
        fresh = reset_default_bus()
        assert fresh is default_bus()
        assert not fresh.active

    def test_campaign_scope_nests(self):
        assert current_campaign() == ""
        with campaign_scope("outer"):
            assert current_campaign() == "outer"
            with campaign_scope("inner"):
                assert current_campaign() == "inner"
            assert current_campaign() == "outer"
        assert current_campaign() == ""


# --------------------------------------------------------------------------- #
# Trial-pair completeness across every engine
# --------------------------------------------------------------------------- #
ENGINES = [
    pytest.param(lambda: SerialRunner(), "serial", id="serial"),
    pytest.param(lambda: ParallelRunner(workers=2), "parallel", id="parallel-2"),
    pytest.param(lambda: BatchedRunner(batch_size=4), "batched", id="batched-4"),
]


class TestTrialPairs:
    @pytest.mark.parametrize("make_runner, engine", ENGINES)
    def test_one_pair_per_trial(self, make_runner, engine):
        events = collect()
        reps = 10
        Campaign("pairs", repetitions=reps, seed=3).run(
            trial_fn, runner=make_runner()
        )
        started = [e for e in events if isinstance(e, TrialStarted)]
        finished = [e for e in events if isinstance(e, TrialFinished)]
        assert sorted(e.trial for e in started) == list(range(reps))
        assert sorted(e.trial for e in finished) == list(range(reps))
        assert all(e.engine == engine for e in started + finished)
        assert all(e.campaign == "pairs" for e in started + finished)
        assert all(e.wall_time_s >= 0.0 for e in finished)
        assert all(e.batched == (engine == "batched") for e in finished)
        # Campaign bracket: exactly one started/finished around the trials.
        campaigns = [e for e in events if isinstance(e, (CampaignStarted, CampaignFinished))]
        assert [type(e) for e in campaigns] == [CampaignStarted, CampaignFinished]
        assert campaigns[1].executed_trials == reps

    def test_one_pair_per_trial_distributed(self, tmp_path):
        events = collect()
        execution = ExecutionConfig(seed=11, repetitions=6)
        spec = SweepSpec(experiment=SPEC, axes=(("p", (0.1, 0.4, 0.6, 0.9)),))
        artifact = DistributedSweepRunner(sweep_workers=4, cache="off").run(
            spec, execution
        )
        started = [e for e in events if isinstance(e, TrialStarted)]
        finished = [e for e in events if isinstance(e, TrialFinished)]
        assert len(started) == len(finished) == artifact.executed_trials == 24
        # Pairs match per (campaign, trial) identity, not just in bulk.
        assert sorted((e.campaign, e.trial) for e in started) == sorted(
            (e.campaign, e.trial) for e in finished
        )

    def test_restored_trials_emit_no_pairs(self, tmp_path):
        campaign = Campaign("restore", repetitions=8, seed=2)
        checkpoint = tmp_path / "c.jsonl"
        campaign.run(trial_fn, runner=SerialRunner(), checkpoint=checkpoint, resume=True)
        events = collect()
        campaign.run(trial_fn, runner=SerialRunner(), checkpoint=checkpoint, resume=True)
        assert not [e for e in events if isinstance(e, (TrialStarted, TrialFinished))]
        campaigns = [e for e in events if isinstance(e, CampaignStarted)]
        assert campaigns and campaigns[0].restored == 8

    @pytest.mark.parametrize("make_runner, engine", ENGINES)
    def test_traced_run_bit_identical_to_untraced(self, make_runner, engine):
        campaign = Campaign("identity", repetitions=12, seed=9)
        untraced = campaign.run(trial_fn, runner=make_runner())
        events = collect()
        traced = campaign.run(trial_fn, runner=make_runner())
        assert [
            (o.success, o.metric, tuple(sorted(o.extras.items())))
            for o in traced.outcomes
        ] == [
            (o.success, o.metric, tuple(sorted(o.extras.items())))
            for o in untraced.outcomes
        ]
        assert events, "tracing was on but no events were seen"


# --------------------------------------------------------------------------- #
# Sink, trace files, merge
# --------------------------------------------------------------------------- #
class TestTraceFiles:
    def test_sink_writes_jsonl_and_read_trace_round_trips(self, tmp_path):
        path = tmp_path / "t.jsonl"
        emitted = [TrialStarted(trial=i, campaign="c") for i in range(5)]
        with TraceSink(path) as sink:
            for event in emitted:
                sink(event)
        assert sink.events_written == 5
        assert read_trace(path) == emitted

    def test_trace_to_attaches_to_default_bus(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with trace_to(path):
            Campaign("traced", repetitions=4, seed=1).run(
                trial_fn, runner=SerialRunner()
            )
        assert not default_bus().active
        events = read_trace(path)
        kinds = [e.kind for e in events]
        assert kinds.count("trial.started") == kinds.count("trial.finished") == 4

    def test_read_trace_lenient_vs_strict(self, tmp_path):
        path = tmp_path / "t.jsonl"
        good = TrialStarted(trial=1).to_json_dict()
        path.write_text(json.dumps(good) + "\nnot json\n")
        assert len(read_trace(path)) == 1
        with pytest.raises(ValueError, match="invalid trace line"):
            read_trace(path, strict=True)

    def test_merge_traces_orders_by_timestamp(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        early = TrialStarted(trial=0, ts=100.0)
        mid = TrialFinished(trial=0, ts=150.0)
        late = TrialStarted(trial=1, ts=200.0)
        with TraceSink(a) as sink:
            sink(mid)
        with TraceSink(b) as sink:
            sink(late)
            sink(early)
        out = tmp_path / "merged.jsonl"
        merged = merge_traces([a, b, tmp_path / "missing.jsonl"], out=out)
        assert merged == [early, mid, late]
        assert read_trace(out) == merged


# --------------------------------------------------------------------------- #
# Metrics / report accounting
# --------------------------------------------------------------------------- #
class TestReport:
    def test_report_accounts_for_every_point_and_trial(self, tmp_path):
        """Acceptance shape: traced 4-worker distributed sweep, warm+cold."""
        trace = tmp_path / "sweep.jsonl"
        store = ArtifactStore(tmp_path / "store")
        execution = ExecutionConfig(seed=7, repetitions=5)
        spec = SweepSpec(experiment=SPEC, axes=(("p", (0.2, 0.5, 0.8)),))

        with trace_to(trace):
            cold = DistributedSweepRunner(sweep_workers=4, store=store).run(
                spec, execution
            )
        report = TelemetryReport.from_trace(trace)
        assert report.trial_pairs_balanced
        assert report.executed_trials == cold.executed_trials == 15
        assert report.sweep_points == len(cold.points) == 3
        assert report.cache_hits == cold.cache_hits == 0
        # Store traffic happens inside the forked workers (the coordinator
        # instance's own counters stay untouched) but still reaches the
        # merged trace: one put per point, probed-and-missed at least once.
        assert report.metrics.counters.get("store.puts") == 3
        assert report.store_misses >= 3
        assert store.hits == store.misses == store.puts == 0

        warm_trace = tmp_path / "warm.jsonl"
        with trace_to(warm_trace):
            warm = DistributedSweepRunner(sweep_workers=4, store=store).run(
                spec, execution
            )
        warm_report = TelemetryReport.from_trace(warm_trace)
        assert warm_report.executed_trials == warm.executed_trials == 0
        assert warm_report.cache_hits == warm.cache_hits == 3
        assert warm_report.store_hits == 3

    def test_serial_sweep_report_matches_store_instance_counters(self, tmp_path):
        trace = tmp_path / "sweep.jsonl"
        store = ArtifactStore(tmp_path / "store")
        execution = ExecutionConfig(seed=7, repetitions=5)
        spec = SweepSpec(experiment=SPEC, axes=(("p", (0.2, 0.8)),))
        with trace_to(trace):
            cold = SweepRunner(store=store).run(spec, execution)
        report = TelemetryReport.from_trace(trace)
        assert report.executed_trials == cold.executed_trials == 10
        assert report.store_misses == store.misses
        assert report.metrics.counters.get("store.puts") == store.puts == 2
        with trace_to(tmp_path / "warm.jsonl"):
            SweepRunner(store=store).run(spec, execution)
        warm_report = TelemetryReport.from_trace(tmp_path / "warm.jsonl")
        assert warm_report.store_hits == store.hits == 2
        assert warm_report.executed_trials == 0

    def test_metrics_timers_and_render(self):
        events = collect()
        Campaign("timed", repetitions=6, seed=4).run(trial_fn, runner=SerialRunner())
        metrics = Metrics()
        for event in events:
            metrics.observe(event)
        summary = metrics.summary_dict()
        assert summary["counters"]["trials.finished"] == 6
        assert summary["timers"]["trial"]["count"] == 6
        assert summary["timers"]["campaign"]["count"] == 1
        report = TelemetryReport(metrics=metrics, source="inline")
        rendered = report.render()
        assert "trial" in rendered and "campaign" in rendered

    def test_report_survives_json_round_trip_of_trace(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        with trace_to(trace):
            Campaign("rt", repetitions=3, seed=1).run(trial_fn, runner=SerialRunner())
        events = read_trace(trace)
        assert TelemetryReport.from_events(events).executed_trials == 3


# --------------------------------------------------------------------------- #
# api.run / api.sweep telemetry provenance
# --------------------------------------------------------------------------- #
class TestArtifactTelemetry:
    def test_untraced_artifact_has_no_telemetry_block(self):
        artifact = api.run(SPEC, execution=ExecutionConfig(seed=1, repetitions=4))
        assert artifact.telemetry is None
        assert "telemetry" not in artifact.to_json_dict()

    def test_traced_artifact_carries_summary_and_round_trips(self, tmp_path):
        with trace_to(tmp_path / "t.jsonl"):
            artifact = api.run(SPEC, execution=ExecutionConfig(seed=1, repetitions=4))
        assert artifact.telemetry["counters"]["trials.finished"] == 4
        back = type(artifact).from_json_dict(artifact.to_json_dict())
        assert back.telemetry == artifact.telemetry

    def test_store_objects_stay_telemetry_free(self, tmp_path):
        execution = ExecutionConfig(seed=1, repetitions=4)
        with trace_to(tmp_path / "t.jsonl"):
            artifact = api.run(
                SPEC, execution=execution, cache="reuse", store=tmp_path / "store"
            )
        assert artifact.telemetry is not None
        store = ArtifactStore(tmp_path / "store")
        stored = store.get(artifact_key(SPEC, artifact.params, execution))
        assert stored is not None and stored.telemetry is None

    def test_traced_sweep_artifact_matches_untraced_payloads(self, tmp_path):
        execution = ExecutionConfig(seed=5, repetitions=4)
        spec = SweepSpec(experiment=SPEC, axes=(("p", (0.3, 0.7)),))
        untraced = SweepRunner(cache="off").run(spec, execution)
        with trace_to(tmp_path / "t.jsonl"):
            traced = api.sweep(spec, execution=execution, cache="off", store=None)
        assert [
            (pt.index, pt.seed, pt.artifact.result.to_json_dict())
            for pt in traced.points
        ] == [
            (pt.index, pt.seed, pt.artifact.result.to_json_dict())
            for pt in untraced.points
        ]
        assert traced.telemetry["counters"]["trials.finished"] == 8
        assert untraced.telemetry is None


# --------------------------------------------------------------------------- #
# Store counters
# --------------------------------------------------------------------------- #
class TestStoreCounters:
    def test_counters_track_miss_put_hit_evict(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        execution = ExecutionConfig(seed=2, repetitions=3)
        artifact = api.run(SPEC, execution=execution)
        digest = artifact_key(SPEC, artifact.params, execution)

        assert store.get(digest) is None
        store.put(artifact, digest=digest)
        assert store.get(digest) is not None
        assert store.evict(digest) == 1
        assert store.counters_dict() == {
            "hits": 1, "misses": 1, "puts": 1, "evictions": 1,
        }

    def test_counters_bump_without_bus_and_emit_with_bus(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        assert not default_bus().active
        store.get("0" * 16)
        assert store.misses == 1
        events = collect()
        store.get("0" * 16)
        assert store.misses == 2
        assert [e.kind for e in events] == ["store.miss"]


# --------------------------------------------------------------------------- #
# Monotonic lease staleness
# --------------------------------------------------------------------------- #
class TestLeaseStaleness:
    def test_future_wall_heartbeat_clamps_to_zero(self):
        # A skewed peer stamped its heartbeat "in the future": the age must
        # clamp at zero (fresh), never go negative.
        lease = PointLease(
            worker="peer", pid=1, acquired_at=time.time(),
            heartbeat_at=time.time() + 300.0, clock_id="other-boot",
        )
        assert lease.age_s() == 0.0
        assert not lease.expired(5.0)

    def test_monotonic_delta_wins_over_wall_clock(self):
        from repro.sweep.distributed import _CLOCK_ID

        now_mono = time.monotonic()
        # Wall clock says "100s stale" but the monotonic stamp is fresh:
        # an NTP step back cannot fake a dead worker.
        fresh = PointLease(
            worker="w", pid=1, acquired_at=time.time() - 100.0,
            heartbeat_at=time.time() - 100.0,
            heartbeat_mono=now_mono, clock_id=_CLOCK_ID,
        )
        assert fresh.age_s() < 5.0
        assert not fresh.expired(30.0)
        # Wall clock says "fresh" but the monotonic stamp is 100s old: an
        # NTP step forward cannot keep a dead worker's lease alive.
        stale = PointLease(
            worker="w", pid=1, acquired_at=time.time(),
            heartbeat_at=time.time(),
            heartbeat_mono=now_mono - 100.0, clock_id=_CLOCK_ID,
        )
        assert stale.age_s() >= 100.0
        assert stale.expired(30.0)

    def test_wall_fallback_for_other_clock_domains(self):
        lease = PointLease(
            worker="w", pid=1, acquired_at=time.time() - 120.0,
            heartbeat_at=time.time() - 120.0,
            heartbeat_mono=time.monotonic(), clock_id="some-other-machine",
        )
        assert lease.age_s() >= 119.0

    def test_legacy_lease_json_round_trips(self):
        legacy = json.dumps(
            {"worker": "old", "pid": 3, "acquired_at": 1.0, "heartbeat_at": 2.0}
        )
        lease = PointLease.from_json(legacy)
        assert lease.heartbeat_mono is None and lease.clock_id == ""
        back = PointLease.from_json(lease.to_json())
        assert back == lease

    def test_fresh_lease_stamps_monotonic(self, tmp_path):
        from repro.sweep.distributed import _CLOCK_ID, SweepWorkQueue

        queue = SweepWorkQueue(tmp_path / "q", n_points=1)
        queue.initialize()
        assert queue.claim("w0") == 0
        lease = PointLease.from_json(queue.lease_path(0).read_text())
        assert lease.heartbeat_mono is not None
        assert lease.clock_id == _CLOCK_ID
        assert lease.age_s() < 5.0


# --------------------------------------------------------------------------- #
# Progress reporter + CLI surface
# --------------------------------------------------------------------------- #
class TestProgressAndCli:
    def test_lines_reporter_prints_sweep_ticks_only(self):
        stream = io.StringIO()
        reporter = ProgressReporter(mode="lines", stream=stream)
        events = collect()
        default_bus().subscribe(reporter)
        SweepRunner(cache="off").run(
            SweepSpec(experiment=SPEC, axes=(("p", (0.2, 0.8)),)),
            ExecutionConfig(seed=1, repetitions=3),
        )
        out = stream.getvalue()
        assert "  sweep point 1/2" in out and "  sweep point 2/2" in out
        assert len(out.splitlines()) == 2  # no per-trial spam
        assert any(isinstance(e, SweepPointFinished) for e in events)

    def test_cli_sweep_progress_quiet_and_trace(self, tmp_path, capsys):
        from repro.__main__ import main

        argv = [
            "sweep", SPEC, "--grid", "p=0.2,0.8", "--reps", "3",
            "--cache", "off",
        ]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "sweep point 2/2" in captured.err
        assert "2 points" in captured.out

        assert main(argv + ["--quiet"]) == 0
        captured = capsys.readouterr()
        assert "sweep point" not in captured.err + captured.out
        assert "2 points" in captured.out  # result tables still print

        trace = tmp_path / "sweep.jsonl"
        assert main(argv + ["--trace", str(trace)]) == 0
        captured = capsys.readouterr()
        assert f"trace written to {trace}" in captured.err
        report = TelemetryReport.from_trace(trace)
        assert report.executed_trials == 6 and report.trial_pairs_balanced

    def test_cli_trace_env_var(self, tmp_path, capsys, monkeypatch):
        from repro.__main__ import main
        from repro.telemetry import TRACE_ENV_VAR

        trace = tmp_path / "env.jsonl"
        monkeypatch.setenv(TRACE_ENV_VAR, str(trace))
        assert main(
            ["sweep", SPEC, "--grid", "p=0.5", "--reps", "2", "--cache", "off",
             "--quiet"]
        ) == 0
        capsys.readouterr()
        assert trace.is_file() and read_trace(trace)

    def test_cli_trace_summarize_and_validate(self, tmp_path, capsys):
        from repro.__main__ import main

        trace = tmp_path / "t.jsonl"
        assert main(
            ["sweep", SPEC, "--grid", "p=0.4", "--reps", "2", "--cache", "off",
             "--quiet", "--trace", str(trace)]
        ) == 0
        capsys.readouterr()

        assert main(["trace", "validate", str(trace)]) == 0
        assert "all valid" in capsys.readouterr().out

        assert main(["trace", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "event counts" in out and "trial" in out

        assert main(["trace", "summarize", str(trace), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["counters"]["trials.finished"] == 2

        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "no.such.event"}\n')
        assert main(["trace", "validate", str(bad)]) == 1
        assert "invalid trace" in capsys.readouterr().err
