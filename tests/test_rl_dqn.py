"""Tests for the DQN / Double DQN agents and imitation pre-training."""

import numpy as np
import pytest

from repro.envs import make_gridworld
from repro.policies import build_grid_q_network
from repro.rl import ConstantSchedule, DQNAgent, DoubleDQNAgent, Transition
from repro.rl.imitation import behaviour_clone
from repro.nn import Dense, ReLU, Sequential
from repro.quant import Q16_NARROW


def make_agent(rng, cls=DQNAgent, **kwargs):
    env = make_gridworld("low", rng=rng)
    net = build_grid_q_network(env.n_states, env.n_actions, hidden_sizes=(16,), rng=rng)
    defaults = dict(
        gamma=0.9,
        learning_rate=1e-3,
        schedule=ConstantSchedule(0.1),
        replay_capacity=100,
        batch_size=8,
        min_replay_size=8,
        rng=rng,
    )
    defaults.update(kwargs)
    agent = cls(net, env.one_hot, env.n_actions, **defaults)
    return agent, env


class TestDQNAgent:
    def test_q_values_shape(self, rng):
        agent, env = make_agent(rng)
        assert agent.q_values(env.reset()).shape == (4,)

    def test_select_action_in_range(self, rng):
        agent, env = make_agent(rng)
        for _ in range(20):
            assert 0 <= agent.select_action(env.reset()) < 4

    def test_observe_fills_replay(self, rng):
        agent, env = make_agent(rng)
        state = env.reset()
        for _ in range(5):
            agent.observe(Transition(state, 0, 0.0, state, False))
        assert len(agent.replay) == 5

    def test_training_changes_weights(self, rng):
        agent, env = make_agent(rng)
        before = agent.network.state_dict()
        state = env.reset()
        for i in range(50):
            agent.observe(Transition(state, i % 4, 1.0, state, False))
        after = agent.network.state_dict()
        assert any(
            not np.array_equal(before[key], after[key]) for key in before
        )

    def test_target_network_update(self, rng):
        agent, env = make_agent(rng, target_update_every=10)
        state = env.reset()
        for _ in range(12):
            agent.observe(Transition(state, 0, 1.0, state, False))
        # Target refreshed at step 10 -> equal to the online network then.
        assert set(agent._target_state) == set(agent.network.state_dict())

    def test_memory_buffers_and_reload(self, rng):
        agent, env = make_agent(rng)
        buffers = agent.memory_buffers()
        assert any(name.startswith("weight:") for name in buffers)
        key = next(iter(buffers))
        tensor = buffers[key]
        tensor.values = np.zeros(tensor.shape)
        agent.reload_from_buffers()
        param_name = key.split(":", 1)[1]
        assert np.all(agent.network.named_params()[param_name] == 0)

    def test_reload_before_buffers_raises(self, rng):
        agent, _ = make_agent(rng)
        with pytest.raises(RuntimeError):
            agent.reload_from_buffers()

    def test_invalid_constructor(self, rng):
        env = make_gridworld("low", rng=rng)
        net = build_grid_q_network(env.n_states, env.n_actions, rng=rng)
        with pytest.raises(ValueError):
            DQNAgent(net, env.one_hot, 0, rng=rng)
        with pytest.raises(ValueError):
            DQNAgent(net, env.one_hot, 4, gamma=2.0, rng=rng)

    def test_state_dict_round_trip(self, rng):
        agent, env = make_agent(rng)
        state = agent.state_dict()
        for param in agent.network.named_params().values():
            param += 1.0
        agent.load_state_dict(state)
        assert np.allclose(agent.network.named_params()["fc1.weight"], state["fc1.weight"])


class TestDoubleDQN:
    def test_targets_use_online_argmax(self, rng):
        agent, env = make_agent(rng, cls=DoubleDQNAgent)
        batch = [Transition(env.reset(), 0, 1.0, env.reset(), False) for _ in range(4)]
        targets = agent._compute_targets(batch)
        assert targets.shape == (4,)
        assert np.all(np.isfinite(targets))

    def test_terminal_targets_equal_reward(self, rng):
        agent, env = make_agent(rng, cls=DoubleDQNAgent)
        batch = [Transition(env.reset(), 0, 0.7, env.reset(), True)]
        targets = agent._compute_targets(batch)
        assert targets[0] == pytest.approx(0.7)

    def test_frozen_prefixes_keep_conv_weights(self, rng):
        net = Sequential(
            [Dense(4, 8, name="conv1", rng=rng), ReLU(), Dense(8, 2, name="fc2", rng=rng)]
        )
        agent = DoubleDQNAgent(
            net,
            lambda s: np.asarray(s, dtype=float),
            2,
            schedule=ConstantSchedule(0.0),
            replay_capacity=50,
            batch_size=4,
            min_replay_size=4,
            frozen_prefixes=["conv1"],
            rng=rng,
        )
        before = net.named_params()["conv1.weight"].copy()
        state = np.ones(4)
        for _ in range(30):
            agent.observe(Transition(state, 0, 1.0, state, False))
        assert np.array_equal(net.named_params()["conv1.weight"], before)


class TestImitation:
    def test_behaviour_clone_reduces_loss(self, rng):
        net = Sequential([Dense(6, 16, rng=rng, name="fc1"), ReLU(), Dense(16, 3, rng=rng, name="fc2")])
        images = rng.normal(size=(64, 6))
        targets = rng.normal(size=(64, 3)) * 0.1
        result = behaviour_clone(net, images, targets, epochs=15, batch_size=16, rng=rng)
        assert result.losses[-1] < result.losses[0]
        assert result.final_loss == result.losses[-1]

    def test_behaviour_clone_shape_mismatch(self, rng):
        net = Sequential([Dense(4, 2, rng=rng)])
        with pytest.raises(ValueError):
            behaviour_clone(net, np.zeros((4, 4)), np.zeros((5, 2)), rng=rng)

    def test_behaviour_clone_invalid_epochs(self, rng):
        net = Sequential([Dense(4, 2, rng=rng)])
        with pytest.raises(ValueError):
            behaviour_clone(net, np.zeros((4, 4)), np.zeros((4, 2)), epochs=0, rng=rng)
